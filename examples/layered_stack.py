#!/usr/bin/env python3
"""The software stack over GM: native messages vs IP vs TCP-lite.

The paper's Section 3: "Other software interfaces such as MPI, VIA,
and TCP/IP are layered efficiently over GM."  This example measures
what each layer costs on the simulated testbed by moving the same
bytes three ways:

1. a native GM message (the path the paper's experiments measure),
2. an IP datagram over GM (fragmentation at the MTU, best-effort),
3. a TCP-lite byte stream over IP over GM (handshake, per-segment
   headers, acks, a fixed window).

Then it degrades the fabric and shows each layer's loss behaviour:
GM retransmits transparently, IP loses datagrams, TCP-lite recovers
with its own timers.

Run:  python examples/layered_stack.py
"""

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.ip import IpEndpoint
from repro.gm.tcp_lite import TcpLiteEndpoint
from repro.harness.report import format_table
from repro.network.faults import FaultPlan, install_fault_plan


def build(reliable=False):
    cfg = NetworkConfig(
        firmware="itb", routing="updown", reliable=reliable,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    return build_network("fig6", config=cfg)


SIZE = 8_000  # bytes moved by every layer


def time_gm() -> float:
    """Native GM, segmented at the MTU like the GM library does."""
    net = build()
    done = net.sim.event("gm")
    remaining = {"n": 0}

    def on_final(_tp):
        remaining["n"] -= 1
        if remaining["n"] == 0:
            done.succeed()

    t0 = net.sim.now
    left = SIZE
    while left > 0:
        chunk = min(4096, left)
        left -= chunk
        remaining["n"] += 1
        net.nics[net.roles["host1"]].firmware.host_send(
            dst=net.roles["host2"], payload_len=chunk, gm={"last": True},
            on_delivered=on_final)
    net.sim.run_until_event(done)
    return net.sim.now - t0


def time_ip() -> float:
    net = build()
    a = IpEndpoint(net.gm("host1"))
    b = IpEndpoint(net.gm("host2"))
    done = net.sim.event("ip")
    b.on_datagram(lambda d: done.succeed())
    t0 = net.sim.now
    a.send(net.roles["host2"], SIZE)
    net.sim.run_until_event(done)
    return net.sim.now - t0


def time_tcp(include_handshake: bool) -> float:
    net = build()
    a = TcpLiteEndpoint(net.gm("host1"))
    TcpLiteEndpoint(net.gm("host2"))
    t0 = net.sim.now
    net.sim.run_until_event(a.connect(net.roles["host2"]))
    if not include_handshake:
        t0 = net.sim.now
    net.sim.run_until_event(a.send_stream(net.roles["host2"], SIZE))
    return net.sim.now - t0


def latency_comparison() -> None:
    gm = time_gm()
    ip = time_ip()
    tcp_cold = time_tcp(include_handshake=True)
    tcp_warm = time_tcp(include_handshake=False)
    print(format_table(
        ["layer", "time (us)", "vs native GM"],
        [
            ("native GM message", gm / 1000, 1.0),
            ("IP datagram over GM", ip / 1000, ip / gm),
            ("TCP-lite stream (warm connection)", tcp_warm / 1000,
             tcp_warm / gm),
            ("TCP-lite stream (incl. handshake)", tcp_cold / 1000,
             tcp_cold / gm),
        ],
        title=f"moving {SIZE} bytes host1 -> host2, per layer",
        float_fmt="{:.2f}",
    ))


def loss_behaviour() -> None:
    rows = []

    # GM with reliability: transparent recovery.
    net = build(reliable=True)
    plan = FaultPlan(corrupt_probability=0.25, seed=3)
    install_fault_plan(net, plan)
    got = []

    def rx():
        while True:
            msg = yield net.gm("host2").receive()
            got.append(msg)

    net.sim.process(rx(), name="rx")
    net.gm("host1").send(net.roles["host2"], SIZE)
    net.sim.run(until=200_000_000)
    rows.append(("GM (go-back-N)", plan.corrupted,
                 "delivered" if got else "LOST",
                 f"{net.gm('host1').retransmissions} GM retx"))

    # IP: best effort — a lost fragment loses the datagram.
    net = build()
    a = IpEndpoint(net.gm("host1"))
    b = IpEndpoint(net.gm("host2"))
    b.reassembly_timeout_ns = 5_000_000.0
    dgrams = []
    b.on_datagram(dgrams.append)
    plan = FaultPlan(corrupt_probability=0.25, seed=3)
    install_fault_plan(net, plan)
    a.send(net.roles["host2"], SIZE)
    net.sim.run(until=200_000_000)
    rows.append(("IP datagram", plan.corrupted,
                 "delivered" if dgrams else "LOST",
                 f"{b.stats.reassembly_timeouts} reassembly timeout(s)"))

    # TCP-lite: its own timers recover.
    net = build()
    a_t = TcpLiteEndpoint(net.gm("host1"), rto_ns=500_000.0)
    b_t = TcpLiteEndpoint(net.gm("host2"))
    net.sim.run_until_event(a_t.connect(net.roles["host2"]))
    net.sim.run(until=net.sim.now + 1_000_000)
    plan = FaultPlan(corrupt_probability=0.25, seed=3)
    install_fault_plan(net, plan)
    net.sim.run_until_event(a_t.send_stream(net.roles["host2"], SIZE))
    rows.append(("TCP-lite", plan.corrupted,
                 "delivered" if b_t.stats.bytes_delivered == SIZE
                 else "LOST",
                 f"{a_t.stats.retransmissions} TCP retx"))

    print()
    print(format_table(
        ["layer", "packets corrupted", "outcome", "recovery"],
        rows,
        title=f"same {SIZE} bytes under 25 % CRC corruption",
    ))


def main() -> None:
    latency_comparison()
    loss_behaviour()
    print("\nthe layering cost is why GM exposes its native API —"
          " and why the ITB mechanism lives in the MCP,")
    print("below every one of these layers: all of them inherit the"
          " minimal routes.")


if __name__ == "__main__":
    main()
