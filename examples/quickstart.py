#!/usr/bin/env python3
"""Quickstart: build the paper's testbed and send traffic through an ITB.

This walks the core API end to end:

1. build the Figure 6 evaluation testbed (two M2FM-SW8 switches,
   three hosts) with the ITB-modified MCP firmware,
2. run a gm_allsize-style ping-pong over the plain up*/down* route,
3. run the same ping-pong over a route through the in-transit host
   and show the per-ITB overhead the paper measures at ~1.3 us.

Run:  python examples/quickstart.py
"""

from repro.core import build_network
from repro.harness.paths import fig6_paths


def main() -> None:
    # -- 1. the testbed -------------------------------------------------
    net = build_network("fig6", firmware="itb", routing="updown")
    print(f"built {net.topo!r}")
    print(f"hosts: {[net.topo.node_name(h) for h in net.topo.hosts()]}")

    # The canonical experiment routes (the paper hand-builds its paths;
    # the mapper-stamped tables are used for everything else).
    paths = fig6_paths(net.topo, net.roles)

    # -- 2. plain up*/down* ping-pong -----------------------------------
    plain = net.ping_pong("host1", "host2", size=256, iterations=50,
                          route_ab=paths.ud5, route_ba=paths.rev2)
    print(f"\nup*/down* path ({paths.ud5.n_switches} switch crossings):")
    print(f"  half round-trip latency: {plain.mean_us:.2f} us "
          f"(min {plain.min_ns / 1000:.2f}, max {plain.max_ns / 1000:.2f})")

    # -- 3. the same, through one in-transit buffer ----------------------
    net2 = build_network("fig6", firmware="itb", routing="updown")
    via_itb = net2.ping_pong("host1", "host2", size=256, iterations=50,
                             route_ab=paths.itb5, route_ba=paths.rev2)
    print(f"\nin-transit path ({paths.itb5.n_switches} switch crossings,"
          f" {paths.itb5.n_itbs} ITB at host"
          f" {net2.topo.node_name(paths.itb5.itb_hosts[0])!r}):")
    print(f"  half round-trip latency: {via_itb.mean_us:.2f} us")

    overhead_ns = 2.0 * (via_itb.mean_ns - plain.mean_ns)
    print("\nper-ITB overhead (half-RTT difference x 2, the paper's"
          f" protocol): {overhead_ns:.0f} ns")
    print("paper's measured value: ~1300 ns")

    stats = net2.total_stats()
    print(f"\nNIC counters: {int(stats['packets_forwarded'])} packets"
          " forwarded through the in-transit host, "
          f"{int(stats['itb_immediate'])} via the Recv-machine fast path")


if __name__ == "__main__":
    main()
