#!/usr/bin/env python3
"""The proposed buffer-pool extension and GM's retransmission safety net.

The paper keeps the stock two-buffer receive queues ("we do not need
more buffers" on an unloaded network) but proposes, for loaded
operation, a circular buffer pool at in-transit hosts: when the pool
is full an arriving in-transit packet is flushed, and "The GM software
has mechanisms to retransmit missing packets."

This example shows that whole story working end to end:

1. burst in-transit traffic through one transit host with fixed
   buffers — lossless, but the wormhole stalls on the wire;
2. the same burst with a small circular pool — the wire never stalls,
   excess packets are flushed;
3. the same flush scenario with the GM reliability layer on — every
   flushed packet is retransmitted and finally delivered.

Run:  python examples/buffer_pool_reliability.py
"""

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.ablations import run_ablation_buffer_pool
from repro.harness.paths import fig6_paths
from repro.harness.report import format_table


def burst_comparison() -> None:
    results = run_ablation_buffer_pool(
        n_senders=4, packets_per_sender=25,
        packet_size=1024, pool_bytes=8 * 1024,
    )
    print(format_table(
        ["scheme", "delivered", "offered", "flushed", "wire stall (us)"],
        [(r.kind, r.delivered, r.offered, r.flushed,
          r.recv_blocked_ns / 1000.0) for r in results.values()],
        title="burst of in-transit packets through one transit host",
    ))


def recovery_demo() -> None:
    cfg = NetworkConfig(
        firmware="itb", routing="updown",
        reliable=True,                 # GM acks + retransmission ON
        recv_buffer_kind="pool",
        pool_bytes=600,                # tiny pool: guaranteed flushes
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    paths = fig6_paths(net.topo, net.roles)
    a, b = net.gm("host1"), net.gm("host2")
    got = []

    def receiver():
        while True:
            msg = yield b.receive()
            got.append(msg.tag)

    net.sim.process(receiver(), name="rx")
    n_messages = 4
    for i in range(n_messages):
        a.send(b.host, 512, tag=i, route=paths.itb5)
    net.sim.run(until=50_000_000)

    flushed = net.nic("itb").stats.packets_flushed
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ("messages sent over the ITB path", n_messages),
            ("flushed at the transit host's pool", flushed),
            ("retransmissions by GM", a.retransmissions),
            ("messages finally delivered, in order",
             f"{sorted(got) == list(range(n_messages))}"),
        ],
        title="flush + GM retransmission recovery (paper Section 4)",
    ))


def main() -> None:
    burst_comparison()
    recovery_demo()


if __name__ == "__main__":
    main()
