#!/usr/bin/env python3
"""An MPI-style iterative solver on the simulated cluster.

The paper's Section 3 notes that "MPI, VIA, and TCP/IP are layered
efficiently over GM"; this example builds a miniature message-passing
application the way an MPI program would and runs it on the simulated
Myrinet COW, comparing wall-clock (simulated) time under up*/down* vs
ITB routing.

The application is a 1-D distributed Jacobi relaxation:

* each host owns a block of the vector,
* every iteration exchanges halo cells with both neighbours
  (point-to-point over GM ports),
* every few iterations the residual is agreed on with an
  all-reduce, and an explicit barrier closes each phase —
  the classic structure of bulk-synchronous scientific codes.

Run:  python examples/mpi_style_solver.py [--switches N] [--iters K]
"""

import argparse

import numpy as np

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.collectives import (
    CollectiveContext,
    all_reduce_sum,
    barrier,
    run_collective,
)
from repro.gm.ports import GmPort
from repro.harness.report import format_table
from repro.sim.engine import Event
from repro.topology.generators import random_irregular

HALO_PORT = 3


def run_solver(routing: str, n_switches: int, iters: int,
               block: int, seed: int) -> dict:
    """Run the solver under one routing; return timing + stats."""
    topo = random_irregular(n_switches, seed=seed, hosts_per_switch=1)
    cfg = NetworkConfig(
        firmware="itb", routing=routing, reliable=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network(topo, config=cfg)
    sim = net.sim
    hosts = sorted(net.gm_hosts)
    n = len(hosts)
    rank_of = {h: i for i, h in enumerate(hosts)}
    halo_ports = {h: GmPort(net.gm_hosts[h], HALO_PORT,
                            send_tokens=8, recv_tokens=32)
                  for h in hosts}
    halo_bytes = 8  # one f64 boundary cell per side

    t_start = sim.now
    finished = Event(sim, name="solver-finished")
    remaining = {"n": n}

    def worker(host: int):
        rank = rank_of[host]
        left = hosts[(rank - 1) % n]
        right = hosts[(rank + 1) % n]
        port = halo_ports[host]
        # A fast neighbour may already send iteration it+1 while we
        # still collect iteration it: buffer early arrivals by tag.
        early: dict[int, int] = {}
        for it in range(iters):
            # --- halo exchange with both neighbours ----------------
            port.send(left, HALO_PORT, halo_bytes, tag=it)
            port.send(right, HALO_PORT, halo_bytes, tag=it)
            got = early.pop(it, 0)
            while got < 2:
                pm = yield port.receive()
                # GM idiom: hand the receive token straight back once
                # the buffer content has been consumed.
                port.provide_receive_token()
                if pm.tag == it:
                    got += 1
                else:
                    early[pm.tag] = early.get(pm.tag, 0) + 1
            # --- local relaxation sweep (compute time scales with
            # the owned block) --------------------------------------
            from repro.sim.engine import Timeout

            yield Timeout(block * 2.0)  # ~2 ns per cell per sweep
        remaining["n"] -= 1
        if remaining["n"] == 0:
            finished.succeed()

    for h in hosts:
        sim.process(worker(h), name=f"jacobi[{h}]")
    sim.run_until_event(finished)
    halo_time = sim.now - t_start

    # --- residual agreement + closing barrier over collectives -------
    ctx = CollectiveContext(net)
    local_residuals = list(np.arange(1, ctx.n + 1))
    sums = run_collective(ctx, all_reduce_sum(ctx, local_residuals))
    assert len(set(sums)) == 1, "all-reduce disagreed"
    run_collective(ctx, barrier(ctx))
    total_time = sim.now - t_start

    stats = net.total_stats()
    return {
        "routing": routing,
        "halo_us": halo_time / 1000.0,
        "total_us": total_time / 1000.0,
        "messages": int(stats["packets_sent"]),
        "forwarded": int(stats["packets_forwarded"]),
        "residual": sums[0],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--switches", type=int, default=12)
    parser.add_argument("--iters", type=int, default=20)
    parser.add_argument("--block", type=int, default=512)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    results = [
        run_solver(routing, args.switches, args.iters, args.block,
                   args.seed)
        for routing in ("updown", "itb")
    ]
    print(format_table(
        ["routing", "halo phase (us)", "total (us)", "packets",
         "in-transit forwards", "global residual"],
        [(r["routing"], r["halo_us"], r["total_us"], r["messages"],
          r["forwarded"], r["residual"]) for r in results],
        title=(f"1-D Jacobi on a {args.switches}-switch irregular COW,"
               f" {args.iters} iterations"),
    ))
    ud, itb = results
    speedup = ud["total_us"] / itb["total_us"]
    print(f"\nITB routing vs up*/down*: {speedup:.2f}x"
          f"  ({itb['forwarded']} packets took an in-transit hop)")
    if speedup >= 1.0:
        print("congestion relief outweighed the per-ITB cost here.")
    else:
        print("light nearest-neighbour traffic pays the ~1.3 us per-ITB"
              " cost without needing the congestion relief — the paper's")
        print("caveat that the penalty 'is only noticeable for short"
              " packets and at low network loads'. Heavier patterns")
        print("(see examples/irregular_cluster.py and the all-to-all"
              " kernel of EXP-M2) flip the sign.")


if __name__ == "__main__":
    main()
