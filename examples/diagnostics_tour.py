#!/usr/bin/env python3
"""Diagnostics tour: the observability toolkit in one run.

A reproduction is only trustworthy if you can see inside it.  This
example drives every diagnostic surface the library offers:

1. topology rendering (text + DOT) with the up*/down* orientation,
2. a packet-lifecycle timeline through an in-transit host,
3. one-way latency decomposition into the component budget,
4. live fabric-load metering (Jain fairness, root concentration),
5. the runtime deadlock detector catching a real circular wait on a
   ring fabric under forbidden minimal routes.

Run:  python examples/diagnostics_tour.py
"""

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.breakdown import measure_breakdown
from repro.harness.paths import fig6_paths
from repro.harness.report import format_table
from repro.harness.timeline import packet_timeline
from repro.harness.throughput import build_load_network
from repro.harness.workloads import drive_traffic
from repro.network.deadlock import detect_deadlock
from repro.network.instrumentation import attach_usage_meter
from repro.routing.routes import SourceRoute
from repro.routing.spanning_tree import build_orientation
from repro.topology.export import to_text
from repro.topology.generators import fig6_testbed, random_irregular
from repro.topology.graph import PortKind, Topology


def tour_topology() -> None:
    print("=" * 70)
    print("1. topology rendering (fig6 testbed with orientation)")
    print("=" * 70)
    topo, _roles = fig6_testbed()
    print(to_text(topo, build_orientation(topo)))


def tour_timeline_and_breakdown() -> None:
    print()
    print("=" * 70)
    print("2+3. packet timeline + latency breakdown through one ITB")
    print("=" * 70)
    cfg = NetworkConfig(
        firmware="itb", routing="updown", trace=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    paths = fig6_paths(net.topo, net.roles)
    breakdown = measure_breakdown(net, "host1", "host2", size=512,
                                  route=paths.itb5)
    # The breakdown sent exactly one packet; find it in the trace.
    inject = net.trace.first("inject")
    print(packet_timeline(net.trace, inject.detail["pid"]).render())
    print()
    print(format_table(
        ["component", "ns", "%"],
        breakdown.rows(),
        title="one-way budget, 512 B via 1 ITB"
              f" (total {breakdown.total_ns / 1000:.2f} us)",
        float_fmt="{:.1f}",
    ))


def tour_balance() -> None:
    print()
    print("=" * 70)
    print("4. live fabric-load metering (12-switch cluster)")
    print("=" * 70)
    rows = []
    for routing in ("updown", "itb"):
        topo = random_irregular(12, seed=7, hosts_per_switch=2)
        net = build_load_network(topo, routing)
        usage = attach_usage_meter(net)
        drive_traffic(net, rate_bytes_per_ns_per_host=0.05,
                      packet_size=512, duration_ns=120_000,
                      warmup_ns=20_000)
        rows.append((routing, usage.jain_fairness(),
                     usage.max_utilization(), usage.root_concentration()))
    print(format_table(
        ["routing", "Jain fairness", "max channel util", "root share"],
        rows, float_fmt="{:.3f}",
    ))


def tour_deadlock() -> None:
    print()
    print("=" * 70)
    print("5. runtime deadlock detection (4-switch ring, forbidden routes)")
    print("=" * 70)
    topo = Topology(name="ring-4")
    sw = [topo.add_switch(n_ports=8) for _ in range(4)]
    for i in range(4):
        a, b = sw[i], sw[(i + 1) % 4]
        topo.connect(a, topo.free_port(a), b, topo.free_port(b),
                     kind=PortKind.SAN)
    hosts = [topo.attach_host(s, topo.free_port(s)) for s in sw]
    cfg = NetworkConfig(
        firmware="itb", routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network(topo, config=cfg, roles={})
    for i in range(4):
        path = [sw[(i + k) % 4] for k in range(3)]
        ports = [topo.port_toward(a, b) for a, b in zip(path, path[1:])]
        dst = hosts[(i + 2) % 4]
        ports.append(topo.port_toward(path[-1], dst))
        route = SourceRoute(src=hosts[i], dst=dst, ports=tuple(ports),
                            switch_path=tuple(path))
        net.nics[hosts[i]].firmware.host_send(
            dst=dst, payload_len=4096, gm={"last": True}, route=route)
    net.sim.run(until=60_000.0)
    report = detect_deadlock(net)
    print(report.describe())
    print("(up*/down* or ITB routes under the same pressure never"
          " deadlock — see tests/test_deadlock_detection.py)")


def main() -> None:
    tour_topology()
    tour_timeline_and_breakdown()
    tour_balance()
    tour_deadlock()


if __name__ == "__main__":
    main()
