#!/usr/bin/env python3
"""GM mapping phase + fault tolerance, end to end.

GM provides "network mapping and route computation" and "reliable and
ordered packet delivery in presence of network faults" (paper
Section 3).  This example exercises both on the simulator:

1. a mapper host explores an irregular fabric with scout packets,
   reconstructing the topology one port at a time;
2. the reconstructed map is compared against ground truth;
3. the fabric is then degraded (random CRC corruption) and reliable
   traffic is pushed across it — every corrupted packet is recovered
   by retransmission.

Run:  python examples/network_discovery.py [--switches N] [--seed S]
"""

import argparse

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.discovery import discover_network
from repro.harness.report import format_table
from repro.network.faults import FaultPlan, install_fault_plan
from repro.routing.spanning_tree import build_orientation
from repro.topology.export import to_text
from repro.topology.generators import random_irregular


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--switches", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    topo = random_irregular(args.switches, seed=args.seed,
                            hosts_per_switch=2)
    cfg = NetworkConfig(
        firmware="itb", routing="itb", reliable=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network(topo, config=cfg)

    # -- ground truth -----------------------------------------------------
    orientation = build_orientation(topo)
    print(to_text(topo, orientation))

    # -- 1. exploration ---------------------------------------------------
    mapper = sorted(net.gm_hosts)[0]
    result = discover_network(net, mapper)
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ("mapper host", net.topo.node_name(mapper)),
            ("switches discovered / truth",
             f"{result.n_switches} / {len(topo.switches())}"),
            ("hosts discovered / truth",
             f"{len(result.hosts)} / {len(topo.hosts())}"),
            ("scout probes sent", result.probes_sent),
            ("mapping time (simulated us)",
             f"{result.elapsed_ns / 1000:.1f}"),
        ],
        title="mapper exploration",
    ))

    # -- 2. isomorphism check ----------------------------------------------
    ours = sorted(result.degree(l) for l in result.switch_ports)
    truth = sorted(len(topo.switch_neighbors(s)) for s in topo.switches())
    print(f"\nfabric degree multiset: discovered {ours} == truth {truth}:"
          f" {ours == truth}")

    # -- 3. reliability under corruption -----------------------------------
    plan = FaultPlan(corrupt_probability=0.3, seed=5)
    install_fault_plan(net, plan)
    hosts = sorted(net.gm_hosts)
    a, b = net.gm_hosts[hosts[0]], net.gm_hosts[hosts[-1]]
    got = []

    def receiver():
        while True:
            msg = yield b.receive()
            got.append(msg.tag)

    net.sim.process(receiver(), name="rx")
    n = 10
    for i in range(n):
        a.send(b.host, 512, tag=i)
    # Go-back-N with ~1 ms resend timers under 30 % corruption can
    # need many rounds for the tail messages; give it half a second.
    net.sim.run(until=net.sim.now + 500_000_000)

    print()
    print(format_table(
        ["quantity", "value"],
        [
            ("messages sent over the degraded fabric", n),
            ("packets corrupted in flight (CRC drop)", plan.corrupted),
            ("GM retransmissions", a.retransmissions),
            ("delivered, complete and in order",
             str(sorted(got) == list(range(n)))),
        ],
        title="reliability under 30 % CRC corruption",
    ))


if __name__ == "__main__":
    main()
