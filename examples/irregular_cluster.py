#!/usr/bin/env python3
"""Network-level payoff: ITB routing on an irregular cluster of
workstations — the scenario the paper's introduction motivates.

Builds a random irregular COW topology (the physical-placement-driven
wiring typical of real clusters), then:

1. analyses the routes the two mappers compute — path lengths,
   spanning-tree-root congestion, and how many pairs need ITBs,
2. verifies deadlock freedom via the channel dependency graph,
3. drives uniform open-loop traffic at increasing offered load and
   compares accepted throughput and latency under up*/down* vs ITB
   routing.

Run:  python examples/irregular_cluster.py [--switches N] [--full]
"""

import argparse
import itertools

from repro.harness.report import format_table
from repro.harness.throughput import run_throughput
from repro.routing.cdg import is_deadlock_free
from repro.routing.itb import ItbRouter
from repro.routing.minimal import MinimalRouter
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.generators import random_irregular


def analyse_routes(n_switches: int, seed: int) -> None:
    topo = random_irregular(n_switches, seed=seed, hosts_per_switch=2)
    orientation = build_orientation(topo)
    ud = UpDownRouter(topo, orientation)
    itb = ItbRouter(topo, orientation)
    mn = MinimalRouter(topo)

    hosts = topo.hosts()
    pairs = list(itertools.permutations(hosts, 2))
    ud_routes = {p: ud.route(*p) for p in pairs}
    itb_routes = {p: itb.itb_route(*p) for p in pairs}

    avg = lambda xs: sum(xs) / len(xs)  # noqa: E731
    ud_hops = avg([len(r.switch_hops()) for r in ud_routes.values()])
    itb_hops = avg([len(r.switch_hops()) for r in itb_routes.values()])
    min_hops = avg([len(mn.route(*p).switch_hops()) for p in pairs])
    n_with_itbs = sum(1 for r in itb_routes.values() if r.n_itbs > 0)
    root = orientation.root
    root_ud = sum(1 for r in ud_routes.values() if root in r.switch_path)
    root_itb = sum(
        1 for r in itb_routes.values()
        if any(root in seg.switch_path for seg in r.segments)
    )

    print(format_table(
        ["quantity", "value"],
        [
            ("switches / hosts", f"{n_switches} / {len(hosts)}"),
            ("avg inter-switch hops, minimal", f"{min_hops:.2f}"),
            ("avg inter-switch hops, up*/down*", f"{ud_hops:.2f}"),
            ("avg inter-switch hops, ITB", f"{itb_hops:.2f}"),
            ("pairs routed through >= 1 ITB",
             f"{n_with_itbs}/{len(pairs)}"),
            ("routes crossing the root, up*/down*",
             f"{root_ud}/{len(pairs)}"),
            ("routes crossing the root, ITB", f"{root_itb}/{len(pairs)}"),
            ("up*/down* deadlock-free",
             str(is_deadlock_free(topo, ud_routes.values()))),
            ("ITB routing deadlock-free",
             str(is_deadlock_free(topo, itb_routes.values()))),
        ],
        title=f"route analysis, {n_switches}-switch irregular cluster",
    ))


def load_sweep(n_switches: int, full: bool, seed: int) -> None:
    rates = (0.01, 0.02, 0.04, 0.08, 0.12) if full else (0.02, 0.06, 0.12)
    duration = 300_000.0 if full else 150_000.0
    result = run_throughput(
        n_switches=n_switches, packet_size=512, rates=rates,
        duration_ns=duration, warmup_ns=duration / 5,
        hosts_per_switch=2, topo_seed=seed,
    )
    rows = []
    for routing in ("updown", "itb"):
        for p in result.series(routing):
            rows.append((routing, p.offered_bytes_per_ns_per_host,
                         p.accepted, p.mean_latency_ns / 1000.0))
    print()
    print(format_table(
        ["routing", "offered (B/ns/host)", "accepted (B/ns/host)",
         "mean latency (us)"],
        rows,
        title=f"open-loop uniform traffic, {n_switches} switches",
        float_fmt="{:.4f}",
    ))
    print("\npeak accepted throughput: up*/down*"
          f" {result.peak_accepted('updown'):.4f},"
          f" ITB {result.peak_accepted('itb'):.4f}"
          f"  (ratio {result.throughput_ratio:.2f}x)")
    print("the ratio grows with network size — the paper's [2,3] studies"
          " report ~2x at 64 switches, which REPRO_FULL-scale runs of")
    print("benchmarks/test_bench_throughput.py reproduce.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--switches", type=int, default=16)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()

    analyse_routes(args.switches, args.seed)
    load_sweep(args.switches, args.full, args.seed)


if __name__ == "__main__":
    main()
