#!/usr/bin/env python3
"""Regenerate the paper's evaluation section end to end.

Runs EXP-F7 (Figure 7: code overhead of ITB support) and EXP-F8
(Figure 8: per-ITB ejection/re-injection overhead) at configurable
scale and prints the same series the paper plots, plus a
paper-vs-measured summary for each.

Run:  python examples/reproduce_paper.py [--full]

``--full`` uses the paper's settings (100 iterations, the whole
gm_allsize size ladder); the default is a quick pass.
"""

import argparse

from repro.harness.fig7 import DEFAULT_SIZES, run_fig7
from repro.harness.fig8 import run_fig8
from repro.harness.report import format_table, paper_vs_measured


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale settings (slower)")
    args = parser.parse_args()

    if args.full:
        sizes, iterations = DEFAULT_SIZES, 100
    else:
        sizes, iterations = (16, 128, 1024, 4096), 20

    # ------------------------------------------------------------------
    print("=" * 72)
    print("EXP-F7: overhead of the new GM/MCP code (paper Figure 7)")
    print("=" * 72)
    f7 = run_fig7(sizes=sizes, iterations=iterations)
    print(format_table(
        ["size (B)", "original MCP (us)", "modified MCP (us)",
         "overhead (ns)", "relative (%)"],
        [(r.size, r.original_ns / 1000, r.modified_ns / 1000,
          r.overhead_ns, r.relative_pct) for r in f7.rows],
    ))
    print()
    print(paper_vs_measured([
        ("average overhead", "~125 ns", f"{f7.mean_overhead_ns:.0f} ns",
         100 <= f7.mean_overhead_ns <= 160),
        ("maximum overhead", "<= 300 ns", f"{f7.max_overhead_ns:.0f} ns",
         f7.max_overhead_ns <= 300),
        ("relative, short -> long",
         "1 % -> 0.4 %",
         f"{f7.relative_short_pct:.2f} % -> {f7.relative_long_pct:.2f} %",
         f7.relative_short_pct > f7.relative_long_pct),
    ]))

    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("EXP-F8: per-ITB overhead for in-transit packets (paper Figure 8)")
    print("=" * 72)
    f8 = run_fig8(sizes=sizes, iterations=iterations)
    print(format_table(
        ["size (B)", "UD (us)", "UD-ITB (us)",
         "per-ITB overhead (us)", "relative (%)"],
        [(r.size, r.ud_ns / 1000, r.ud_itb_ns / 1000,
          r.overhead_ns / 1000, r.relative_pct) for r in f8.rows],
    ))
    print()
    print(paper_vs_measured([
        ("per-ITB overhead", "~1.3 us",
         f"{f8.mean_overhead_ns / 1000:.2f} us",
         1.1 <= f8.mean_overhead_ns / 1000 <= 1.6),
        ("relative, short -> long",
         "10 % -> 3 %",
         f"{f8.relative_short_pct:.1f} % -> {f8.relative_long_pct:.1f} %",
         f8.relative_short_pct > f8.relative_long_pct),
    ]))

    print()
    print("Conclusion (paper Section 6): the code overhead (~125 ns/packet)"
          " and the per-ITB latency (~1.3 us) do not restrict the")
    print("potential benefits of the mechanism — see"
          " examples/irregular_cluster.py for the network-level payoff.")


if __name__ == "__main__":
    main()
