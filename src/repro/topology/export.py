"""Topology export: Graphviz DOT and a plain-text summary.

Debugging irregular topologies by reading link lists is painful; this
module renders a :class:`~repro.topology.graph.Topology` as DOT (for
offline rendering) or as an indented text description, optionally
annotated with an up*/down* orientation so forbidden turns can be
eyeballed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.topology.graph import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.routing.spanning_tree import UpDownOrientation

__all__ = ["to_dot", "to_text"]


def to_dot(
    topo: Topology,
    orientation: Optional["UpDownOrientation"] = None,
    name: str = "myrinet",
) -> str:
    """Render as Graphviz DOT.

    Switches are boxes, hosts ellipses; LAN cables dashed, SAN solid.
    With an orientation, fabric links become directed edges pointing
    **up** and switches are labelled with their tree level.
    """
    lines = [f"graph {name} {{" if orientation is None
             else f"digraph {name} {{"]
    lines.append('  node [fontname="monospace"];')
    for s in topo.switches():
        label = topo.node_name(s)
        if orientation is not None:
            label += f"\\nlevel {orientation.level[s]}"
            if s == orientation.root:
                label += " (root)"
        lines.append(f'  n{s} [shape=box, label="{label}"];')
    for h in topo.hosts():
        lines.append(f'  n{h} [shape=ellipse, label="{topo.node_name(h)}"];')

    edge_op = "--" if orientation is None else "->"
    for link in topo.links:
        style = "dashed" if link.kind is PortKind.LAN else "solid"
        attrs = [f"style={style}"]
        a, b = link.node_a, link.node_b
        if (orientation is not None
                and link.link_id in orientation.up_end):
            # Point the arrow toward the up end.
            up = orientation.up_end[link.link_id]
            down = b if up == a else a
            lines.append(
                f"  n{down} {edge_op} n{up}"
                f" [{', '.join(attrs)}];"
            )
            continue
        if orientation is not None:
            attrs.append("dir=none")
        lines.append(f"  n{a} {edge_op} n{b} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines)


def to_text(topo: Topology,
            orientation: Optional["UpDownOrientation"] = None) -> str:
    """Human-readable cabling summary, one node per line."""
    lines = [f"topology {topo.name!r}: {len(topo.switches())} switches,"
             f" {len(topo.hosts())} hosts, {len(topo.links)} cables"]
    for s in topo.switches():
        tag = ""
        if orientation is not None:
            tag = f"  [level {orientation.level[s]}"
            tag += ", root]" if s == orientation.root else "]"
        lines.append(f"  {topo.node_name(s)}{tag}")
        for port, link in topo.ports_of(s).items():
            far_node, far_port = link.far_end(s, port)
            kind = link.kind.value.upper()
            if far_node == s:
                desc = f"loopback to own port {far_port}"
            else:
                desc = f"{topo.node_name(far_node)} port {far_port}"
            direction = ""
            if (orientation is not None
                    and link.link_id in orientation.up_end
                    and not link.is_loop):
                direction = (" (up)" if orientation.up_end[link.link_id]
                             != s else " (down)")
            lines.append(f"    port {port} ({kind}) -> {desc}{direction}")
    return "\n".join(lines)
