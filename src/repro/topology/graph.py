"""Port-accurate topology graph.

Nodes are switches or hosts, identified by dense integer ids.  Every
link connects exactly two *(node, port)* endpoints and carries a
:class:`PortKind` (LAN or SAN) and a physical length used for
propagation delay.  Myrinet switches strip one routing byte per
traversal; the simulator therefore needs the per-switch *output port
number* for every hop, which this module resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import networkx as nx

__all__ = ["Link", "NodeKind", "PortKind", "Topology", "TopologyError"]


class TopologyError(ValueError):
    """Raised for ill-formed topology construction or queries."""


class NodeKind(Enum):
    """Whether a topology node is a switch or a host NIC."""

    SWITCH = "switch"
    HOST = "host"


class PortKind(Enum):
    """Physical layer of a link/port.

    Myrinet M2FM-SW8 switches expose 4 LAN and 4 SAN ports; latency
    through a switch depends on the kinds of the input and output ports
    traversed (per the paper's Section 5 methodology note).
    """

    LAN = "lan"
    SAN = "san"


@dataclass(frozen=True, slots=True)
class Link:
    """An undirected physical cable between two (node, port) endpoints.

    A *loopback* cable (both endpoints on the same switch, distinct
    ports) is legal Myrinet wiring; the paper's Figure 8 methodology
    uses one ("a loop in switch 2") to equalize the number of switch
    crossings between the compared paths.
    """

    link_id: int
    node_a: int
    port_a: int
    node_b: int
    port_b: int
    kind: PortKind
    length_m: float = 3.0

    @property
    def is_loop(self) -> bool:
        return self.node_a == self.node_b

    def other(self, node: int) -> int:
        """The opposite node — ambiguous (and an error) for loopbacks."""
        if self.is_loop:
            raise TopologyError(
                f"link {self.link_id} is a loopback; use far_end()"
            )
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise TopologyError(f"node {node} is not an endpoint of link {self.link_id}")

    def far_end(self, node: int, port: int) -> tuple[int, int]:
        """(node, port) of the opposite end, given one concrete end."""
        if (node, port) == (self.node_a, self.port_a):
            return (self.node_b, self.port_b)
        if (node, port) == (self.node_b, self.port_b):
            return (self.node_a, self.port_a)
        raise TopologyError(
            f"({node},{port}) is not an endpoint of link {self.link_id}"
        )

    def direction_from(self, node: int, port: int) -> int:
        """0 when entering at the (node_a, port_a) end, 1 otherwise."""
        if (node, port) == (self.node_a, self.port_a):
            return 0
        if (node, port) == (self.node_b, self.port_b):
            return 1
        raise TopologyError(
            f"({node},{port}) is not an endpoint of link {self.link_id}"
        )

    def port_at(self, node: int) -> int:
        """This link's port number on ``node`` (non-loopback only)."""
        if self.is_loop:
            raise TopologyError(
                f"link {self.link_id} is a loopback; ports are ambiguous"
            )
        if node == self.node_a:
            return self.port_a
        if node == self.node_b:
            return self.port_b
        raise TopologyError(f"node {node} is not an endpoint of link {self.link_id}")

    def endpoints(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """Both (node, port) ends, the (a, b) order of construction."""
        return (self.node_a, self.port_a), (self.node_b, self.port_b)


@dataclass
class _Node:
    node_id: int
    kind: NodeKind
    name: str
    n_ports: int
    # port number -> link_id
    ports: dict[int, int] = field(default_factory=dict)


class Topology:
    """Mutable builder + immutable-query network description."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._nodes: list[_Node] = []
        self._links: list[Link] = []
        self._derived: dict = {}

    # ------------------------------------------------------------------
    # derived-data memoization
    # ------------------------------------------------------------------

    def derived(self, key, build):
        """Memoize pure topology-derived data under ``key``.

        Nodes and links are append-only, so ``(n_nodes, n_links)`` is a
        complete mutation signature: any construction call changes it
        and invalidates every cached entry.  Cached values are shared —
        callers must treat them as immutable.

        Routing (adjacency, BFS distances) and the query helpers below
        are called per host pair during route computation; memoizing
        them turns the route-warm phase from quadratic re-derivation
        into dictionary lookups.
        """
        # setdefault keeps instances deserialized from older pickles working.
        cache = self.__dict__.setdefault("_derived", {})
        sig = (len(self._nodes), len(self._links))
        hit = cache.get(key)
        if hit is not None and hit[0] == sig:
            return hit[1]
        value = build()
        cache[key] = (sig, value)
        return value

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_switch(self, n_ports: int = 8, name: str = "") -> int:
        """Add a switch with ``n_ports`` ports; return its node id."""
        if n_ports < 1:
            raise TopologyError("switch needs at least one port")
        nid = len(self._nodes)
        self._nodes.append(
            _Node(nid, NodeKind.SWITCH, name or f"sw{nid}", n_ports)
        )
        return nid

    def add_host(self, name: str = "") -> int:
        """Add a host (single NIC port, port number 0); return node id."""
        nid = len(self._nodes)
        self._nodes.append(_Node(nid, NodeKind.HOST, name or f"host{nid}", 1))
        return nid

    def connect(
        self,
        node_a: int,
        port_a: int,
        node_b: int,
        port_b: int,
        kind: PortKind = PortKind.SAN,
        length_m: float = 3.0,
    ) -> int:
        """Cable ``(node_a, port_a)`` to ``(node_b, port_b)``; return link id."""
        na, nb = self._node(node_a), self._node(node_b)
        for node, port in ((na, port_a), (nb, port_b)):
            if not 0 <= port < node.n_ports:
                raise TopologyError(
                    f"{node.name} has no port {port} (0..{node.n_ports - 1})"
                )
        if node_a == node_b:
            # Loopback cable: both ends on one switch, distinct ports.
            if na.kind is not NodeKind.SWITCH:
                raise TopologyError("loopback cables only make sense on switches")
            if port_a == port_b:
                raise TopologyError("loopback needs two distinct ports")
        if port_a in na.ports or port_b in nb.ports:
            raise TopologyError("port already cabled")
        link_id = len(self._links)
        link = Link(link_id, node_a, port_a, node_b, port_b, kind, length_m)
        self._links.append(link)
        na.ports[port_a] = link_id
        nb.ports[port_b] = link_id
        return link_id

    def attach_host(
        self,
        switch: int,
        switch_port: int,
        kind: PortKind = PortKind.SAN,
        name: str = "",
        length_m: float = 3.0,
    ) -> int:
        """Convenience: add a host and cable it to ``switch``; return host id."""
        host = self.add_host(name=name)
        self.connect(switch, switch_port, host, 0, kind=kind, length_m=length_m)
        return host

    def without_links(self, link_ids: "set[int] | frozenset[int]") -> "Topology":
        """A degraded copy of this topology with some cables removed.

        Node ids are preserved (nodes are recreated in id order), so
        routes computed on the copy are valid on the original fabric;
        link ids shift to stay sequential, which is fine because
        routing works in (switch, port) terms.  Used by the fault
        injector to model the mapper's view after a link/switch/host
        failure: hosts whose only cable is removed disappear from
        ``hosts_on`` and stop being in-transit candidates.
        """
        clone = Topology(name=f"{self.name}-degraded")
        for node in self._nodes:
            if node.kind is NodeKind.SWITCH:
                clone.add_switch(node.n_ports, name=node.name)
            else:
                clone.add_host(name=node.name)
        for link in self._links:
            if link.link_id in link_ids:
                continue
            clone.connect(link.node_a, link.port_a, link.node_b,
                          link.port_b, kind=link.kind,
                          length_m=link.length_m)
        return clone

    def free_port(self, switch: int) -> int:
        """Lowest uncabled port number on ``switch``."""
        node = self._node(switch)
        for p in range(node.n_ports):
            if p not in node.ports:
                return p
        raise TopologyError(f"{node.name} has no free ports")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _node(self, node_id: int) -> _Node:
        try:
            return self._nodes[node_id]
        except IndexError:
            raise TopologyError(f"no node {node_id}") from None

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links)

    def link(self, link_id: int) -> Link:
        """The link with a given id."""
        try:
            return self._links[link_id]
        except IndexError:
            raise TopologyError(f"no link {link_id}") from None

    def kind(self, node_id: int) -> NodeKind:
        """Whether a node is a switch or a host."""
        return self._node(node_id).kind

    def node_name(self, node_id: int) -> str:
        """Human-readable node name."""
        return self._node(node_id).name

    def is_switch(self, node_id: int) -> bool:
        """True when the node is a switch."""
        return self._node(node_id).kind is NodeKind.SWITCH

    def is_host(self, node_id: int) -> bool:
        """True when the node is a host."""
        return self._node(node_id).kind is NodeKind.HOST

    def switches(self) -> list[int]:
        """All switch node ids, ascending."""
        return [n.node_id for n in self._nodes if n.kind is NodeKind.SWITCH]

    def hosts(self) -> list[int]:
        """All host node ids, ascending."""
        return [n.node_id for n in self._nodes if n.kind is NodeKind.HOST]

    def n_ports(self, node_id: int) -> int:
        """Port count of a node."""
        return self._node(node_id).n_ports

    def link_at(self, node_id: int, port: int) -> Optional[Link]:
        """The link cabled at (node, port), or None if the port is free."""
        node = self._node(node_id)
        link_id = node.ports.get(port)
        return None if link_id is None else self._links[link_id]

    def ports_of(self, node_id: int) -> dict[int, Link]:
        """Cabled ports of a node: port number -> link."""
        node = self._node(node_id)
        return {p: self._links[lid] for p, lid in sorted(node.ports.items())}

    def neighbors(self, node_id: int) -> list[tuple[int, int, Link]]:
        """(port, far_node, link) triples, sorted by port number.

        A loopback cable contributes two entries (one per port), both
        with ``far_node == node_id``.  The returned list is memoized —
        treat it as immutable.
        """
        return self.derived(("neighbors", node_id),
                            lambda: self._build_neighbors(node_id))

    def _build_neighbors(self, node_id: int) -> list[tuple[int, int, Link]]:
        out = []
        for port, link in self.ports_of(node_id).items():
            far_node, _far_port = link.far_end(node_id, port)
            out.append((port, far_node, link))
        return out

    def switch_neighbors(self, switch: int) -> list[tuple[int, int, Link]]:
        """Like :meth:`neighbors` but restricted to *other* switches.

        Loopback cables are excluded: routing algorithms never use
        them (they exist only for hand-built latency-equalization
        routes, per the paper's Figure 8 methodology).  Memoized —
        treat the returned list as immutable.
        """
        return self.derived(("switch_neighbors", switch), lambda: [
            (p, n, l)
            for (p, n, l) in self.neighbors(switch)
            if self.is_switch(n) and not l.is_loop
        ])

    def hosts_on(self, switch: int) -> list[int]:
        """Hosts directly attached to ``switch`` (sorted by id).

        Memoized — treat the returned list as immutable.
        """
        return self.derived(("hosts_on", switch), lambda: sorted(
            n for (_p, n, _l) in self.neighbors(switch) if self.is_host(n)
        ))

    def switch_of(self, host: int) -> int:
        """The switch a host's NIC is cabled to."""
        node = self._node(host)
        if node.kind is not NodeKind.HOST:
            raise TopologyError(f"{node.name} is not a host")
        if 0 not in node.ports:
            raise TopologyError(f"host {node.name} is not cabled")
        link = self._links[node.ports[0]]
        other, _port = link.far_end(host, 0)
        if not self.is_switch(other):
            raise TopologyError(f"host {node.name} cabled to a non-switch")
        return other

    def host_link(self, host: int) -> Link:
        """The NIC cable of ``host``."""
        node = self._node(host)
        if node.kind is not NodeKind.HOST or 0 not in node.ports:
            raise TopologyError(f"{node.name} is not a cabled host")
        return self._links[node.ports[0]]

    def links_between(self, node_a: int, node_b: int) -> list[Link]:
        """All parallel cables between two nodes (sorted by link id).

        With ``node_a == node_b`` this returns the loopback cables of
        that switch.  Memoized — treat the returned list as immutable.
        """
        index = self.derived("links_between", self._build_link_index)
        if node_a <= node_b:
            return index.get((node_a, node_b), [])
        return index.get((node_b, node_a), [])

    def _build_link_index(self) -> dict[tuple[int, int], list[Link]]:
        index: dict[tuple[int, int], list[Link]] = {}
        for link in self._links:
            a, b = link.node_a, link.node_b
            key = (a, b) if a <= b else (b, a)
            index.setdefault(key, []).append(link)
        return index

    def port_toward(self, node_a: int, node_b: int) -> int:
        """Output port on ``node_a`` of the lowest-id link to ``node_b``.

        Served from a flat memoized ``(from, to) -> port`` table: route
        construction calls this once per hop of every route, and the
        per-call list lookup through :meth:`links_between` dominated
        batched all-pairs builds on large fabrics.
        """
        table = self.derived("port_toward", self._build_port_table)
        port = table.get((node_a, node_b))
        if port is None:
            links = self.links_between(node_a, node_b)
            if links:
                # Only loopback cables are absent from the table; defer
                # to port_at for the legacy ambiguity error.
                return links[0].port_at(node_a)
            raise TopologyError(
                f"no link between {self.node_name(node_a)} and"
                f" {self.node_name(node_b)}"
            )
        return port

    def _build_port_table(self) -> dict[tuple[int, int], int]:
        # Links iterate in ascending id order, so setdefault keeps the
        # lowest-id cable of every parallel bundle — same pick as
        # links_between(...)[0].  Loopbacks are skipped (their port is
        # ambiguous; port_at raises for them, preserved above).
        table: dict[tuple[int, int], int] = {}
        for link in self._links:
            if link.is_loop:
                continue
            (na, pa), (nb, pb) = link.endpoints()
            table.setdefault((na, nb), pa)
            table.setdefault((nb, na), pb)
        return table

    # ------------------------------------------------------------------
    # derived graphs / validation
    # ------------------------------------------------------------------

    def switch_graph(self) -> "nx.MultiGraph":
        """networkx MultiGraph over switches only (parallel links kept)."""
        g = nx.MultiGraph()
        g.add_nodes_from(self.switches())
        for link in self._links:
            if self.is_switch(link.node_a) and self.is_switch(link.node_b):
                g.add_edge(link.node_a, link.node_b, key=link.link_id, link=link)
        return g

    def full_graph(self) -> "nx.MultiGraph":
        """networkx MultiGraph over all nodes."""
        g = nx.MultiGraph()
        g.add_nodes_from(range(self.n_nodes))
        for link in self._links:
            g.add_edge(link.node_a, link.node_b, key=link.link_id, link=link)
        return g

    def validate(self) -> None:
        """Raise :class:`TopologyError` on structural problems.

        Checks: every host cabled to exactly one switch; the switch
        fabric is connected; every host can reach every other host.
        """
        for host in self.hosts():
            self.switch_of(host)  # raises when mis-cabled
        switches = self.switches()
        if switches:
            g = self.switch_graph()
            if not nx.is_connected(nx.Graph(g)):
                raise TopologyError("switch fabric is not connected")
        if self.hosts() and not switches:
            raise TopologyError("hosts present but no switches")

    def walk_route(self, src_host: int, routing_ports: list[int]) -> int:
        """Follow a Myrinet source route from ``src_host``.

        ``routing_ports`` holds one output-port byte per switch
        traversed.  Returns the node reached after consuming all bytes
        (which must be a host for a deliverable route).  Raises on a
        dangling port or a byte sequence that leaves the fabric early.
        """
        link = self.host_link(src_host)
        current, _port = link.far_end(src_host, 0)
        for i, port in enumerate(routing_ports):
            if not self.is_switch(current):
                raise TopologyError(
                    f"route byte {i} consumed at non-switch"
                    f" {self.node_name(current)}"
                )
            nxt_link = self.link_at(current, port)
            if nxt_link is None:
                raise TopologyError(
                    f"route byte {i}: {self.node_name(current)} port {port}"
                    " is not cabled"
                )
            current, _port = nxt_link.far_end(current, port)
        return current

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Topology {self.name!r} switches={len(self.switches())}"
            f" hosts={len(self.hosts())} links={len(self._links)}>"
        )
