"""Network topology model and generators.

A :class:`Topology` is a port-accurate description of a Myrinet
installation: switches with numbered ports, hosts with a single NIC
port, and links typed LAN or SAN (the two Myrinet physical layers —
switch fall-through latency differs by the traversed port types, a
detail the paper's Figure 8 methodology explicitly controls for).

Generators build the paper's topologies (Figure 1 example network,
Figure 6 evaluation testbed) plus random irregular COW topologies for
the network-level experiments.
"""

from repro.topology.graph import (
    Link,
    NodeKind,
    PortKind,
    Topology,
    TopologyError,
)
from repro.topology.generators import (
    fig1_topology,
    fig6_testbed,
    linear_switches,
    mesh_2d,
    random_irregular,
    star_of_switches,
    torus_2d,
)
from repro.topology.export import to_dot, to_text

__all__ = [
    "Link",
    "NodeKind",
    "PortKind",
    "Topology",
    "TopologyError",
    "fig1_topology",
    "fig6_testbed",
    "linear_switches",
    "mesh_2d",
    "random_irregular",
    "star_of_switches",
    "to_dot",
    "to_text",
    "torus_2d",
]
