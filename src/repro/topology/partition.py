"""Split a topology into K switch partitions joined by cut links.

The partitioned engine (:mod:`repro.sim.partition`) runs one
independent calendar per partition; this module produces the static
plan it needs: a deterministic assignment of switches (hosts follow
their switch) to ``n_parts`` balanced groups, the *cut links* whose
endpoints land in different groups, and one standalone sub-topology
per group.

At every cut a **gateway host** is attached to the local switch on the
exact port the cut cable used, standing in for "everything beyond the
cut".  Traffic that must cross a partition boundary terminates at the
local gateway, rides a cross-partition message (delay = the cut wire
latency, which is also the engine lookahead), and re-injects from the
remote gateway — the same store-and-forward shape the paper's
in-transit buffers give a host in the middle of a route, applied at
partition boundaries.

The assignment is a pure function of ``(topology, n_parts)``: regions
are grown one at a time to their balanced target size by deterministic
BFS frontier expansion (sorted-port neighbor order, seeded at the
lowest unassigned switch id), which keeps each region connected
whenever the fabric allows it.  Worker count never influences the
plan, so partitioned results are independent of ``--engine-jobs``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.topology.graph import Link, Topology, TopologyError

__all__ = ["PartitionPlan", "partition_topology"]


@dataclass
class PartitionPlan:
    """The static result of cutting one topology into K partitions."""

    topo: Topology
    n_parts: int
    #: Global node id (switch or host) -> partition index.
    part_of: dict[int, int]
    #: One standalone topology per partition (gateway hosts included).
    subs: list[Topology]
    #: Per partition: global node id -> local node id.
    to_local: list[dict[int, int]]
    #: Per partition: local node id -> global node id (gateway hosts,
    #: which exist only locally, are absent).
    to_global: list[dict[int, int]]
    #: Cut cables, by ascending global link id.
    cut_links: list[Link] = field(default_factory=list)
    #: (partition, global cut link id) -> local gateway host id.
    gateways: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def min_cut_length_m(self) -> float:
        """Shortest cut cable — bounds the engine lookahead."""
        if not self.cut_links:
            raise TopologyError("partition plan has no cut links")
        return min(link.length_m for link in self.cut_links)

    def local_host(self, part: int, global_host: int) -> int:
        """Local id of a real (non-gateway) host inside ``part``."""
        return self.to_local[part][global_host]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = [len(sub.switches()) for sub in self.subs]
        return (f"<PartitionPlan {self.topo.name!r} parts={sizes}"
                f" cuts={len(self.cut_links)}>")


def _grow_regions(topo: Topology, n_parts: int) -> dict[int, int]:
    """Assign switches to ``n_parts`` balanced connected regions.

    Each region is seeded at the lowest unassigned switch id and grown
    to its target size by BFS over unassigned switches, expanding
    neighbors in :meth:`Topology.switch_neighbors` order (sorted by
    port number) — fully deterministic.  When a region's frontier dies
    before reaching its target (the unassigned remainder is
    disconnected) the region stays short and the shortfall spills into
    later regions; :func:`partition_topology` validates every
    sub-topology afterwards, so an unroutable split fails loudly.
    """
    switches = topo.switches()
    remaining = set(switches)
    assignment: dict[int, int] = {}
    base, extra = divmod(len(switches), n_parts)
    nominal_cum = 0
    for part in range(n_parts):
        if not remaining:
            break
        # Nominal balanced size, plus whatever earlier regions fell
        # short of their own targets when their frontiers died.
        target = base + (1 if part < extra else 0)
        target += nominal_cum - len(assignment)
        nominal_cum += base + (1 if part < extra else 0)
        seed = min(remaining)
        remaining.discard(seed)
        assignment[seed] = part
        grown = 1
        queue = deque([seed])
        while queue and grown < target:
            sw = queue.popleft()
            for _port, far, _link in topo.switch_neighbors(sw):
                if far in remaining:
                    remaining.discard(far)
                    assignment[far] = part
                    queue.append(far)
                    grown += 1
                    if grown >= target:
                        break
    for sw in sorted(remaining):  # ran out of parts: tack onto the last
        assignment[sw] = n_parts - 1
    return assignment


def partition_topology(topo: Topology, n_parts: int) -> PartitionPlan:
    """Cut ``topo`` into ``n_parts`` balanced switch partitions.

    Raises :class:`TopologyError` when a partition's switch fabric
    comes out disconnected (pick a different ``n_parts``, or a
    topology whose BFS layout cuts cleanly) — the conservative engine
    needs every sub-topology to be a routable network of its own.
    """
    switches = topo.switches()
    if not 1 <= n_parts <= len(switches):
        raise TopologyError(
            f"cannot cut {len(switches)} switches into {n_parts} partitions")

    part_of = _grow_regions(topo, n_parts)
    for host in topo.hosts():
        part_of[host] = part_of[topo.switch_of(host)]

    subs = [Topology(name=f"{topo.name}/p{part}") for part in range(n_parts)]
    to_local: list[dict[int, int]] = [{} for _ in range(n_parts)]
    to_global: list[dict[int, int]] = [{} for _ in range(n_parts)]
    for sw in switches:  # global id order => deterministic local ids
        part = part_of[sw]
        local = subs[part].add_switch(topo.n_ports(sw),
                                      name=topo.node_name(sw))
        to_local[part][sw] = local
        to_global[part][local] = sw

    cut_links: list[Link] = []
    gateways: dict[tuple[int, int], int] = {}
    for link in topo.links:
        ends = link.endpoints()
        pa, pb = part_of[ends[0][0]], part_of[ends[1][0]]
        if pa == pb:
            sub, local = subs[pa], to_local[pa]
            (na, porta), (nb, portb) = ends
            if topo.is_host(na):
                local[na] = sub.add_host(name=topo.node_name(na))
                to_global[pa][local[na]] = na
            if topo.is_host(nb) and nb not in local:
                local[nb] = sub.add_host(name=topo.node_name(nb))
                to_global[pa][local[nb]] = nb
            sub.connect(local[na], porta, local[nb], portb,
                        kind=link.kind, length_m=link.length_m)
            continue
        # A cut: only switch-to-switch cables can land here (hosts
        # inherit their switch's partition), one gateway host per side.
        cut_links.append(link)
        for (node, port), part in ((ends[0], pa), (ends[1], pb)):
            gw = subs[part].attach_host(
                to_local[part][node], port, kind=link.kind,
                name=f"gw{link.link_id}", length_m=link.length_m)
            gateways[(part, link.link_id)] = gw

    for sub in subs:
        try:
            sub.validate()
        except TopologyError as exc:
            raise TopologyError(
                f"partitioning {topo.name!r} into {n_parts} leaves"
                f" {sub.name!r} unroutable: {exc}") from exc

    return PartitionPlan(
        topo=topo, n_parts=n_parts, part_of=part_of, subs=subs,
        to_local=to_local, to_global=to_global,
        cut_links=cut_links, gateways=gateways)
