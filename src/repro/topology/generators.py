"""Topology generators.

Builds the paper's concrete networks and families of synthetic COW
topologies used by the network-level experiments:

* :func:`fig6_testbed` — the 3-host / 2-switch evaluation testbed of
  the paper's Figure 6 (LAN and SAN NICs, M2FM-SW8 switches with 4 LAN
  + 4 SAN ports, parallel inter-switch links so routes can loop).
* :func:`fig1_topology` — an irregular network realizing the paper's
  Figure 1 situation: the minimal route between two switches is
  forbidden by up*/down* but enabled by one in-transit buffer.
* :func:`random_irregular` — random irregular COW topologies in the
  style used by the authors' simulation studies [2, 3]: ``n`` switches,
  fixed port count, random switch-to-switch cabling, ``h`` hosts per
  switch.
* :func:`mesh_2d`, :func:`linear_switches` — regular fabrics for tests.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import PortKind, Topology, TopologyError

__all__ = [
    "clos",
    "fat_tree",
    "fig1_topology",
    "fig6_testbed",
    "linear_switches",
    "make_topology",
    "mesh_2d",
    "random_irregular",
    "random_irregular_scaled",
    "star_of_switches",
    "torus_2d",
]


def fig6_testbed() -> tuple[Topology, dict[str, int]]:
    """The paper's Figure 6 evaluation testbed.

    Two M2FM-SW8 switches (8 ports: 0-3 SAN, 4-7 LAN by our
    convention).  Three hosts:

    * ``host1`` — M2L (LAN) NIC on switch 1,
    * ``itb``   — M2L (LAN) NIC on switch 2 (the in-transit host),
    * ``host2`` — M2M (SAN) NIC on switch 2.

    The switches are joined by **three** parallel cables (two SAN, one
    LAN) so that test routes can bounce between the switches without
    ever reusing a directed channel (a wormhole packet re-entering a
    channel it still holds would deadlock against itself — on real
    hardware too), and switch 2 carries a LAN **loopback cable**
    (ports 6<->7).  Together these allow the Figure 8 methodology: an
    up*/down* reference path and an in-transit path that cross the
    *same* number of switches (5) through the *same kinds* of ports —
    the paper's "loop in switch 2".

    Returns ``(topology, roles)`` where ``roles`` maps
    ``{"sw1", "sw2", "host1", "host2", "itb"}`` to node ids.
    """
    topo = Topology(name="fig6-testbed")
    sw1 = topo.add_switch(n_ports=8, name="sw1")
    sw2 = topo.add_switch(n_ports=8, name="sw2")
    # Inter-switch cables: SAN on ports 0<->0 and 2<->2, LAN on 4<->4.
    topo.connect(sw1, 0, sw2, 0, kind=PortKind.SAN)
    topo.connect(sw1, 2, sw2, 2, kind=PortKind.SAN)
    topo.connect(sw1, 4, sw2, 4, kind=PortKind.LAN)
    # Loopback cable on switch 2 (LAN ports 6<->7).
    topo.connect(sw2, 6, sw2, 7, kind=PortKind.LAN)
    host1 = topo.attach_host(sw1, 5, kind=PortKind.LAN, name="host1")
    itb = topo.attach_host(sw2, 5, kind=PortKind.LAN, name="itb")
    host2 = topo.attach_host(sw2, 1, kind=PortKind.SAN, name="host2")
    topo.validate()
    return topo, {
        "sw1": sw1,
        "sw2": sw2,
        "host1": host1,
        "host2": host2,
        "itb": itb,
    }


def fig1_topology() -> tuple[Topology, dict[str, int]]:
    """An irregular fabric realizing the paper's Figure 1.

    Construction (switch ids follow the figure's labels where they
    matter): switch 0 is the spanning-tree root; switches 4 and 6 are
    cabled so that the *minimal* route ``4 -> 6 -> 1`` needs a
    down->up transition at switch 6 and is therefore forbidden by
    up*/down*, while the shortest *valid* route ``4 -> 2 -> 0 -> 1``
    is one hop longer.  A host on switch 6 serves as the in-transit
    host that legalizes the minimal route.

    Every switch carries one host so any pair can communicate.

    Returns ``(topology, roles)`` with ``roles`` mapping ``"sw0"`` ..
    ``"sw7"`` and ``"host_on_sw<i>"`` names to node ids.
    """
    topo = Topology(name="fig1-example")
    sw = [topo.add_switch(n_ports=8, name=f"fig1-sw{i}") for i in range(8)]

    def join(a: int, b: int) -> None:
        topo.connect(sw[a], topo.free_port(sw[a]), sw[b], topo.free_port(sw[b]),
                     kind=PortKind.SAN)

    # Tree-ish core rooted at 0.
    join(0, 1)
    join(0, 2)
    join(1, 3)
    join(2, 4)
    join(2, 5)
    # Switch 6 hangs below both 1 and 4 -> the 4-6-1 shortcut.
    join(1, 6)
    join(4, 6)
    # Extra irregular cabling (keeps the network from being a pure tree).
    join(3, 7)
    join(5, 7)

    roles: dict[str, int] = {f"sw{i}": sw[i] for i in range(8)}
    for i in range(8):
        host = topo.attach_host(
            sw[i], topo.free_port(sw[i]), kind=PortKind.SAN,
            name=f"fig1-host{i}",
        )
        roles[f"host_on_sw{i}"] = host
    topo.validate()
    return topo, roles


def linear_switches(
    n_switches: int, hosts_per_switch: int = 1, kind: PortKind = PortKind.SAN
) -> Topology:
    """A chain of switches, each with ``hosts_per_switch`` hosts."""
    if n_switches < 1:
        raise TopologyError("need at least one switch")
    ports = max(8, hosts_per_switch + 2)
    topo = Topology(name=f"linear-{n_switches}")
    sw = [topo.add_switch(n_ports=ports) for _ in range(n_switches)]
    for a, b in zip(sw, sw[1:]):
        topo.connect(a, topo.free_port(a), b, topo.free_port(b), kind=kind)
    for s in sw:
        for _ in range(hosts_per_switch):
            topo.attach_host(s, topo.free_port(s), kind=kind)
    topo.validate()
    return topo


def mesh_2d(
    rows: int, cols: int, hosts_per_switch: int = 1, kind: PortKind = PortKind.SAN
) -> Topology:
    """A rows x cols switch mesh (4-neighbour), hosts on every switch."""
    if rows < 1 or cols < 1:
        raise TopologyError("mesh dimensions must be >= 1")
    ports = max(8, hosts_per_switch + 4)
    topo = Topology(name=f"mesh-{rows}x{cols}")
    sw = [[topo.add_switch(n_ports=ports) for _ in range(cols)] for _ in range(rows)]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                a, b = sw[r][c], sw[r][c + 1]
                topo.connect(a, topo.free_port(a), b, topo.free_port(b), kind=kind)
            if r + 1 < rows:
                a, b = sw[r][c], sw[r + 1][c]
                topo.connect(a, topo.free_port(a), b, topo.free_port(b), kind=kind)
    for r in range(rows):
        for c in range(cols):
            for _ in range(hosts_per_switch):
                topo.attach_host(sw[r][c], topo.free_port(sw[r][c]), kind=kind)
    topo.validate()
    return topo


def torus_2d(
    rows: int, cols: int, hosts_per_switch: int = 1,
    kind: PortKind = PortKind.SAN,
) -> Topology:
    """A rows x cols switch torus (mesh + wraparound links).

    A highly symmetric cyclic fabric.  Interestingly, up*/down* from a
    min-eccentricity root stays *minimal* on small tori (the tests
    pin this down) — the ITB win is specific to the irregular
    topologies COWs actually have, which is exactly the paper's
    setting.  Needs rows, cols >= 3 for distinct wraparound cables.
    """
    if rows < 3 or cols < 3:
        raise TopologyError("torus needs rows, cols >= 3")
    ports = max(8, hosts_per_switch + 4)
    topo = Topology(name=f"torus-{rows}x{cols}")
    sw = [[topo.add_switch(n_ports=ports) for _ in range(cols)]
          for _ in range(rows)]
    for r in range(rows):
        for c in range(cols):
            a = sw[r][c]
            right = sw[r][(c + 1) % cols]
            down = sw[(r + 1) % rows][c]
            topo.connect(a, topo.free_port(a), right,
                         topo.free_port(right), kind=kind)
            topo.connect(a, topo.free_port(a), down,
                         topo.free_port(down), kind=kind)
    for r in range(rows):
        for c in range(cols):
            for _ in range(hosts_per_switch):
                topo.attach_host(sw[r][c], topo.free_port(sw[r][c]),
                                 kind=kind)
    topo.validate()
    return topo


def star_of_switches(
    n_leaves: int, hosts_per_leaf: int = 1, kind: PortKind = PortKind.SAN
) -> Topology:
    """A hub switch with ``n_leaves`` leaf switches.

    The degenerate best case for up*/down* (the tree IS the topology)
    — ITB routing must find zero ITBs here, which tests assert.
    """
    if n_leaves < 1:
        raise TopologyError("need at least one leaf")
    hub_ports = max(8, n_leaves)
    topo = Topology(name=f"star-{n_leaves}")
    hub = topo.add_switch(n_ports=hub_ports, name="hub")
    for _ in range(n_leaves):
        leaf = topo.add_switch(n_ports=max(8, hosts_per_leaf + 1))
        topo.connect(hub, topo.free_port(hub), leaf, topo.free_port(leaf),
                     kind=kind)
        for _ in range(hosts_per_leaf):
            topo.attach_host(leaf, topo.free_port(leaf), kind=kind)
    topo.validate()
    return topo


def random_irregular(
    n_switches: int,
    seed: int,
    ports_per_switch: int = 8,
    switch_links: int = 4,
    hosts_per_switch: int = 1,
    kind: PortKind = PortKind.SAN,
) -> Topology:
    """Random irregular COW topology, as in the authors' studies [2,3].

    Each switch dedicates up to ``switch_links`` ports to the switch
    fabric and the rest to hosts.  Cabling follows the usual
    irregular-network methodology: build a random spanning structure
    first (guaranteeing connectivity), then add random extra cables
    until port budgets are exhausted or no legal pair remains.  Fully
    deterministic for a given ``seed``.
    """
    if n_switches < 2:
        raise TopologyError("need at least two switches")
    if switch_links < 1 or switch_links >= ports_per_switch:
        raise TopologyError("switch_links must be in [1, ports_per_switch)")
    if hosts_per_switch > ports_per_switch - switch_links:
        raise TopologyError("not enough ports for requested hosts")

    rng = np.random.default_rng(seed)
    topo = Topology(name=f"irregular-{n_switches}-s{seed}")
    sw = [topo.add_switch(n_ports=ports_per_switch) for _ in range(n_switches)]
    budget = {s: switch_links for s in sw}

    # Random connected skeleton: attach each switch (in random order) to a
    # random already-attached switch.
    order = list(rng.permutation(n_switches))
    attached = [sw[order[0]]]
    for idx in order[1:]:
        s = sw[idx]
        candidates = [t for t in attached if budget[t] > 0]
        if not candidates:
            raise TopologyError(
                "port budget too tight to build a connected skeleton; "
                "increase switch_links"
            )
        t = candidates[int(rng.integers(len(candidates)))]
        topo.connect(s, topo.free_port(s), t, topo.free_port(t), kind=kind)
        budget[s] -= 1
        budget[t] -= 1
        attached.append(s)

    # Extra random cables between distinct switches with spare budget,
    # avoiding parallel duplicates.
    def cabled(a: int, b: int) -> bool:
        return bool(topo.links_between(a, b))

    for _ in range(4 * n_switches):
        avail = [s for s in sw if budget[s] > 0]
        pairs = [
            (a, b)
            for i, a in enumerate(avail)
            for b in avail[i + 1:]
            if not cabled(a, b)
        ]
        if not pairs:
            break
        a, b = pairs[int(rng.integers(len(pairs)))]
        topo.connect(a, topo.free_port(a), b, topo.free_port(b), kind=kind)
        budget[a] -= 1
        budget[b] -= 1

    for s in sw:
        for _ in range(hosts_per_switch):
            topo.attach_host(s, topo.free_port(s), kind=kind)
    topo.validate()
    return topo


def random_irregular_scaled(
    n_switches: int,
    seed: int,
    ports_per_switch: int = 8,
    switch_links: int = 4,
    hosts_per_switch: int = 1,
    kind: PortKind = PortKind.SAN,
) -> Topology:
    """Scaled variant of :func:`random_irregular` for large fabrics.

    Same methodology (random connected skeleton, then random extra
    cables up to the per-switch budget, fully seed-deterministic) but
    with the extra-cable phase rewritten from re-enumerating every
    candidate pair per cable — O(n³) overall, minutes at 512 switches —
    to rejection sampling over the switches with spare budget, with an
    exact-enumeration fallback for the tail.  Output differs from
    :func:`random_irregular` for the same seed (different draw
    sequence), which is why this is a new generator: the legacy one
    stays byte-stable for goldens and cache signatures.
    """
    if n_switches < 2:
        raise TopologyError("need at least two switches")
    if switch_links < 1 or switch_links >= ports_per_switch:
        raise TopologyError("switch_links must be in [1, ports_per_switch)")
    if hosts_per_switch > ports_per_switch - switch_links:
        raise TopologyError("not enough ports for requested hosts")

    rng = np.random.default_rng(seed)
    topo = Topology(name=f"irregular-scaled-{n_switches}-s{seed}")
    sw = [topo.add_switch(n_ports=ports_per_switch) for _ in range(n_switches)]
    budget = {s: switch_links for s in sw}
    cabled: set[tuple[int, int]] = set()

    def connect(a: int, b: int) -> None:
        topo.connect(a, topo.free_port(a), b, topo.free_port(b), kind=kind)
        budget[a] -= 1
        budget[b] -= 1
        cabled.add((a, b) if a < b else (b, a))

    # Random connected skeleton, exactly as in random_irregular.
    order = list(rng.permutation(n_switches))
    attached = [sw[order[0]]]
    for idx in order[1:]:
        s = sw[idx]
        candidates = [t for t in attached if budget[t] > 0]
        if not candidates:
            raise TopologyError(
                "port budget too tight to build a connected skeleton; "
                "increase switch_links"
            )
        connect(s, candidates[int(rng.integers(len(candidates)))])
        attached.append(s)

    # Extra random cables: sample endpoint pairs directly instead of
    # materializing the full O(n²) candidate list per cable.
    for _ in range(4 * n_switches):
        avail = [s for s in sw if budget[s] > 0]
        if len(avail) < 2:
            break
        placed = False
        for _attempt in range(16):
            i = int(rng.integers(len(avail)))
            j = int(rng.integers(len(avail)))
            if i == j:
                continue
            a, b = avail[i], avail[j]
            if ((a, b) if a < b else (b, a)) in cabled:
                continue
            connect(a, b)
            placed = True
            break
        if not placed:
            # Dense tail: fall back to exact enumeration once so the
            # port budget is exhausted as thoroughly as the legacy
            # generator would.
            pairs = [
                (a, b)
                for i, a in enumerate(avail)
                for b in avail[i + 1:]
                if (a, b) not in cabled
            ]
            if not pairs:
                break
            connect(*pairs[int(rng.integers(len(pairs)))])

    for s in sw:
        for _ in range(hosts_per_switch):
            topo.attach_host(s, topo.free_port(s), kind=kind)
    topo.validate()
    return topo


def clos(
    m: int,
    n: int,
    r: int,
    kind: PortKind = PortKind.SAN,
) -> Topology:
    """A folded Clos (leaf-spine) fabric: ``r`` leaves x ``m`` spines.

    Every leaf cables one uplink to every spine and carries ``n``
    hosts; spines carry no hosts.  Fully deterministic: switch ids are
    spines ``0..m-1`` then leaves, cables in (leaf, spine) order, hosts
    attached leaf by leaf after all cabling.  Port counts are sized
    exactly (spine: ``r``, leaf: ``m + n``) so the generator scales to
    hundreds of switches without the 8-port M2FM-SW8 constraint — the
    paper's switches are small, but the scale study needs the family.
    """
    if m < 1 or r < 2 or n < 1:
        raise TopologyError("clos needs m >= 1 spines, r >= 2 leaves, n >= 1")
    topo = Topology(name=f"clos-m{m}-n{n}-r{r}")
    spines = [topo.add_switch(n_ports=r, name=f"spine{i}") for i in range(m)]
    leaves = [topo.add_switch(n_ports=m + n, name=f"leaf{i}")
              for i in range(r)]
    for leaf in leaves:
        for spine in spines:
            topo.connect(leaf, topo.free_port(leaf),
                         spine, topo.free_port(spine), kind=kind)
    for leaf in leaves:
        for _ in range(n):
            topo.attach_host(leaf, topo.free_port(leaf), kind=kind)
    topo.validate()
    return topo


def fat_tree(
    k: int,
    hosts_per_edge: int = 0,
    kind: PortKind = PortKind.SAN,
) -> Topology:
    """A three-level k-ary fat tree (k pods, 5k²/4 switches).

    Standard construction: ``(k/2)²`` core switches; each of ``k`` pods
    has ``k/2`` aggregation and ``k/2`` edge switches; every edge
    switch cables to all aggregation switches of its pod; aggregation
    switch at position ``j`` cables to core switches ``j·k/2 ..
    (j+1)·k/2 - 1``.  ``hosts_per_edge`` hosts attach to every edge
    switch (default ``k/2``, the full bisection population — pass a
    smaller count to keep host-pair counts tractable in sweeps).
    Fully deterministic; switch ids are cores, then per-pod aggs and
    edges; hosts attach after all cabling.
    """
    if k < 2 or k % 2:
        raise TopologyError("fat_tree needs an even k >= 2")
    half = k // 2
    if hosts_per_edge == 0:
        hosts_per_edge = half
    if hosts_per_edge < 1 or hosts_per_edge > half:
        raise TopologyError(f"hosts_per_edge must be in [1, {half}]")
    topo = Topology(name=f"fattree-k{k}-h{hosts_per_edge}")
    cores = [topo.add_switch(n_ports=k, name=f"core{i}")
             for i in range(half * half)]
    pods: list[tuple[list[int], list[int]]] = []
    for p in range(k):
        aggs = [topo.add_switch(n_ports=k, name=f"agg{p}.{j}")
                for j in range(half)]
        edges = [topo.add_switch(n_ports=k, name=f"edge{p}.{j}")
                 for j in range(half)]
        pods.append((aggs, edges))
    for aggs, edges in pods:
        for edge in edges:
            for agg in aggs:
                topo.connect(edge, topo.free_port(edge),
                             agg, topo.free_port(agg), kind=kind)
        for j, agg in enumerate(aggs):
            for core in cores[j * half:(j + 1) * half]:
                topo.connect(agg, topo.free_port(agg),
                             core, topo.free_port(core), kind=kind)
    for _aggs, edges in pods:
        for edge in edges:
            for _ in range(hosts_per_edge):
                topo.attach_host(edge, topo.free_port(edge), kind=kind)
    topo.validate()
    return topo


#: Generator spec grammar for :func:`make_topology` (CLI + scale study):
#: ``name`` or ``name:key=value,key=value``.
_SPEC_GENERATORS = {
    "clos": (clos, {"m": "m", "n": "n", "r": "r"}),
    "fattree": (fat_tree, {"k": "k", "hosts": "hosts_per_edge"}),
    "random": (random_irregular,
               {"n": "n_switches", "seed": "seed", "ports": "ports_per_switch",
                "links": "switch_links", "hosts": "hosts_per_switch"}),
    "random-scaled": (random_irregular_scaled,
                      {"n": "n_switches", "seed": "seed",
                       "ports": "ports_per_switch", "links": "switch_links",
                       "hosts": "hosts_per_switch"}),
    "linear": (linear_switches,
               {"n": "n_switches", "hosts": "hosts_per_switch"}),
    "mesh": (mesh_2d, {"rows": "rows", "cols": "cols",
                       "hosts": "hosts_per_switch"}),
    "torus": (torus_2d, {"rows": "rows", "cols": "cols",
                         "hosts": "hosts_per_switch"}),
    "star": (star_of_switches, {"leaves": "n_leaves",
                                "hosts": "hosts_per_leaf"}),
}


def make_topology(spec: str) -> Topology:
    """Build a topology from a compact generator spec string.

    Examples: ``fig6``, ``fig1``, ``clos:m=4,n=1,r=12``, ``fattree:k=4``,
    ``random:n=16,seed=7``, ``random-scaled:n=256,seed=3``,
    ``mesh:rows=4,cols=4``.  Integer values only; unknown generators or
    keys raise :class:`TopologyError` listing the valid choices.
    """
    name, _, argstr = spec.partition(":")
    name = name.strip().lower().replace("_", "-").replace("fat-tree", "fattree")
    if name == "fig6":
        return fig6_testbed()[0]
    if name == "fig1":
        return fig1_topology()[0]
    entry = _SPEC_GENERATORS.get(name)
    if entry is None:
        choices = ", ".join(["fig6", "fig1", *sorted(_SPEC_GENERATORS)])
        raise TopologyError(f"unknown generator {name!r}; choose from {choices}")
    fn, keymap = entry
    kwargs = {}
    for part in filter(None, (p.strip() for p in argstr.split(","))):
        key, eq, value = part.partition("=")
        key = key.strip().lower()
        if not eq or keymap.get(key) is None:
            valid = ", ".join(sorted(keymap))
            raise TopologyError(
                f"bad {name} argument {part!r}; expected key=int with "
                f"keys from: {valid}"
            )
        try:
            kwargs[keymap[key]] = int(value)
        except ValueError:
            raise TopologyError(
                f"bad {name} argument {part!r}; value must be an integer"
            ) from None
    try:
        return fn(**kwargs)
    except TypeError as exc:  # missing required generator arguments
        raise TopologyError(f"{name}: {exc}") from None
