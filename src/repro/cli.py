"""Command-line interface: ``python -m repro <experiment> [options]``.

Subcommands regenerate individual experiments (printing the same
tables as the benchmark suite) without going through pytest:

* ``fig1`` — Figure 1 route analysis,
* ``fig7`` — Figure 7 code-overhead series,
* ``fig8`` — Figure 8 per-ITB overhead series,
* ``throughput`` — EXP-M1 load sweep,
* ``apps`` — EXP-M2 application kernels,
* ``discover`` — run the mapper's exploration on a topology,
* ``validate`` — measure every quick-checkable paper claim and print
  one verdict table (exit code reflects the outcome),
* ``all`` — regenerate the figure results and persist them to JSON
  (``--save results.json``) for EXPERIMENTS.md refreshes,
* ``obs`` — run an instrumented workload and dump the unified
  telemetry (metrics, sampled time series, engine profile) as
  Prometheus text, JSON, CSV, and a chrome trace with counter tracks.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.harness.ascii_plot import line_plot
from repro.harness.fig1 import run_fig1
from repro.harness.fig7 import DEFAULT_SIZES, run_fig7
from repro.harness.fig8 import run_fig8
from repro.harness.report import format_table
from repro.harness.throughput import run_throughput

__all__ = ["main"]


def _sizes(args) -> tuple[int, ...]:
    if args.full:
        return DEFAULT_SIZES
    return (16, 128, 1024, 4096)


def _cmd_fig1(_args) -> int:
    r = run_fig1()
    print(format_table(
        ["quantity", "value"],
        [
            ("showcase minimal length", r.showcase_minimal_len),
            ("showcase up*/down* length", r.showcase_updown_len),
            ("showcase ITB inter-switch hops",
             r.showcase_itb_inter_switch_hops),
            ("up*/down* deadlock-free", str(r.updown_deadlock_free)),
            ("ITB deadlock-free", str(r.itb_deadlock_free)),
            ("minimal deadlock-free", str(r.minimal_deadlock_free)),
            ("root crossing UD -> ITB",
             f"{r.root_cross_updown:.2f} -> {r.root_cross_itb:.2f}"),
        ],
        title="Figure 1 analysis",
    ))
    return 0


def _cmd_fig7(args) -> int:
    r = run_fig7(sizes=_sizes(args), iterations=args.iterations)
    print(format_table(
        ["size (B)", "orig (us)", "modified (us)", "overhead (ns)",
         "rel (%)"],
        [(row.size, row.original_ns / 1000, row.modified_ns / 1000,
          row.overhead_ns, row.relative_pct) for row in r.rows],
        title="Figure 7 — overhead of the new GM/MCP code",
    ))
    if args.plot:
        print()
        print(line_plot(
            [row.size for row in r.rows],
            {"original": [row.original_ns / 1000 for row in r.rows],
             "modified": [row.modified_ns / 1000 for row in r.rows]},
            title="half-RTT (us) vs message size (B)",
            logx=True, xlabel="size (log)",
        ))
    print(f"\navg overhead {r.mean_overhead_ns:.0f} ns"
          f" (paper ~125 ns), max {r.max_overhead_ns:.0f} ns"
          f" (paper <= 300 ns)")
    return 0


def _cmd_fig8(args) -> int:
    r = run_fig8(sizes=_sizes(args), iterations=args.iterations)
    print(format_table(
        ["size (B)", "UD (us)", "UD-ITB (us)", "overhead (us)", "rel (%)"],
        [(row.size, row.ud_ns / 1000, row.ud_itb_ns / 1000,
          row.overhead_ns / 1000, row.relative_pct) for row in r.rows],
        title="Figure 8 — per-ITB overhead",
    ))
    if args.plot:
        print()
        print(line_plot(
            [row.size for row in r.rows],
            {"UD": [row.ud_ns / 1000 for row in r.rows],
             "UD-ITB": [row.ud_itb_ns / 1000 for row in r.rows]},
            title="half-RTT (us) vs message size (B)",
            logx=True, xlabel="size (log)",
        ))
    print(f"\nper-ITB overhead {r.mean_overhead_ns / 1000:.2f} us"
          f" (paper ~1.3 us)")
    return 0


def _cmd_throughput(args) -> int:
    r = run_throughput(
        n_switches=args.switches,
        packet_size=args.packet_size,
        rates=tuple(args.rates),
        duration_ns=args.duration * 1000.0,
        warmup_ns=args.duration * 200.0,
        hosts_per_switch=args.hosts_per_switch,
        topo_seed=args.seed,
    )
    rows = []
    for routing in ("updown", "itb"):
        for p in r.series(routing):
            rows.append((routing, p.offered_bytes_per_ns_per_host,
                         p.accepted, p.mean_latency_ns / 1000))
    print(format_table(
        ["routing", "offered", "accepted", "latency (us)"],
        rows,
        title=f"EXP-M1 — {args.switches} switches",
        float_fmt="{:.4f}",
    ))
    print(f"\npeak ratio ITB/UD: {r.throughput_ratio:.2f}x")
    return 0


def _cmd_apps(args) -> int:
    from repro.harness.apps import run_app_comparison

    results = run_app_comparison(
        n_switches=args.switches, iterations=args.iterations,
        message_size=args.packet_size,
        hosts_per_switch=args.hosts_per_switch, topo_seed=args.seed,
    )
    by = {(r.kernel, r.routing): r for r in results}
    kernels = sorted({r.kernel for r in results})
    print(format_table(
        ["kernel", "UD (us)", "ITB (us)", "speedup"],
        [(k, by[(k, "updown")].completion_us, by[(k, "itb")].completion_us,
          by[(k, "updown")].completion_ns / by[(k, "itb")].completion_ns)
         for k in kernels],
        title=f"EXP-M2 — application kernels, {args.switches} switches",
    ))
    return 0


def _cmd_validate(args) -> int:
    from repro.harness.validation import validate_claims

    report = validate_claims(
        iterations=args.iterations,
        include_throughput=args.throughput,
        throughput_switches=64 if args.throughput else 0,
    )
    print(report.render())
    print(f"\n{report.n_checked} claims checked;"
          f" {'ALL HOLD' if report.all_hold else 'VIOLATIONS PRESENT'}")
    return 0 if report.all_hold else 1


def _cmd_all(args) -> int:
    """Regenerate fig7/fig8 (+ optional throughput) and persist."""
    from repro.harness.persist import save_results
    from repro.harness.throughput import run_throughput

    sizes = _sizes(args)
    results = {
        "fig7": run_fig7(sizes=sizes, iterations=args.iterations),
        "fig8": run_fig8(sizes=sizes, iterations=args.iterations),
    }
    if args.throughput:
        results["throughput"] = run_throughput(
            n_switches=args.switches, packet_size=512,
            rates=(0.02, 0.06, 0.12), duration_ns=150_000.0,
            warmup_ns=30_000.0, hosts_per_switch=2,
        )
    f7, f8 = results["fig7"], results["fig8"]
    print(f"fig7: avg overhead {f7.mean_overhead_ns:.0f} ns"
          f" (paper ~125 ns)")
    print(f"fig8: per-ITB overhead {f8.mean_overhead_ns / 1000:.2f} us"
          f" (paper ~1.3 us)")
    if args.throughput:
        print(f"throughput: peak ratio"
              f" {results['throughput'].throughput_ratio:.2f}x")
    if args.save:
        path = save_results(args.save, results,
                            extra={"iterations": args.iterations})
        print(f"saved to {path}")
    return 0


def _cmd_obs(args) -> int:
    from repro.harness.report import profiler_table, registry_table
    from repro.obs.run import export_all, run_obs

    if args.interval <= 0:
        print(f"repro obs: error: --interval must be positive: "
              f"{args.interval}", file=sys.stderr)
        return 2
    r = run_obs(
        topology=args.topology,
        switches=args.switches,
        hosts_per_switch=args.hosts_per_switch,
        topo_seed=args.seed,
        routing=args.routing,
        load=args.load,
        packet_size=args.packet_size,
        duration_ns=args.duration * 1000.0,
        warmup_ns=args.warmup * 1000.0,
        interval_ns=args.interval,
        traffic_seed=args.traffic_seed,
    )
    t, lat = r.traffic, r.latency
    print(format_table(
        ["quantity", "value"],
        [
            ("offered packets", t.offered_packets),
            ("delivered packets", t.delivered_packets),
            ("dropped packets", t.dropped_packets),
            ("delivered fraction", t.delivered_fraction),
            ("mean latency (us)", lat.mean_us),
            ("p50 / p90 (us)", f"{lat.p50 / 1000:.2f} / {lat.p90 / 1000:.2f}"),
            ("p99 / p99.9 (us)",
             f"{lat.p99 / 1000:.2f} / {lat.p999 / 1000:.2f}"),
        ],
        title=f"repro obs — {args.topology}, load {args.load}",
    ))
    print()
    print(registry_table(r.registry, title="telemetry (nonzero metrics)",
                         limit=args.rows))
    if r.telemetry.profiler is not None:
        print()
        print(profiler_table(r.telemetry.profiler))
    sampler = r.telemetry.sampler
    if sampler is not None:
        print(f"\nsampled {sampler.n_ticks} snapshots x"
              f" {len(sampler.series)} gauge series"
              f" @ {sampler.interval_ns:.0f} ns")
    if args.out:
        paths = export_all(r, args.out)
        for kind, path in sorted(paths.items()):
            print(f"wrote {kind}: {path}")
    return 0


def _cmd_discover(args) -> int:
    from repro.core.builder import build_network
    from repro.gm.discovery import discover_network
    from repro.topology.generators import random_irregular

    if args.topology == "fig6":
        net = build_network("fig6")
        mapper = net.roles["host1"]
    else:
        topo = random_irregular(args.switches, seed=args.seed,
                                hosts_per_switch=args.hosts_per_switch)
        net = build_network(topo)
        mapper = sorted(net.gm_hosts)[0]
    m = discover_network(net, mapper)
    print(format_table(
        ["quantity", "value"],
        [
            ("mapper host", m.mapper_host),
            ("switches discovered", m.n_switches),
            ("hosts discovered", len(m.hosts)),
            ("probes sent", m.probes_sent),
            ("mapping time (us)", f"{m.elapsed_ns / 1000:.1f}"),
        ],
        title="GM mapper exploration",
    ))
    for label in sorted(m.switch_ports):
        peers = sorted(m.switch_adjacency()[label])
        hosts = sorted(h for h, (l, _p) in m.host_attach.items()
                       if l == label)
        print(f"  {label}: switches {peers}, hosts {hosts}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A First Implementation of"
                    " In-Transit Buffers on Myrinet GM Software'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Figure 1 route analysis")

    for name, help_text in (("fig7", "Figure 7 code overhead"),
                            ("fig8", "Figure 8 per-ITB overhead")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--full", action="store_true",
                       help="full gm_allsize size ladder")
        p.add_argument("--iterations", type=int, default=20)
        p.add_argument("--plot", action="store_true",
                       help="ASCII chart of the series")

    p = sub.add_parser("throughput", help="EXP-M1 load sweep")
    p.add_argument("--switches", type=int, default=16)
    p.add_argument("--packet-size", type=int, default=512)
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.02, 0.06, 0.12])
    p.add_argument("--duration", type=float, default=150.0,
                   help="measurement window (us)")
    p.add_argument("--hosts-per-switch", type=int, default=2)
    p.add_argument("--seed", type=int, default=5)

    p = sub.add_parser("apps", help="EXP-M2 application kernels")
    p.add_argument("--switches", type=int, default=16)
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument("--packet-size", type=int, default=1024)
    p.add_argument("--hosts-per-switch", type=int, default=2)
    p.add_argument("--seed", type=int, default=11)

    p = sub.add_parser("all", help="regenerate figure results, optionally"
                                   " persisting to JSON")
    p.add_argument("--full", action="store_true")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--throughput", action="store_true")
    p.add_argument("--switches", type=int, default=16)
    p.add_argument("--save", type=str, default="")

    p = sub.add_parser("validate", help="measure and judge every paper claim")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--throughput", action="store_true",
                   help="include the 64-switch EXP-M1 ratio (minutes)")

    p = sub.add_parser("obs", help="instrumented workload: unified"
                                   " telemetry dump")
    p.add_argument("--topology", choices=("fig6", "random"),
                   default="fig6")
    p.add_argument("--switches", type=int, default=8)
    p.add_argument("--hosts-per-switch", type=int, default=2)
    p.add_argument("--routing", choices=("updown", "itb"),
                   default="updown")
    p.add_argument("--load", type=float, default=0.02,
                   help="offered load (bytes/ns/host; link = 0.16)")
    p.add_argument("--packet-size", type=int, default=512)
    p.add_argument("--duration", type=float, default=50.0,
                   help="measurement window (us)")
    p.add_argument("--warmup", type=float, default=0.0,
                   help="warmup before the window (us)")
    p.add_argument("--interval", type=float, default=1000.0,
                   help="gauge sampling interval (ns)")
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--traffic-seed", type=int, default=7)
    p.add_argument("--rows", type=int, default=40,
                   help="max telemetry table rows printed")
    p.add_argument("--out", type=str, default="",
                   help="directory for the exporter dumps")

    p = sub.add_parser("discover", help="run the mapper's exploration")
    p.add_argument("--topology", choices=("fig6", "random"),
                   default="fig6")
    p.add_argument("--switches", type=int, default=8)
    p.add_argument("--hosts-per-switch", type=int, default=1)
    p.add_argument("--seed", type=int, default=5)

    return parser


_COMMANDS = {
    "fig1": _cmd_fig1,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "throughput": _cmd_throughput,
    "apps": _cmd_apps,
    "discover": _cmd_discover,
    "obs": _cmd_obs,
    "validate": _cmd_validate,
    "all": _cmd_all,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv`` and run the selected experiment command."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
