"""Command-line interface: ``python -m repro <experiment> [options]``.

Experiment subcommands are generated from the unified experiment
registry (:mod:`repro.exp`): every registered experiment gets a
top-level subcommand (``repro fig7``, ``repro throughput``, ...) and
the same spelled out as ``repro run <name>``; ``repro list`` shows
what is registered.  Each generated subcommand accepts ``--jobs N``
(fan independent points over a process pool; results are identical to
a serial run) and ``--save FILE`` (persist the spec-keyed result
document).

Hand-written subcommands cover everything that is not a registered
experiment:

* ``fig1`` — Figure 1 route analysis,
* ``discover`` — run the mapper's exploration on a topology,
* ``validate`` — measure every quick-checkable paper claim and print
  one verdict table (exit code reflects the outcome),
* ``all`` — regenerate the figure results and persist them to JSON
  (``--save results.json``) for EXPERIMENTS.md refreshes,
* ``obs`` — run an instrumented workload and dump the unified
  telemetry (metrics, sampled time series, engine profile) as
  Prometheus text, JSON, CSV, and a chrome trace with counter tracks,
* ``trace`` — run a traced workload and inspect the causal span trees:
  ``summarize`` (top-N slowest messages as ASCII waterfalls),
  ``critical-path`` (exclusive per-category latency attribution), and
  ``export`` (canonical span dump + chrome trace with flow arrows),
* ``bench-report`` — tabulate the ``BENCH_*.json`` trajectory files
  the benchmark suite writes, optionally failing on speedup-ratio
  regressions against a committed baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.exp import Experiment, list_experiments
from repro.harness.fig7 import DEFAULT_SIZES, run_fig7
from repro.harness.fig8 import run_fig8
from repro.harness.report import format_table

__all__ = ["main"]


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _sizes(args) -> tuple[int, ...]:
    if args.full:
        return DEFAULT_SIZES
    return (16, 128, 1024, 4096)


# ---------------------------------------------------------------------------
# registry-generated experiment commands
# ---------------------------------------------------------------------------


def _make_experiment_command(exp: Experiment):
    """The handler of one registry-generated experiment subcommand."""

    def cmd(args) -> int:
        from repro.exp import Runner

        spec = exp.spec_from_args(args)
        if args.engine_jobs != 1:
            # Partition-aware experiments read this through
            # ctx.engine_jobs; everything else ignores it.  Results
            # are independent of the value by the determinism
            # contract (docs/PARALLEL.md).
            spec = spec.replace(
                params={**spec.params, "engine_jobs": args.engine_jobs})
        report = Runner().run(spec, jobs=args.jobs,
                              save=args.save or None)
        print(exp.render(spec, report.result, args))
        express = report.express
        total = express.get("hits", 0) + express.get("fallbacks", 0)
        if total:
            pct = 100.0 * express["hits"] / total
            partial = express.get("partial", 0)
            print(f"express worms: {express['hits']}/{total}"
                  f" ({pct:.1f}% hit rate, {partial} partial,"
                  f" {express['stepped_hops']} stepped hops)")
        if report.saved_to:
            print(f"saved to {report.saved_to}")
        return 0

    return cmd


def _add_experiment_arguments(p: argparse.ArgumentParser,
                              exp: Experiment) -> None:
    """Add one experiment's declared options plus the shared runner
    options (``--jobs``, ``--save``) to a subparser."""
    for opt in exp.cli_options:
        p.add_argument(*opt.flags, **opt.kwargs)
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="process-pool width for independent points"
                        " (results are identical to --jobs 1)")
    p.add_argument("--engine-jobs", type=_positive_int, default=1,
                   help="worker processes of the partitioned simulation"
                        " engine, for partition-aware experiments"
                        " (results are identical to --engine-jobs 1)")
    p.add_argument("--save", type=str, default="",
                   help="persist the result document to this JSON file")
    p.set_defaults(func=_make_experiment_command(exp))


def _cmd_list(_args) -> int:
    print(format_table(
        ["experiment", "description"],
        [(exp.name, exp.title) for exp in list_experiments()],
        title="registered experiments (repro run <name>)",
    ))
    return 0


# ---------------------------------------------------------------------------
# hand-written commands (not registry experiments)
# ---------------------------------------------------------------------------


def _cmd_fig1(_args) -> int:
    from repro.harness.fig1 import run_fig1

    r = run_fig1()
    print(format_table(
        ["quantity", "value"],
        [
            ("showcase minimal length", r.showcase_minimal_len),
            ("showcase up*/down* length", r.showcase_updown_len),
            ("showcase ITB inter-switch hops",
             r.showcase_itb_inter_switch_hops),
            ("up*/down* deadlock-free", str(r.updown_deadlock_free)),
            ("ITB deadlock-free", str(r.itb_deadlock_free)),
            ("minimal deadlock-free", str(r.minimal_deadlock_free)),
            ("root crossing UD -> ITB",
             f"{r.root_cross_updown:.2f} -> {r.root_cross_itb:.2f}"),
        ],
        title="Figure 1 analysis",
    ))
    return 0


def _cmd_topo(args) -> int:
    """Generate a topology from a spec string and describe it."""
    from repro.routing.minimal import switch_distances
    from repro.routing.spanning_tree import build_orientation
    from repro.topology.export import to_dot, to_text
    from repro.topology.generators import make_topology

    from repro.topology.graph import TopologyError

    try:
        topo = make_topology(args.spec)
    except TopologyError as exc:
        print(f"repro topo: {exc}", file=sys.stderr)
        return 2
    orientation = build_orientation(
        topo, root=args.root if args.root >= 0 else None)
    if args.dot:
        print(to_dot(topo, orientation))
        return 0
    if args.text:
        print(to_text(topo, orientation))
        return 0

    switches = topo.switches()
    ecc = {s: max(switch_distances(topo, s).values()) for s in switches}
    degree = {
        s: len({n for (_p, n, _l) in topo.switch_neighbors(s)})
        for s in switches
    }
    hosted = sum(1 for s in switches if topo.hosts_on(s))
    print(format_table(
        ["quantity", "value"],
        [
            ("name", topo.name),
            ("switches", len(switches)),
            ("hosts", len(topo.hosts())),
            ("cables", len(topo.links)),
            ("diameter", max(ecc.values())),
            ("max fabric degree", max(degree.values())),
            ("switches with hosts", hosted),
            ("spanning-tree root", topo.node_name(orientation.root)),
            ("tree depth", max(orientation.level.values())),
        ],
        title=f"topology {args.spec}",
    ))
    # The root-election view: best candidates first (the chosen root
    # minimizes (eccentricity, id) — see choose_root).
    candidates = sorted(switches, key=lambda s: (ecc[s], s))
    shown = candidates[:args.candidates]
    print()
    print(format_table(
        ["switch", "eccentricity", "degree", "hosts", "elected"],
        [(topo.node_name(s), ecc[s], degree[s], len(topo.hosts_on(s)),
          "*" if s == orientation.root else "")
         for s in shown],
        title=f"root candidates (top {len(shown)} of {len(switches)})",
    ))
    return 0


def _cmd_validate(args) -> int:
    from repro.harness.validation import validate_claims

    report = validate_claims(
        iterations=args.iterations,
        include_throughput=args.throughput,
        throughput_switches=64 if args.throughput else 0,
    )
    print(report.render())
    print(f"\n{report.n_checked} claims checked;"
          f" {'ALL HOLD' if report.all_hold else 'VIOLATIONS PRESENT'}")
    return 0 if report.all_hold else 1


def _cmd_all(args) -> int:
    """Regenerate fig7/fig8 (+ optional throughput) and persist."""
    from repro.harness.persist import save_results
    from repro.harness.throughput import run_throughput

    sizes = _sizes(args)
    results = {
        "fig7": run_fig7(sizes=sizes, iterations=args.iterations),
        "fig8": run_fig8(sizes=sizes, iterations=args.iterations),
    }
    if args.throughput:
        results["throughput"] = run_throughput(
            n_switches=args.switches, packet_size=512,
            rates=(0.02, 0.06, 0.12), duration_ns=150_000.0,
            warmup_ns=30_000.0, hosts_per_switch=2,
        )
    f7, f8 = results["fig7"], results["fig8"]
    print(f"fig7: avg overhead {f7.mean_overhead_ns:.0f} ns"
          " (paper ~125 ns)")
    print(f"fig8: per-ITB overhead {f8.mean_overhead_ns / 1000:.2f} us"
          " (paper ~1.3 us)")
    if args.throughput:
        print("throughput: peak ratio"
              f" {results['throughput'].throughput_ratio:.2f}x")
    if args.save:
        path = save_results(args.save, results,
                            extra={"iterations": args.iterations})
        print(f"saved to {path}")
    return 0


def _cmd_obs(args) -> int:
    from repro.harness.report import (profiler_table, quantile_cells,
                                      registry_table)
    from repro.obs.run import export_all, run_obs

    if args.interval <= 0:
        print("repro obs: error: --interval must be positive: "
              f"{args.interval}", file=sys.stderr)
        return 2
    r = run_obs(
        topology=args.topology,
        switches=args.switches,
        hosts_per_switch=args.hosts_per_switch,
        topo_seed=args.seed,
        routing=args.routing,
        load=args.load,
        packet_size=args.packet_size,
        duration_ns=args.duration * 1000.0,
        warmup_ns=args.warmup * 1000.0,
        interval_ns=args.interval,
        traffic_seed=args.traffic_seed,
        trace_every=args.trace_every,
    )
    t, lat = r.traffic, r.latency
    p50, p90, p99, p999 = quantile_cells(lat)
    print(format_table(
        ["quantity", "value"],
        [
            ("offered packets", t.offered_packets),
            ("delivered packets", t.delivered_packets),
            ("dropped packets", t.dropped_packets),
            ("delivered fraction", t.delivered_fraction),
            ("mean latency (us)", lat.mean_us),
            ("p50 / p90 (us)", f"{p50} / {p90}"),
            ("p99 / p99.9 (us)", f"{p99} / {p999}"),
        ],
        title=f"repro obs — {args.topology}, load {args.load}",
    ))
    print()
    print(registry_table(r.registry, title="telemetry (nonzero metrics)",
                         kinds=("counter", "gauge", "histogram"),
                         limit=args.rows))
    if r.telemetry.profiler is not None:
        print()
        print(profiler_table(r.telemetry.profiler))
    sampler = r.telemetry.sampler
    if sampler is not None:
        print(f"\nsampled {sampler.n_ticks} snapshots x"
              f" {len(sampler.series)} gauge series"
              f" @ {sampler.interval_ns:.0f} ns")
    if args.out:
        paths = export_all(r, args.out)
        for kind, path in sorted(paths.items()):
            print(f"wrote {kind}: {path}")
    return 0


def _waterfall_lines(roots, width: int = 44) -> list[str]:
    """Render a span tree as depth-indented rows with scaled bars.

    Each row is ``name | bar | duration``; the bar's position and
    length map the span onto the trace's ``[t0, t1]`` window, so queue
    waits, wire time, cut-through overlap, and retransmission gaps are
    visible at a glance.
    """
    flat: list[tuple[dict, int]] = []

    def _walk(node: dict, depth: int) -> None:
        flat.append((node, depth))
        for child in node["children"]:
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)
    t0 = min(n["start"] for n, _ in flat)
    t1 = max(n["end"] if n["end"] is not None else n["start"]
             for n, _ in flat)
    window = max(t1 - t0, 1e-9)
    lines = []
    for node, depth in flat:
        end = node["end"] if node["end"] is not None else t1
        a = min(int((node["start"] - t0) / window * width), width - 1)
        b = min(max(int((end - t0) / window * width), a + 1), width)
        label = ("  " * depth + node["name"])[:26].ljust(26)
        bar = (" " * a + "#" * (b - a)).ljust(width)
        note = "" if node["status"] == "ok" else f"  [{node['status']}]"
        lines.append(
            f"{label}|{bar}| {(end - node['start']) / 1000.0:9.3f} us{note}")
    return lines


def _cmd_trace(args) -> int:
    """``repro trace``: run a traced workload, inspect the span trees."""
    from fractions import Fraction

    from repro.obs.critical_path import CATEGORIES, breakdown_dump
    from repro.obs.run import export_all, run_obs
    from repro.obs.tracing import span_tree

    r = run_obs(
        topology=args.topology,
        switches=args.switches,
        hosts_per_switch=args.hosts_per_switch,
        topo_seed=args.seed,
        routing=args.routing,
        load=args.load,
        packet_size=args.packet_size,
        duration_ns=args.duration * 1000.0,
        warmup_ns=args.warmup * 1000.0,
        traffic_seed=args.traffic_seed,
        profile=False,
        trace_every=args.every,
    )
    tracer = r.tracer
    roots = tracer.roots()
    breakdowns = breakdown_dump(tracer.spans)
    in_flight = len(roots) - len(breakdowns)
    print(f"traced {len(roots)} messages / {len(tracer.spans)} spans"
          f" (sampling every {args.every});"
          f" {len(breakdowns)} completed, {in_flight} in flight")

    if args.action == "summarize":
        slowest = sorted(breakdowns, key=lambda b: b.total_ns,
                         reverse=True)[:args.top]
        for b in slowest:
            print(f"\ntrace {b.trace_id}: {b.total_ns / 1000.0:.3f} us,"
                  f" {b.n_attempts} attempt(s), status {b.status}")
            for line in _waterfall_lines(
                    span_tree(tracer.spans_of(b.trace_id))):
                print(f"  {line}")
        return 0

    if args.action == "critical-path":
        totals = {cat: Fraction(0) for cat in CATEGORIES}
        for b in breakdowns:
            for cat, frac in b.fractions.items():
                totals[cat] += frac
        grand = sum(totals.values(), Fraction(0))
        n = max(len(breakdowns), 1)
        rows = [
            (cat, float(totals[cat]) / 1000.0,
             (100.0 * float(totals[cat] / grand)) if grand else 0.0,
             float(totals[cat]) / n / 1000.0)
            for cat in CATEGORIES
        ]
        rows.append(("TOTAL", float(grand) / 1000.0, 100.0 if grand else 0.0,
                     float(grand) / n / 1000.0))
        print()
        print(format_table(
            ["category", "total (us)", "share (%)", "mean/trace (us)"],
            rows, title="critical-path attribution"
        ))
        return 0

    # export
    paths = export_all(r, args.out)
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind}: {path}")
    return 0


def _cmd_bench_report(args) -> int:
    """Tabulate ``BENCH_<group>.json`` trajectory files (written by the
    benchmark suite's session fixture) and, with ``--baseline``, fail
    on speedup-ratio regressions beyond ``--tolerance``."""
    import json
    from pathlib import Path

    bench_dir = Path(args.dir)
    files = sorted(bench_dir.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json files under {bench_dir}", file=sys.stderr)
        return 2

    rows = []
    ratios: dict[str, dict[str, float]] = {}
    skipped: dict[str, dict[str, str]] = {}
    for path in files:
        doc = json.loads(path.read_text())
        group = doc.get("group", path.stem.removeprefix("BENCH_"))
        for test, rec in sorted(doc.get("records", {}).items()):
            if rec.get("gate_skipped"):
                skipped.setdefault(group, {})[test] = rec["gate_skipped"]
            mean = rec.get("mean_s")
            ratio = rec.get("speedup_ratio")
            rows.append((
                group, test,
                f"{mean * 1e3:.2f}" if mean is not None else "-",
                f"{rec.get('wall_s', 0.0):.2f}",
                f"{ratio:.2f}x" if ratio is not None else "-",
            ))
            if ratio is not None:
                ratios.setdefault(group, {})[test] = ratio
    print(format_table(
        ["group", "benchmark", "mean (ms)", "wall (s)", "speedup"],
        rows, title=f"benchmark trajectory ({len(files)} groups)",
    ))

    if not args.baseline:
        return 0
    baseline = json.loads(Path(args.baseline).read_text())
    failures = []
    for group, tests in baseline.items():
        for test, expected in tests.items():
            floor = expected * (1.0 - args.tolerance)
            measured = ratios.get(group, {}).get(test)
            reason = skipped.get(group, {}).get(test)
            if measured is None and reason is not None:
                print(f"bench-report: {group}:{test} gate skipped"
                      f" ({reason})")
                continue
            if measured is None:
                failures.append(f"{group}:{test}: no measured speedup ratio")
            elif measured < floor:
                failures.append(
                    f"{group}:{test}: {measured:.2f}x is below"
                    f" {floor:.2f}x (baseline {expected:.2f}x"
                    f" - {args.tolerance:.0%} tolerance)"
                )
    if failures:
        print("\nbench-report: REGRESSION", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nbench-report: within {args.tolerance:.0%} of baseline")
    return 0


def _cmd_discover(args) -> int:
    from repro.core.builder import build_network
    from repro.gm.discovery import discover_network
    from repro.topology.generators import random_irregular

    if args.topology == "fig6":
        net = build_network("fig6")
        mapper = net.roles["host1"]
    else:
        topo = random_irregular(args.switches, seed=args.seed,
                                hosts_per_switch=args.hosts_per_switch)
        net = build_network(topo)
        mapper = sorted(net.gm_hosts)[0]
    m = discover_network(net, mapper)
    print(format_table(
        ["quantity", "value"],
        [
            ("mapper host", m.mapper_host),
            ("switches discovered", m.n_switches),
            ("hosts discovered", len(m.hosts)),
            ("probes sent", m.probes_sent),
            ("mapping time (us)", f"{m.elapsed_ns / 1000:.1f}"),
        ],
        title="GM mapper exploration",
    ))
    for label in sorted(m.switch_ports):
        peers = sorted(m.switch_adjacency()[label])
        hosts = sorted(h for h, (l, _p) in m.host_attach.items()
                       if l == label)
        print(f"  {label}: switches {peers}, hosts {hosts}")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A First Implementation of"
                    " In-Transit Buffers on Myrinet GM Software'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="Figure 1 route analysis")
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("topo", help="generate a topology from a spec"
                                    " string and describe it")
    p.add_argument("spec",
                   help="generator spec, e.g. fig6, clos:m=4,n=1,r=12,"
                        " fattree:k=8, random-scaled:n=256,seed=3")
    p.add_argument("--root", type=int, default=-1,
                   help="spanning-tree root override (switch id)")
    p.add_argument("--candidates", type=int, default=8,
                   help="root candidates to list in the stats view")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--text", action="store_true",
                       help="per-port cabling listing instead of stats")
    group.add_argument("--dot", action="store_true",
                       help="Graphviz DOT instead of stats")
    p.set_defaults(func=_cmd_topo)

    # One subcommand per registered experiment, at the top level (the
    # legacy spellings: ``repro fig7``, ``repro throughput``, ...).
    for exp in list_experiments():
        p = sub.add_parser(exp.name, help=exp.title)
        _add_experiment_arguments(p, exp)

    # ... and the same set under ``repro run <name>``.  An unknown
    # name is an argparse choice error: exit code 2 plus the list of
    # registered names, never a traceback.
    p_run = sub.add_parser("run", help="run a registered experiment"
                                       " by name")
    run_sub = p_run.add_subparsers(dest="experiment", required=True,
                                   metavar="experiment")
    for exp in list_experiments():
        p = run_sub.add_parser(exp.name, help=exp.title)
        _add_experiment_arguments(p, exp)

    p = sub.add_parser("list", help="list registered experiments")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("all", help="regenerate figure results, optionally"
                                   " persisting to JSON")
    p.add_argument("--full", action="store_true")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--throughput", action="store_true")
    p.add_argument("--switches", type=int, default=16)
    p.add_argument("--save", type=str, default="")
    p.set_defaults(func=_cmd_all)

    p = sub.add_parser("validate", help="measure and judge every paper claim")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--throughput", action="store_true",
                   help="include the 64-switch EXP-M1 ratio (minutes)")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("obs", help="instrumented workload: unified"
                                   " telemetry dump")
    p.add_argument("--topology", choices=("fig6", "random"),
                   default="fig6")
    p.add_argument("--switches", type=int, default=8)
    p.add_argument("--hosts-per-switch", type=int, default=2)
    p.add_argument("--routing", choices=("updown", "itb"),
                   default="updown")
    p.add_argument("--load", type=float, default=0.02,
                   help="offered load (bytes/ns/host; link = 0.16)")
    p.add_argument("--packet-size", type=int, default=512)
    p.add_argument("--duration", type=float, default=50.0,
                   help="measurement window (us)")
    p.add_argument("--warmup", type=float, default=0.0,
                   help="warmup before the window (us)")
    p.add_argument("--interval", type=float, default=1000.0,
                   help="gauge sampling interval (ns)")
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--traffic-seed", type=int, default=7)
    p.add_argument("--rows", type=int, default=40,
                   help="max telemetry table rows printed")
    p.add_argument("--trace-every", type=int, default=0,
                   help="span-trace every Nth message (0 = tracing off);"
                        " feeds the latency_breakdown_ns histograms")
    p.add_argument("--out", type=str, default="",
                   help="directory for the exporter dumps")
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser("trace", help="causal span tracing: waterfalls,"
                                     " critical path, span-dump export")
    p.add_argument("action", choices=("summarize", "critical-path", "export"),
                   help="summarize: top-N slowest messages as ASCII"
                        " waterfalls; critical-path: per-category latency"
                        " attribution; export: span dump + chrome trace")
    p.add_argument("--topology", choices=("fig6", "random"),
                   default="fig6")
    p.add_argument("--switches", type=int, default=8)
    p.add_argument("--hosts-per-switch", type=int, default=2)
    p.add_argument("--routing", choices=("updown", "itb"),
                   default="updown")
    p.add_argument("--load", type=float, default=0.02,
                   help="offered load (bytes/ns/host; link = 0.16)")
    p.add_argument("--packet-size", type=int, default=512)
    p.add_argument("--duration", type=float, default=50.0,
                   help="measurement window (us)")
    p.add_argument("--warmup", type=float, default=0.0,
                   help="warmup before the window (us)")
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--traffic-seed", type=int, default=7)
    p.add_argument("--every", type=_positive_int, default=1,
                   help="trace every Nth message (1 = all)")
    p.add_argument("--top", type=_positive_int, default=3,
                   help="waterfalls printed by summarize")
    p.add_argument("--out", type=str, default="traces",
                   help="output directory for export")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("bench-report", help="tabulate BENCH_*.json benchmark"
                                            " trajectories; check a baseline")
    p.add_argument("--dir", type=str, default=".",
                   help="directory holding BENCH_*.json files")
    p.add_argument("--baseline", type=str, default="",
                   help="JSON file of group -> test -> expected speedup"
                        " ratio; exit 1 on regression")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed fractional regression vs baseline")
    p.set_defaults(func=_cmd_bench_report)

    p = sub.add_parser("discover", help="run the mapper's exploration")
    p.add_argument("--topology", choices=("fig6", "random"),
                   default="fig6")
    p.add_argument("--switches", type=int, default=8)
    p.add_argument("--hosts-per-switch", type=int, default=1)
    p.add_argument("--seed", type=int, default=5)
    p.set_defaults(func=_cmd_discover)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv`` and run the selected command."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
