"""Unified telemetry: metrics registry, sampler, profiler, exporters.

The observability spine of the reproduction (see
``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.registry` — Counter/Gauge/Histogram primitives and
  the :class:`MetricsRegistry` every component publishes through,
* :mod:`repro.obs.sampler` — gauge snapshots on a simulated-time
  cadence, producing deterministic time series,
* :mod:`repro.obs.profiler` — engine-level event and wall-clock
  accounting per component,
* :mod:`repro.obs.exporters` — Prometheus text / JSON / CSV formats
  (chrome-trace counter events live in
  :mod:`repro.harness.chrome_trace`),
* :mod:`repro.obs.attach` — one call wires ``NicStats``,
  ``FabricUsage``, buffer occupancy, and firmware events into a fresh
  registry,
* :mod:`repro.obs.tracing` — causal span tracing across the GM/ITB
  stack (see ``docs/TRACING.md``),
* :mod:`repro.obs.critical_path` — per-trace critical-path latency
  attribution feeding the ``latency_breakdown_ns`` histograms,
* :mod:`repro.obs.run` — the ``repro obs`` CLI workload runner.
"""

from repro.obs.attach import Telemetry, instrument_network
from repro.obs.critical_path import (
    CATEGORIES,
    Breakdown,
    breakdown_dump,
    breakdown_trace,
    observe_breakdowns,
)
from repro.obs.exporters import (
    parse_prometheus_text,
    parse_series_csv,
    series_to_csv,
    to_json,
    to_prometheus_text,
    write_json,
)
from repro.obs.profiler import Profiler, component_kind
from repro.obs.registry import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricError,
    MetricsRegistry,
)
from repro.obs.run import ObsResult, export_all, run_obs
from repro.obs.sampler import Sample, Sampler, TimeSeries
from repro.obs.tracing import (
    PacketTrace,
    Span,
    SpanTracer,
    configure,
    configured_sample_every,
    disable,
    load_dump,
    span_tree,
    tree_signature,
)

__all__ = [
    "Breakdown",
    "CATEGORIES",
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricsRegistry",
    "ObsResult",
    "PacketTrace",
    "Profiler",
    "Sample",
    "Sampler",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TimeSeries",
    "breakdown_dump",
    "breakdown_trace",
    "component_kind",
    "configure",
    "configured_sample_every",
    "disable",
    "export_all",
    "instrument_network",
    "load_dump",
    "observe_breakdowns",
    "parse_prometheus_text",
    "parse_series_csv",
    "run_obs",
    "series_to_csv",
    "span_tree",
    "to_json",
    "to_prometheus_text",
    "tree_signature",
    "write_json",
]
