"""Critical-path latency attribution for span traces.

Decomposes one traced message's end-to-end latency — root span start
to root span close — into exclusive time categories that sum *bit
exactly* to the measured latency:

========================  ==============================================
category                  time attributed
========================  ==============================================
``host``                  gm_send/gm_recv software, SDMA, MCP dispatch
``send_queue``            send-work queue wait + send-window backpressure
``wire``                  uncontended wire traversal (propagation,
                          fall-through, byte streaming)
``switch_blocking``       wormhole blocking: a hop waiting for a busy
                          output channel
``itb_buffer``            in-transit buffer residency not hidden by
                          cut-through, and receive-buffer backpressure
``reinject``              ITB detection + re-injection programming/queue
``recv``                  destination Recv machine + RDMA to host
``retransmit``            holes in the instrumented chain: timer waits
                          and dead time between a lost attempt and its
                          retransmission
========================  ==============================================

Exactness: the analyzer walks the elementary intervals between every
span boundary inside ``[root.start, root.end]`` and assigns each
interval to exactly one category, accumulating durations as
:class:`fractions.Fraction` over the recorded float timestamps.  The
per-interval durations telescope, so the exact rational total equals
``Fraction(root.end) - Fraction(root.start)``; converting that single
difference back to float is IEEE-754 correctly rounded and therefore
bit-identical to the measured ``root.end - root.start``.  Categories
partition the window by construction — no overlap, no gap.

Cut-through caveat (see ``docs/TRACING.md``): the ``itb_buffer`` span
covers the full claim→release residency, which *overlaps* the next
segment's wire time by design (re-injection starts while the tail is
still arriving).  The exclusive category therefore counts only the
residency portions not claimed by a higher-priority category — the
part that actually gates the message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Optional, Union

__all__ = [
    "CATEGORIES",
    "Breakdown",
    "breakdown_dump",
    "breakdown_trace",
    "observe_breakdowns",
]

#: Exclusive time categories, in display order.
CATEGORIES = (
    "host",
    "send_queue",
    "wire",
    "switch_blocking",
    "itb_buffer",
    "reinject",
    "recv",
    "retransmit",
)

#: Control-packet subtrees (acks and their firmware stages) are not
#: part of the data path and never claim an interval.
_CONTROL_NAMES = frozenset({"ack", "nack", "reset"})

#: Priority-ordered (category, matcher) rules: the first rule with a
#: covering span claims the interval.  Wormhole blocking outranks the
#: wire span it nests in; receive-buffer stalls outrank the wire span
#: of the packet stalled on it; the wire outranks the ITB buffer
#: residency it overlaps via cut-through.
_PRIORITY = (
    ("switch_blocking", frozenset()),        # hop spans, special-cased
    ("itb_buffer", frozenset({"recv_wait"})),
    ("wire", frozenset({"wire"})),
    ("reinject", frozenset({"itb_detect", "itb_program", "itb_queue"})),
    ("itb_buffer", frozenset({"itb_buffer"})),
    ("send_queue", frozenset({"send_queue", "window_wait"})),
    ("recv", frozenset({"recv"})),
    ("host", frozenset({"sdma", "mcp_send", "itb_dispatch",
                        "host_send", "gm_recv"})),
)


@dataclass
class Breakdown:
    """One message's critical-path decomposition.

    ``fractions`` holds the exact per-category durations; ``categories``
    their float renderings for display.  The exactness invariant is
    ``float(sum(fractions.values())) == total_ns``.
    """

    trace_id: int
    start: float
    end: float
    status: str
    n_attempts: int
    fractions: dict = field(default_factory=dict)

    @property
    def total_ns(self) -> float:
        return self.end - self.start

    @property
    def categories(self) -> dict:
        return {k: float(v) for k, v in self.fractions.items()}

    def exact_total(self) -> Fraction:
        """Exact rational sum of all category durations.

        Equals ``Fraction(root.end) - Fraction(root.start)`` by
        construction; converting it to float reproduces ``total_ns``
        bit-for-bit.
        """
        return sum(self.fractions.values(), Fraction(0))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Breakdown trace {self.trace_id}"
                f" {self.total_ns:.0f} ns {self.status}>")


def _as_dict(span) -> dict:
    return span if isinstance(span, dict) else span.to_dict()


def _interval_category(name: str, start, end) -> Optional[int]:
    """Priority index claimed by a span name (None = no claim)."""
    if name.startswith("hop"):
        # A zero-length hop never covers an interval; a positive one
        # is time the worm head waited for a busy output channel.
        return 0
    for i, (_cat, names) in enumerate(_PRIORITY):
        if name in names:
            return i
    return None


def breakdown_trace(spans: Iterable[Union[dict, object]]
                    ) -> Optional["Breakdown"]:
    """Decompose one trace's spans (all sharing a trace id).

    Returns ``None`` for traces whose root never closed (message still
    in flight at end of simulation, or unsampled).
    """
    recs = [_as_dict(s) for s in spans]
    if not recs:
        return None
    root = next((r for r in recs if r["parent"] is None), None)
    if root is None or root["end"] is None:
        return None
    t0, t1 = root["start"], root["end"]
    if t1 < t0:  # pragma: no cover - defensive
        return None

    # Exclude control-packet subtrees (ack/nack/reset and descendants).
    by_id = {r["span"]: r for r in recs}

    def _excluded(r: dict) -> bool:
        seen = set()
        cur = r
        while cur is not None and cur["span"] not in seen:
            if cur["name"] in _CONTROL_NAMES:
                return True
            seen.add(cur["span"])
            cur = by_id.get(cur["parent"])
        return False

    n_attempts = 0
    retried = False
    covers: list[tuple[float, float, int]] = []  # (start, end, priority)
    bounds: set[float] = {t0, t1}
    for r in recs:
        if _excluded(r):
            continue
        if r["name"] == "attempt":
            n_attempts += 1
            if r["attrs"].get("retry", 0) or r["status"] not in ("ok", "open"):
                retried = True
        prio = _interval_category(r["name"], r["start"], r["end"])
        if prio is None:
            continue
        s = max(r["start"], t0)
        e = min(r["end"] if r["end"] is not None else t1, t1)
        if e <= s:
            continue
        covers.append((s, e, prio))
        bounds.add(s)
        bounds.add(e)

    # Holes in the instrumented chain are timer waits / dead time
    # between attempts when the message was ever retransmitted or
    # terminated; in a clean single-attempt chain any residual hole is
    # uninstrumented host time.
    gap_category = "retransmit" if (retried or n_attempts > 1) else "host"

    fracs = {cat: Fraction(0) for cat in CATEGORIES}
    cut = sorted(bounds)
    for i in range(len(cut) - 1):
        lo, hi = cut[i], cut[i + 1]
        if hi <= lo:
            continue
        best: Optional[int] = None
        for (s, e, prio) in covers:
            if s <= lo and e >= hi and (best is None or prio < best):
                best = prio
        cat = gap_category if best is None else _PRIORITY[best][0]
        fracs[cat] += Fraction(hi) - Fraction(lo)

    return Breakdown(
        trace_id=root["trace"], start=t0, end=t1, status=root["status"],
        n_attempts=n_attempts, fractions=fracs,
    )


def breakdown_dump(spans: Iterable[Union[dict, object]]) -> list["Breakdown"]:
    """Per-trace breakdowns for a whole span set (dump or tracer)."""
    by_trace: dict[int, list[dict]] = {}
    for s in spans:
        r = _as_dict(s)
        by_trace.setdefault(r["trace"], []).append(r)
    out = []
    for trace_id in sorted(by_trace):
        b = breakdown_trace(by_trace[trace_id])
        if b is not None:
            out.append(b)
    return out


def observe_breakdowns(breakdowns: Iterable["Breakdown"], registry,
                       buckets=None) -> None:
    """Aggregate per-category durations into registry histograms.

    One ``latency_breakdown_ns{category=...}`` histogram per category,
    fed the float duration of every completed trace the category
    actually appeared in (zero-duration categories are skipped, so the
    count reads as "traces where this category was on the critical
    path" and in-bucket quantile interpolation is not polluted by
    zeros).
    """
    from repro.obs.registry import DEFAULT_NS_BUCKETS

    if buckets is None:
        buckets = DEFAULT_NS_BUCKETS
    for b in breakdowns:
        for cat, frac in b.fractions.items():
            if not frac:
                continue
            registry.histogram(
                "latency_breakdown_ns", buckets=buckets,
                help="critical-path time per category (ns)",
                labels={"category": cat},
            ).observe(float(frac))
