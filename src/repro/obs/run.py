"""The ``repro obs`` workload runner: drive traffic, collect everything.

One call builds a network (the paper's fig6 testbed or a random
irregular COW), attaches the full telemetry stack
(:func:`~repro.obs.attach.instrument_network`), drives open-loop
uniform traffic at a configured load, and returns the registry,
sampled time series, engine profile, structured trace, and latency
summary in one :class:`ObsResult` — which :func:`export_all` dumps as
Prometheus text, JSON, CSV, and a chrome trace with counter tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.core.builder import BuiltNetwork, build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.chrome_trace import write_chrome_trace
from repro.harness.metrics import LatencySummary, summarize_latencies
from repro.harness.workloads import TrafficStats, drive_traffic
from repro.obs.attach import Telemetry, instrument_network
from repro.obs.critical_path import breakdown_dump, observe_breakdowns
from repro.obs.exporters import to_prometheus_text, write_json
from repro.obs.tracing import SpanTracer
from repro.topology.generators import random_irregular

__all__ = ["ObsResult", "export_all", "run_obs"]


@dataclass
class ObsResult:
    """Everything one instrumented workload run produced."""

    net: BuiltNetwork
    telemetry: Telemetry
    traffic: TrafficStats
    latency: LatencySummary

    @property
    def registry(self):
        """Shortcut to the telemetry registry."""
        return self.telemetry.registry

    @property
    def tracer(self):
        """The run's span tracer (``None`` when tracing was off)."""
        return self.net.fabric.tracer


def run_obs(
    topology: str = "fig6",
    switches: int = 8,
    hosts_per_switch: int = 2,
    topo_seed: int = 5,
    routing: str = "updown",
    load: float = 0.02,
    packet_size: int = 512,
    duration_ns: float = 50_000.0,
    warmup_ns: float = 0.0,
    interval_ns: float = 1_000.0,
    traffic_seed: int = 7,
    profile: bool = True,
    trace_every: int = 0,
) -> ObsResult:
    """Run one fully instrumented open-loop traffic workload.

    Parameters mirror the EXP-M1 harness: ``load`` is offered bytes/ns
    per host (link capacity 0.16), ``interval_ns`` is the gauge
    sampling cadence.  ``topology`` is ``"fig6"`` (the paper testbed)
    or ``"random"`` (an irregular COW of ``switches`` switches).
    The ITB firmware with the proposed buffer pool runs everywhere so
    in-transit forwarding is observable; host noise is disabled for
    reproducible series.

    ``trace_every`` > 0 attaches a causal span tracer sampling every
    Nth message (1 = all); per-trace critical-path breakdowns land in
    the ``latency_breakdown_ns`` histograms.
    """
    config = NetworkConfig(
        firmware="itb",
        routing=routing,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        reliable=False,
        recv_buffer_kind="pool",
        pool_bytes=1024 * 1024,
        seed=topo_seed,
        trace=True,
    )
    if topology == "fig6":
        net = build_network("fig6", config=config)
    elif topology == "random":
        topo = random_irregular(switches, seed=topo_seed,
                                hosts_per_switch=hosts_per_switch)
        net = build_network(topo, config=config)
    else:
        raise ValueError(f"unknown topology {topology!r}"
                         " (expected 'fig6' or 'random')")

    if trace_every > 0:
        net.fabric.tracer = SpanTracer(sample_every=trace_every)

    telemetry = instrument_network(
        net, sample_interval_ns=interval_ns, profile=profile)
    traffic = drive_traffic(
        net,
        rate_bytes_per_ns_per_host=load,
        packet_size=packet_size,
        duration_ns=duration_ns,
        warmup_ns=warmup_ns,
        seed=traffic_seed,
    )
    telemetry.stop()

    hist = telemetry.registry.histogram(
        "packet_latency_ns",
        help="end-to-end packet latency (host_send to last byte), ns")
    for sample in traffic.latencies_ns:
        hist.observe(sample)

    tracer = net.fabric.tracer
    if tracer is not None:
        observe_breakdowns(breakdown_dump(tracer.spans), telemetry.registry)

    return ObsResult(
        net=net,
        telemetry=telemetry,
        traffic=traffic,
        latency=summarize_latencies(traffic.latencies_ns),
    )


def export_all(result: ObsResult, out_dir: Union[str, Path]) -> dict[str, Path]:
    """Dump every exporter's view of a run into ``out_dir``.

    Writes ``metrics.prom`` (Prometheus text), ``telemetry.json``
    (metrics + series + profile), ``series.csv`` (long-format sampled
    series), and ``trace.json`` (chrome trace with counter tracks and,
    when spans were collected, async span tracks + flow arrows).  A
    traced run additionally writes ``spans.json`` (the canonical span
    dump).  Returns ``{kind: path}``.
    """
    from repro.obs.exporters import series_to_csv

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    telemetry = result.telemetry
    paths: dict[str, Path] = {}

    prom = out_dir / "metrics.prom"
    prom.write_text(to_prometheus_text(telemetry.registry))
    paths["prometheus"] = prom

    paths["json"] = write_json(
        out_dir / "telemetry.json",
        registry=telemetry.registry,
        sampler=telemetry.sampler,
        profiler=telemetry.profiler,
    )

    series = telemetry.sampler.all_series() if telemetry.sampler else []
    csv_path = out_dir / "series.csv"
    csv_path.write_text(series_to_csv(series))
    paths["csv"] = csv_path

    tracer = result.tracer
    spans = tracer.spans if tracer is not None else ()
    if result.net.trace is not None:
        paths["chrome_trace"] = write_chrome_trace(
            result.net.trace, out_dir / "trace.json", series=series,
            spans=spans)
    if tracer is not None:
        span_path = out_dir / "spans.json"
        span_path.write_text(tracer.dump_json())
        paths["spans"] = span_path
    return paths
