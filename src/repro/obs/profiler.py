"""Engine profiler: where do events and wall-clock time go?

The ROADMAP's north star is "as fast as the hardware allows"; before
optimizing a hot path one must be able to *measure* it.  The
:class:`Profiler` installs into :class:`repro.sim.engine.Simulator`
and observes every calendar dispatch:

* ``events_total`` — every dispatched callback,
* ``events_by_component`` — the same dispatches attributed to the
  process that stepped during them (``sdma[host1]``, ``send[host2]``,
  ...); dispatches that step no process (event fan-out, timer
  plumbing) are attributed to ``"engine"``,
* ``wall_ns_by_component`` — host wall-clock time spent inside each
  dispatch, charged to the same component.

The attribution is exhaustive and exclusive — each dispatch lands in
exactly one bucket — so the per-component counts always sum to
``events_total`` (asserted by the acceptance tests).

Wall-clock numbers come from ``time.perf_counter_ns`` and are of
course not deterministic; event counts are, under the seeded engine.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.sim.engine import Simulator

__all__ = ["Profiler", "component_kind"]

#: Bucket for dispatches that stepped no process.
ENGINE_COMPONENT = "engine"


def component_kind(component: str) -> str:
    """Collapse an instance name to its kind: ``send[host1]`` → ``send``.

    Process names follow the ``kind[instance]`` convention throughout
    the stack; names without a bracket are their own kind.
    """
    idx = component.find("[")
    return component[:idx] if idx > 0 else component


class Profiler:
    """Per-dispatch event and wall-time accounting for the engine.

    Use :meth:`install` to attach to a simulator; the engine then
    routes every calendar dispatch through :meth:`dispatch`.  The
    running process (if any) self-reports via :meth:`attribute` from
    ``Process._step``/``_throw``.
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self._clock = clock
        self.events_total = 0
        self.events_by_component: dict[str, int] = {}
        self.wall_ns_by_component: dict[str, float] = {}
        self.wall_ns_total = 0.0
        self._current: Optional[str] = None
        self.sim: Optional["Simulator"] = None

    # -- lifecycle --------------------------------------------------------

    def install(self, sim: "Simulator") -> "Profiler":
        """Attach to ``sim`` (replacing any previously installed one)."""
        sim.profiler = self
        self.sim = sim
        return self

    def uninstall(self) -> None:
        """Detach from the simulator (accumulated data is kept)."""
        if self.sim is not None and self.sim.profiler is self:
            self.sim.profiler = None
        self.sim = None

    # -- engine-facing hooks ----------------------------------------------

    def dispatch(self, callback: Callable[[], None]) -> None:
        """Run one calendar callback under measurement.

        Called by the engine's run loops in place of a bare
        ``callback()`` whenever a profiler is installed.
        """
        self.events_total += 1
        self._current = None
        t0 = self._clock()
        try:
            callback()
        finally:
            dt = self._clock() - t0
            comp = self._current or ENGINE_COMPONENT
            self._current = None
            self.events_by_component[comp] = (
                self.events_by_component.get(comp, 0) + 1)
            self.wall_ns_by_component[comp] = (
                self.wall_ns_by_component.get(comp, 0.0) + dt)
            self.wall_ns_total += dt

    def attribute(self, component: str) -> None:
        """Tag the in-flight dispatch with the process it stepped.

        Called by ``Process`` just before resuming its generator; the
        last attribution within a dispatch wins (at most one process
        steps per dispatch under the engine's scheduling rules).
        """
        self._current = component

    # -- queries ----------------------------------------------------------

    def by_kind(self) -> dict[str, dict[str, float]]:
        """Aggregate to component *kinds* (``send``, ``sdma``, ...).

        Returns ``{kind: {"events": n, "wall_ns": t}}`` sorted by
        descending wall time.
        """
        agg: dict[str, dict[str, float]] = {}
        for comp, n in self.events_by_component.items():
            kind = component_kind(comp)
            entry = agg.setdefault(kind, {"events": 0, "wall_ns": 0.0})
            entry["events"] += n
            entry["wall_ns"] += self.wall_ns_by_component.get(comp, 0.0)
        return dict(sorted(agg.items(),
                           key=lambda kv: -kv[1]["wall_ns"]))

    def top(self, n: int = 10) -> list[tuple[str, int, float]]:
        """The ``n`` components with the most wall time:
        ``(component, events, wall_ns)`` rows, descending."""
        rows = [
            (comp, self.events_by_component[comp],
             self.wall_ns_by_component.get(comp, 0.0))
            for comp in self.events_by_component
        ]
        rows.sort(key=lambda r: -r[2])
        return rows[:n]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Profiler events={self.events_total}"
                f" components={len(self.events_by_component)}"
                f" wall={self.wall_ns_total / 1e6:.1f}ms>")
