"""Exporters: Prometheus text, JSON, and CSV views of the telemetry.

One registry, several wire formats:

* :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` headers, ``{label="value"}`` sets, cumulative ``le=``
  histogram buckets), with :func:`parse_prometheus_text` as the
  round-trip inverse used by the tests;
* :func:`to_json` / :func:`write_json` — one JSON document holding
  metrics, sampled time series, and profiler output;
* :func:`series_to_csv` / :func:`parse_series_csv` — long-format CSV
  (``time_ns,metric,component,value``) of the sampled series, for
  spreadsheets and pandas.

Chrome-trace counter ("C") events are produced by
:func:`repro.harness.chrome_trace.to_counter_events`, next to the rest
of the Trace-Event-Format code.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.obs.registry import Histogram

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.obs.profiler import Profiler
    from repro.obs.registry import MetricsRegistry
    from repro.obs.sampler import Sampler, TimeSeries

__all__ = [
    "parse_prometheus_text",
    "parse_series_csv",
    "sanitize_metric_name",
    "series_to_csv",
    "to_json",
    "to_prometheus_text",
    "write_json",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$")
_PROM_LABEL = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """Coerce a name into the Prometheus charset (invalid chars → _)."""
    if _NAME_OK.match(name):
        return name
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not re.match(r"[a-zA-Z_:]", out):
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt_labels(labels: dict[str, str], extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def to_prometheus_text(registry: "MetricsRegistry") -> str:
    """Render every registered metric in Prometheus text format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry.collect():
        name = sanitize_metric_name(metric.name)
        if name not in seen_headers:
            seen_headers.add(name)
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Histogram):
            for edge, cum in metric.cumulative_counts():
                le = "+Inf" if math.isinf(edge) else _fmt_value(edge)
                lines.append(
                    f"{name}_bucket"
                    f"{_fmt_labels(metric.labels, {'le': le})}"
                    f" {cum}")
            lines.append(
                f"{name}_sum{_fmt_labels(metric.labels)}"
                f" {_fmt_value(metric.sum)}")
            lines.append(
                f"{name}_count{_fmt_labels(metric.labels)} {metric.count}")
        else:
            lines.append(
                f"{name}{_fmt_labels(metric.labels)}"
                f" {_fmt_value(metric.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text back to ``{(name, labels): value}``.

    The inverse of :func:`to_prometheus_text` for round-trip tests and
    quick scripting; comment lines are skipped.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _PROM_LINE.match(line)
        if not m:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels: dict[str, str] = {}
        if m.group("labels"):
            for k, v in _PROM_LABEL.findall(m.group("labels")):
                labels[k] = (v.replace(r"\n", "\n")
                             .replace(r"\"", '"')
                             .replace(r"\\", "\\"))
        value_str = m.group("value")
        if value_str == "+Inf":
            value = math.inf
        elif value_str == "-Inf":
            value = -math.inf
        else:
            value = float(value_str)
        out[(m.group("name"), tuple(sorted(labels.items())))] = value
    return out


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def _metric_to_dict(metric) -> dict:
    d: dict = {
        "name": metric.name,
        "kind": metric.kind,
        "labels": dict(metric.labels),
    }
    if isinstance(metric, Histogram):
        d["count"] = metric.count
        d["sum"] = metric.sum
        d["buckets"] = [
            {"le": ("+Inf" if math.isinf(edge) else edge), "count": cum}
            for edge, cum in metric.cumulative_counts()
        ]
    else:
        d["value"] = metric.value
    return d


def _series_to_dict(ts: "TimeSeries") -> dict:
    return {
        "name": ts.name,
        "labels": dict(ts.labels),
        "times_ns": ts.times(),
        "values": ts.values(),
    }


def _profiler_to_dict(profiler: "Profiler") -> dict:
    return {
        "events_total": profiler.events_total,
        "wall_ns_total": profiler.wall_ns_total,
        "events_by_component": dict(
            sorted(profiler.events_by_component.items())),
        "wall_ns_by_component": dict(
            sorted(profiler.wall_ns_by_component.items())),
        "by_kind": profiler.by_kind(),
    }


def to_json(
    registry: Optional["MetricsRegistry"] = None,
    sampler: Optional["Sampler"] = None,
    profiler: Optional["Profiler"] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Bundle metrics + series + profile into one JSON-able dict."""
    doc: dict = {"format": "repro-telemetry/1"}
    if registry is not None:
        doc["metrics"] = [_metric_to_dict(m) for m in registry.collect()]
    if sampler is not None:
        doc["series"] = [_series_to_dict(s) for s in sampler.all_series()]
        doc["sample_interval_ns"] = sampler.interval_ns
    if profiler is not None:
        doc["profile"] = _profiler_to_dict(profiler)
    if extra:
        doc.update(extra)
    return doc


def write_json(
    path: Union[str, Path],
    registry: Optional["MetricsRegistry"] = None,
    sampler: Optional["Sampler"] = None,
    profiler: Optional["Profiler"] = None,
    extra: Optional[dict] = None,
) -> Path:
    """Write :func:`to_json` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(
        to_json(registry=registry, sampler=sampler, profiler=profiler,
                extra=extra),
        indent=1))
    return path


# ---------------------------------------------------------------------------
# CSV (long format)
# ---------------------------------------------------------------------------

def series_to_csv(series: Iterable["TimeSeries"]) -> str:
    """Long-format CSV of sampled series.

    Columns: ``time_ns,metric,component,value``.  Component strings
    are quoted (they contain brackets/arrows, never quotes).
    """
    lines = ["time_ns,metric,component,value"]
    for ts in series:
        for p in ts.points:
            lines.append(
                f'{_fmt_value(p.t_ns)},{ts.name},"{ts.component}",'
                f"{_fmt_value(p.value)}")
    return "\n".join(lines) + "\n"


def parse_series_csv(text: str) -> list[tuple[float, str, str, float]]:
    """Parse :func:`series_to_csv` output back to tuples.

    Returns ``(time_ns, metric, component, value)`` rows in file
    order — the round-trip inverse used by the exporter tests.
    """
    rows: list[tuple[float, str, str, float]] = []
    lines = text.strip().splitlines()
    if not lines or lines[0] != "time_ns,metric,component,value":
        raise ValueError("not a repro series CSV (bad header)")
    for line in lines[1:]:
        t_str, metric, rest = line.split(",", 2)
        component, value_str = rest.rsplit(",", 1)
        rows.append((float(t_str), metric, component.strip('"'),
                     float(value_str)))
    return rows
