"""Causal span tracing across the GM/ITB stack.

One :class:`SpanTracer` follows every sampled GM message through its
full lifecycle — ``gm_send`` → window wait → NIC send queue → wire
worm (per switch hop, express or stepped) → ITB ejection → ITB buffer
residency → re-injection → receive → ack — as a tree of
:class:`Span` records sharing a trace id.  Retransmissions appear as
retry-child spans under the first attempt; worms cut by fault
injection close with status ``"killed"``.

Design constraints (see ``docs/TRACING.md``):

* **Zero-cost when disabled.**  The tracer attaches as
  ``fabric.tracer`` (``None`` by default); every instrumentation point
  in the core modules is a single attribute read plus an ``is None``
  check.  The core modules never import this module — they drive the
  tracer through duck-typed method calls — so the import graph of the
  simulation stays unchanged.
* **Deterministic.**  Trace/span ids are sequential integers assigned
  in creation order; :meth:`SpanTracer.dump_json` serializes with
  sorted keys and no whitespace, so identical runs produce
  byte-identical dumps (the ``--jobs`` determinism suite relies on
  this).
* **Lane-agnostic.**  The express and stepped worm lanes record the
  same spans with bit-identical timestamps (the express lane replays
  the stepped clock); :func:`tree_signature` canonicalizes a span
  forest for equivalence assertions that ignore id assignment order.

Sampling: :meth:`SpanTracer.sample` admits every ``sample_every``-th
message (1 = all, 0 = none); unsampled packets carry no trace context
and skip every instrumentation point.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Optional, Union

__all__ = [
    "PacketTrace",
    "Span",
    "SpanTracer",
    "configure",
    "configured_sample_every",
    "disable",
    "load_dump",
    "span_tree",
    "tree_signature",
]


class Span:
    """One timed node of a trace tree.

    ``end`` is ``None`` while open; :meth:`close` is idempotent (the
    first close wins), so teardown paths may close defensively.
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "component", "start", "end", "status", "attrs")

    def __init__(self, tracer: "SpanTracer", trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, component: str,
                 start: float, attrs: dict) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.start = start
        self.end: Optional[float] = None
        self.status = "open"
        self.attrs = attrs

    def close(self, t: float, status: str = "ok") -> None:
        """Close the span at time ``t`` (no-op when already closed)."""
        if self.end is None:
            self.end = t
            self.status = status

    @property
    def duration_ns(self) -> float:
        """Span duration (``nan`` while open)."""
        return float("nan") if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        """JSON-serializable record (stable field set)."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "component": self.component,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.trace_id}/{self.span_id} {self.name}"
                f" [{self.start}, {self.end}) {self.status}>")


class PacketTrace:
    """Per-packet trace context carried on a ``TransitPacket``.

    Bundles the message root span, this attempt's span, and a dict of
    currently open sub-spans keyed by a stage name, so the firmware
    can open a stage at one state machine and close it at another
    without threading span objects through every call.
    """

    __slots__ = ("tracer", "root", "attempt", "open")

    def __init__(self, tracer: "SpanTracer", root: Optional[Span],
                 attempt: Span) -> None:
        self.tracer = tracer
        self.root = root
        self.attempt = attempt
        self.open: dict[str, Span] = {}

    def begin(self, name: str, t: float, component: str = "",
              key: Optional[str] = None, parent: Optional[Span] = None,
              **attrs: Any) -> Span:
        """Open a child span of this attempt, registered under ``key``
        (defaults to ``name``) for a later :meth:`finish`."""
        span = self.tracer.begin(
            name, t, parent=parent if parent is not None else self.attempt,
            component=component, **attrs)
        self.open[key if key is not None else name] = span
        return span

    def finish(self, key: str, t: float, status: str = "ok"
               ) -> Optional[Span]:
        """Close and drop the open span under ``key`` (no-op if absent)."""
        span = self.open.pop(key, None)
        if span is not None:
            span.close(t, status)
        return span


class SpanTracer:
    """Collects spans for one simulation run.

    Attach as ``fabric.tracer`` *before* traffic; the GM host, the
    firmware, and the worm all discover it through the fabric.
    """

    def __init__(self, sample_every: int = 1) -> None:
        self.sample_every = int(sample_every)
        self.spans: list[Span] = []
        self._next_trace = 0
        self._next_span = 0
        self._messages_seen = 0

    # -- recording ---------------------------------------------------------

    def sample(self) -> bool:
        """Sampling decision for the next message root."""
        n = self.sample_every
        if n <= 0:
            return False
        self._messages_seen += 1
        return (self._messages_seen - 1) % n == 0

    def begin(self, name: str, t: float, parent: Optional[Span] = None,
              component: str = "", **attrs: Any) -> Span:
        """Open a span; ``parent=None`` starts a new trace."""
        if parent is None:
            self._next_trace += 1
            trace_id = self._next_trace
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        self._next_span += 1
        span = Span(self, trace_id, self._next_span, parent_id, name,
                    component, t, attrs)
        self.spans.append(span)
        return span

    def end(self, span: Span, t: float, status: str = "ok") -> None:
        """Close ``span`` (idempotent, mirrors :meth:`Span.close`)."""
        span.close(t, status)

    def packet(self, root: Optional[Span], attempt: Span) -> PacketTrace:
        """Build the per-packet context carried on a TransitPacket."""
        return PacketTrace(self, root, attempt)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> list[Span]:
        """Root spans (one per trace), in creation order."""
        return [s for s in self.spans if s.parent_id is None]

    def spans_of(self, trace_id: int) -> list[Span]:
        """Every span of one trace, in creation order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    # -- serialization -----------------------------------------------------

    def to_dump(self) -> dict:
        """The whole span set as a JSON-serializable document."""
        return {
            "format": "repro-spans/1",
            "sample_every": self.sample_every,
            "n_traces": self._next_trace,
            "spans": [s.to_dict() for s in self.spans],
        }

    def dump_json(self) -> str:
        """Canonical (byte-stable) JSON serialization of the dump."""
        return json.dumps(self.to_dump(), sort_keys=True,
                          separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SpanTracer {len(self.spans)} spans,"
                f" {self._next_trace} traces>")


# ---------------------------------------------------------------------------
# module-level configuration (inherited by forked runner workers)
# ---------------------------------------------------------------------------

#: When not ``None``, every network built through
#: :func:`repro.core.builder.build_network` gets a fresh tracer with
#: this sampling interval.  Module-level so ``fork``-pool workers of
#: the experiment runner inherit it, exactly like the route cache.
_configured_sample_every: Optional[int] = None


def _tracer_factory() -> SpanTracer:
    return SpanTracer(sample_every=_configured_sample_every or 1)


def configure(sample_every: int = 1) -> None:
    """Enable tracing for every subsequently built network.

    Installs a tracer factory on the network builder; forked runner
    workers inherit the setting.  ``sample_every`` traces every Nth
    message (1 = all).
    """
    global _configured_sample_every
    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")
    _configured_sample_every = int(sample_every)
    from repro.core import builder

    builder.tracer_factory = _tracer_factory


def disable() -> None:
    """Disable builder-level tracing (networks get ``tracer=None``)."""
    global _configured_sample_every
    _configured_sample_every = None
    from repro.core import builder

    builder.tracer_factory = None


def configured_sample_every() -> Optional[int]:
    """The active builder-level sampling interval (None = disabled)."""
    return _configured_sample_every


# ---------------------------------------------------------------------------
# dump loading and tree canonicalization
# ---------------------------------------------------------------------------


def load_dump(source: Union[str, bytes, dict]) -> list[dict]:
    """Span dicts from a dump document (JSON text or parsed dict)."""
    doc = json.loads(source) if isinstance(source, (str, bytes)) else source
    if doc.get("format") != "repro-spans/1":
        raise ValueError(f"not a span dump: format={doc.get('format')!r}")
    return list(doc["spans"])


def _as_dict(span: Union[Span, dict]) -> dict:
    return span.to_dict() if isinstance(span, Span) else span


def span_tree(spans: Iterable[Union[Span, dict]]) -> list[dict]:
    """Nest spans into parent→children trees (returns the roots).

    Each node is the span dict plus a ``"children"`` list sorted by
    ``(start, name)`` — id assignment order never matters.
    """
    nodes = [dict(_as_dict(s), children=[]) for s in spans]
    by_id = {n["span"]: n for n in nodes}
    roots = []
    for n in nodes:
        parent = by_id.get(n["parent"])
        if parent is None:
            roots.append(n)
        else:
            parent["children"].append(n)
    def _sort(children: list[dict]) -> None:
        children.sort(key=lambda n: (n["start"], n["name"],
                                     json.dumps(n["attrs"], sort_keys=True)))
        for child in children:
            _sort(child["children"])
    _sort(roots)
    return roots


def tree_signature(spans: Iterable[Union[Span, dict]]) -> tuple:
    """A canonical, id-free signature of a span forest.

    Two runs that produced the same spans — same names, components,
    times, statuses, attrs, and parent/child structure — have equal
    signatures even when span ids were assigned in a different order
    (e.g. same-instant completions draining in a different calendar
    order).  The worm express/stepped equivalence suite compares
    these.
    """
    def _node_sig(node: dict) -> tuple:
        return (
            node["name"], node["component"], node["start"], node["end"],
            node["status"],
            tuple(sorted((k, node["attrs"][k]) for k in node["attrs"])),
            tuple(_node_sig(c) for c in node["children"]),
        )
    return tuple(_node_sig(root) for root in span_tree(spans))


#: Signature of the callable installed on the builder by configure().
TracerFactory = Callable[[], SpanTracer]
