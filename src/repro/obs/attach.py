"""Wire a built network's existing stat silos into one registry.

Before this module, the repo's observability lived in five unconnected
places — ``NicStats`` counters, ``FabricUsage`` channel meters, the
structured trace, harness latency summaries, and the chrome-trace
export.  :func:`instrument_network` registers all of them into a
single :class:`~repro.obs.registry.MetricsRegistry` (callback-backed,
so the hot paths keep mutating their plain attributes) and optionally
starts a :class:`~repro.obs.sampler.Sampler` and installs a
:class:`~repro.obs.profiler.Profiler`, returning the whole bundle as a
:class:`Telemetry`.

Metric catalog (see ``docs/OBSERVABILITY.md`` for details):

* ``nic_<field>`` — one counter per ``NicStats`` field, per NIC,
* ``nic_recv_buffer_occupancy_bytes`` / ``nic_recv_buffer_packets`` —
  receive/ITB buffer occupancy gauges (the Fig. 8 resource),
* ``nic_send_queue_depth`` — Send-machine work queue gauge,
* ``nic_mcp_events_total{kind=...}`` — every firmware ``emit()``,
* ``fabric_channel_{packets_total,busy_ns,utilization}`` — per
  switch-to-switch channel,
* ``fabric_{jain_fairness,max_utilization,root_concentration}`` —
  the balance summary statistics of the instrumentation module,
* ``worm_express_hits`` / ``worm_express_partial`` /
  ``worm_express_fallbacks`` / ``worm_stepped_hops`` — worm
  express-lane counters (see ``docs/ENGINE_FASTPATH.md``),
* ``gm_retransmits`` / ``gm_timeouts`` / ``gm_dropped`` / ... — per
  host GM reliability counters (see ``docs/RELIABILITY.md``),
* ``faults_injected`` / ``remap_events`` / ``fault_*`` — fault-plan
  counters, zero (and filtered from snapshots) without a plan,
* ``route_cache_{hits,misses,evictions}`` / ``route_cache_entries`` /
  ``route_cache_batch_hits`` — shared route-cache behaviour (attached
  when a cache is passed); batch hits count per-source route trees
  served whole off a warm batched entry,
* ``itb_reselect_{runs,forced,pairs_changed,decisions,engaged}`` —
  adaptive ITB host-selection counters, resolved lazily from the
  attached :class:`~repro.gm.mapper.ItbReselector` (zero, and
  filtered from snapshots, without one — see
  ``docs/ADAPTIVE_ITB.md``),
* ``partition_{windows,messages,dropped}`` /
  ``partition_sync_stall_seconds`` — partitioned-engine barrier
  telemetry (:func:`attach_partition_engine`, see
  ``docs/PARALLEL.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.network.instrumentation import FabricUsage, attach_usage_meter
from repro.nic.lanai import NicStats
from repro.obs.profiler import Profiler
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork

__all__ = ["RegistryCongestionView", "Telemetry", "attach_congestion_view",
           "attach_partition_engine", "attach_route_cache",
           "instrument_network"]

#: Help strings for the NicStats-backed counters.
_NIC_STAT_HELP = {
    "packets_sent": "packets injected by this NIC as the source",
    "packets_received": "packets fully received by this NIC",
    "packets_forwarded": "in-transit packets re-injected (ITB hops)",
    "packets_dropped_unknown": "packets dropped for unknown type",
    "packets_flushed": "buffer-pool overflow flushes",
    "bytes_sent": "wire bytes injected as the source",
    "bytes_received": "wire bytes fully received",
    "itb_immediate": "re-injections started by the Recv fast path",
    "itb_pending": "re-injections deferred to the Send machine",
    "recv_blocked_ns": "wire time stalled waiting for a buffer (ns)",
    "packets_lost_in_flight": "worms cut mid-flight by a dynamic fault",
}

#: GmHost counter attributes published per host (metric -> attribute).
_GM_COUNTERS = {
    "gm_messages_sent": ("messages_sent",
                         "messages fully handed to the NIC"),
    "gm_messages_received": ("messages_received",
                             "messages delivered to the application"),
    "gm_retransmits": ("retransmissions",
                       "data packets retransmitted (timeout or nack)"),
    "gm_timeouts": ("timeouts",
                    "go-back-N retransmission timer expiries"),
    "gm_dropped": ("messages_failed",
                   "messages failed with GmSendError (budget exhausted)"),
    "gm_nacks_sent": ("nacks_sent",
                      "nacks emitted for out-of-order arrivals"),
    "gm_nacks_received": ("nacks_received",
                          "nacks received (fast-retransmit triggers)"),
    "gm_send_errors": ("send_errors",
                       "connections failed by budget exhaustion"),
    "gm_route_failures": ("route_failures",
                          "sends with no route on the degraded fabric"),
}

#: ItbReselector counter attributes published network-wide.
_ITB_RESELECT_COUNTERS = {
    "itb_reselect_runs": ("runs",
                          "in-transit host reselection passes executed"),
    "itb_reselect_forced": ("forced",
                            "reselections forced by a fault remap"),
    "itb_reselect_pairs_changed": ("pairs_changed",
                                   "host pairs whose stamped ITB route"
                                   " moved to another in-transit host"),
    "itb_reselect_decisions": ("decisions",
                               "selector invocations (one per ITB cut)"),
    "itb_reselect_engaged": ("engaged",
                             "decisions where live congestion diverted"
                             " the static pick"),
}

#: FaultPlan counter attributes published network-wide.
_FAULT_COUNTERS = {
    "faults_injected": ("faults_injected",
                        "dynamic fault events applied to the fabric"),
    "fault_repairs": ("repairs", "fault events repaired"),
    "remap_events": ("remap_events",
                     "mapper route-table recomputations after faults"),
    "fault_packets_lost": ("lost", "packets lost to probabilistic faults"),
    "fault_packets_corrupted": ("corrupted",
                                "packets corrupted (CRC drop) by faults"),
    "fault_killed_in_flight": ("killed_in_flight",
                               "in-flight worms cut by dynamic faults"),
}


@dataclass
class Telemetry:
    """The telemetry bundle attached to one built network."""

    registry: MetricsRegistry
    sampler: Optional[Sampler] = None
    profiler: Optional[Profiler] = None
    usage: Optional[FabricUsage] = None

    def stop(self) -> None:
        """Stop sampling and detach the profiler (data is kept)."""
        if self.sampler is not None:
            self.sampler.stop()
        if self.profiler is not None:
            self.profiler.uninstall()


def _attach_nic(registry: MetricsRegistry, nic) -> None:
    comp = f"nic[{nic.name}]"
    stats = nic.stats
    for f in dataclasses.fields(NicStats):
        registry.counter(
            f"nic_{f.name}", component=comp,
            help=_NIC_STAT_HELP.get(f.name, ""),
            fn=lambda s=stats, n=f.name: getattr(s, n),
        )
    buffers = nic.recv_buffers
    registry.gauge(
        "nic_recv_buffer_occupancy_bytes", component=comp,
        help="bytes currently held in the receive/ITB buffers",
        fn=lambda b=buffers: b.occupancy_bytes,
    )
    registry.gauge(
        "nic_recv_buffer_packets", component=comp,
        help="packets currently held in the receive/ITB buffers",
        fn=lambda b=buffers: b.n_packets,
    )
    if nic.firmware is not None:
        registry.gauge(
            "nic_send_queue_depth", component=comp,
            help="descriptors waiting in the Send machine's queue",
            fn=lambda fw=nic.firmware: len(fw._send_work),
        )
    # Publish future firmware emit() calls as counters too.
    nic.metrics = registry
    gm = getattr(nic, "_gm_host", None)
    if gm is not None:
        for name, (attr, help_) in _GM_COUNTERS.items():
            registry.counter(
                name, component=comp, help=help_,
                fn=lambda g=gm, a=attr: getattr(g, a),
            )


def _attach_faults(registry: MetricsRegistry, fabric) -> None:
    # The plan may be installed after instrumentation: resolve it
    # lazily from fabric.meta at observation time.  With no plan every
    # counter reads zero and observe()'s zero filter keeps snapshots
    # (and goldens) unchanged.
    for name, (attr, help_) in _FAULT_COUNTERS.items():
        registry.counter(
            name, component="fabric", help=help_,
            fn=lambda f=fabric, a=attr: getattr(
                f.meta.get("fault_plan"), a, 0),
        )


def _attach_itb_reselect(registry: MetricsRegistry, fabric) -> None:
    # The reselector may be installed after instrumentation (the
    # harness attaches telemetry first so the congestion view can read
    # the registry): resolve it lazily from fabric.meta at observation
    # time.  Without one every counter reads zero and observe()'s zero
    # filter keeps snapshots (and goldens) unchanged.
    for name, (attr, help_) in _ITB_RESELECT_COUNTERS.items():
        registry.counter(
            name, component="mapper", help=help_,
            fn=lambda f=fabric, a=attr: getattr(
                f.meta.get("itb_reselector"), a, 0),
        )


class RegistryCongestionView:
    """Live :class:`~repro.routing.selectors.CongestionView` over the
    registry's per-NIC buffer occupancy gauges.

    This is the read-only signal feeding adaptive ITB host selection:
    ``host_load(h)`` reads the ``nic_recv_buffer_occupancy_bytes``
    gauge of host ``h`` — callback-backed, so every read reports the
    buffers' *current* fill, no sampling loop required.  Routing never
    imports this module; the view object is handed to the selector
    duck-typed, exactly like ``fabric.tracer``.
    """

    def __init__(self, gauges: dict[int, "object"]) -> None:
        self._gauges = gauges

    def host_load(self, host: int) -> float:
        """Bytes currently held in ``host``'s receive/ITB buffers."""
        gauge = self._gauges.get(host)
        return 0.0 if gauge is None else float(gauge.value)


def attach_congestion_view(net: "BuiltNetwork",
                           registry: MetricsRegistry
                           ) -> RegistryCongestionView:
    """Build the congestion view adaptive selectors consume.

    Resolves each host's ``nic_recv_buffer_occupancy_bytes`` gauge
    from ``registry`` (so the registry must already be attached via
    :func:`instrument_network`) and maps it back to the host id.
    """
    gauges: dict[int, object] = {}
    for host, nic in net.nics.items():
        gauges[host] = registry.get(
            "nic_recv_buffer_occupancy_bytes",
            component=f"nic[{nic.name}]",
        )
    return RegistryCongestionView(gauges)


def _attach_express(registry: MetricsRegistry, fabric) -> None:
    stats = fabric.express_stats
    registry.counter(
        "worm_express_hits", component="fabric",
        help="worms that flew the closed-form express lane",
        fn=lambda s=stats: s.hits,
    )
    registry.counter(
        "worm_express_partial", component="fabric",
        help="express launches on a truncated claim horizon"
             " (prefix closed-form, suffix stepped)",
        fn=lambda s=stats: s.partial,
    )
    registry.counter(
        "worm_express_fallbacks", component="fabric",
        help="worm launches that took the stepped generator",
        fn=lambda s=stats: s.fallbacks,
    )
    registry.counter(
        "worm_stepped_hops", component="fabric",
        help="switch hops traversed hop-by-hop (fallbacks + demotions)",
        fn=lambda s=stats: s.stepped_hops,
    )


def attach_route_cache(registry: MetricsRegistry, cache) -> None:
    """Publish a :class:`~repro.routing.cache.RouteCache`'s counters.

    Hits/misses/evictions are shared-memory totals (accurate across
    forked workers); ``route_cache_entries`` is this process's
    resident entry count — together they show whether the LRU bound
    is churning routes that points will recompute.
    """
    registry.counter(
        "route_cache_hits", component="route-cache",
        help="route lookups served from the shared cache",
        fn=lambda c=cache: c.hits,
    )
    registry.counter(
        "route_cache_misses", component="route-cache",
        help="route lookups that computed all-pairs routes",
        fn=lambda c=cache: c.misses,
    )
    registry.counter(
        "route_cache_evictions", component="route-cache",
        help="cache entries dropped by the LRU memory bound",
        fn=lambda c=cache: c.evictions,
    )
    registry.counter(
        "route_cache_batch_hits", component="route-cache",
        help="per-source route trees served whole off a warm batch entry",
        fn=lambda c=cache: c.batch_hits,
    )
    registry.gauge(
        "route_cache_entries", component="route-cache",
        help="distinct route entries resident in this process",
        fn=lambda c=cache: len(c),
    )


def attach_partition_engine(registry: MetricsRegistry, engine) -> None:
    """Publish a :class:`~repro.sim.partition.PartitionedEngine`'s
    barrier telemetry.

    Windows/messages/dropped are deterministic (identical for every
    executor and worker count); the sync-stall gauge is wall-clock
    time the coordinator spent blocked on worker barriers — the
    parallel-efficiency signal, never part of a result document.
    """
    stats = engine.stats
    registry.counter(
        "partition_windows", component="partition-engine",
        help="conservative time windows executed (barrier rounds)",
        fn=lambda s=stats: s["windows"],
    )
    registry.counter(
        "partition_messages", component="partition-engine",
        help="cross-partition messages merged and delivered",
        fn=lambda s=stats: s["messages"],
    )
    registry.counter(
        "partition_dropped", component="partition-engine",
        help="cross-partition messages past the run horizon (undelivered)",
        fn=lambda s=stats: s["dropped"],
    )
    registry.gauge(
        "partition_sync_stall_seconds", component="partition-engine",
        help="wall-clock time the coordinator blocked on worker barriers",
        fn=lambda s=stats: s["stall_s"],
    )


def _attach_fabric(registry: MetricsRegistry,
                   usage: FabricUsage) -> None:
    for cu in usage.channels.values():
        comp = f"channel[{cu.from_node}->{cu.to_node}]"
        # Parallel cables share endpoints: the (link, direction) key —
        # extended with a lane index on multi-lane fabrics — goes in
        # its own label so every metered resource stays distinct.
        link = {"link": ":".join(str(part) for part in cu.key)}
        registry.counter(
            "fabric_channel_packets_total", component=comp,
            help="packets granted this switch-to-switch channel",
            fn=lambda c=cu: c.packets, labels=link,
        )
        registry.gauge(
            "fabric_channel_busy_ns", component=comp,
            help="cumulative busy time of this channel (ns)",
            fn=lambda c=cu: c.busy_ns, labels=link,
        )
        registry.gauge(
            "fabric_channel_utilization", component=comp,
            help="busy fraction of this channel over the observed window",
            fn=lambda c=cu, u=usage: c.utilization(u.observed_ns),
            labels=link,
        )
    registry.gauge(
        "fabric_jain_fairness",
        help="Jain's fairness index over channel busy times",
        fn=usage.jain_fairness,
    )
    registry.gauge(
        "fabric_max_utilization",
        help="busiest channel's busy fraction",
        fn=usage.max_utilization,
    )
    registry.gauge(
        "fabric_root_concentration",
        help="fraction of fabric busy time on root-adjacent channels",
        fn=usage.root_concentration,
    )


def _attach_lanes(registry: MetricsRegistry, fabric) -> None:
    """Per-lane occupancy gauges (multi-lane fabrics only).

    One gauge per lane index: the count of channels whose lane-``i``
    resource is currently held somewhere in the fabric.  Skipped
    entirely at ``n_lanes == 1`` so single-lane snapshots (and the
    goldens built on them) are unchanged.
    """
    def occupied(f, lane):
        return sum(
            1 for (_l, _d, ln), busy in f.lane_utilization_snapshot().items()
            if ln == lane and busy
        )
    for lane in range(fabric.n_lanes):
        registry.gauge(
            "fabric_lane_occupancy", component="fabric",
            help="channels whose resource on this lane is currently held",
            fn=lambda f=fabric, ln=lane: occupied(f, ln),
            labels={"lane": str(lane)},
        )


def instrument_network(
    net: "BuiltNetwork",
    registry: Optional[MetricsRegistry] = None,
    sample_interval_ns: Optional[float] = None,
    profile: bool = False,
    fabric_usage: bool = True,
    route_cache=None,
) -> Telemetry:
    """Attach the unified telemetry stack to a built network.

    Must run *before* traffic (the fabric meter wraps channel
    resources at attach time).  Returns a :class:`Telemetry` whose
    registry already exposes every NIC and fabric metric; when
    ``sample_interval_ns`` is given a started
    :class:`~repro.obs.sampler.Sampler` records gauge time series, and
    with ``profile=True`` a :class:`~repro.obs.profiler.Profiler` is
    installed on the engine.
    """
    registry = registry or MetricsRegistry()
    for _host, nic in sorted(net.nics.items()):
        _attach_nic(registry, nic)
    _attach_express(registry, net.fabric)
    _attach_faults(registry, net.fabric)
    _attach_itb_reselect(registry, net.fabric)
    if route_cache is not None:
        attach_route_cache(registry, route_cache)
    if net.fabric.n_lanes > 1:
        _attach_lanes(registry, net.fabric)
    usage: Optional[FabricUsage] = None
    if fabric_usage:
        usage = attach_usage_meter(net)
        _attach_fabric(registry, usage)
    profiler: Optional[Profiler] = None
    if profile:
        profiler = Profiler().install(net.sim)
    sampler: Optional[Sampler] = None
    if sample_interval_ns is not None:
        sampler = Sampler(net.sim, registry, sample_interval_ns).start()
    return Telemetry(registry=registry, sampler=sampler,
                     profiler=profiler, usage=usage)
