"""Time-series sampling of gauges on a fixed simulated-time cadence.

A :class:`Sampler` rides the discrete-event engine: every
``interval_ns`` of *simulated* time it snapshots every gauge in the
registry into an append-only :class:`TimeSeries`.  This is what turns
instantaneous levels (ITB buffer occupancy, per-channel utilization,
send-queue depth) into the occupancy-over-time curves the paper's
analysis needs and that Perfetto renders as counter tracks.

Determinism: sample ticks are scheduled with a very low dispatch
priority, so a sample at time *t* observes the state *after* all model
events at *t* have run.  Under the seeded engine the sample times and
values are therefore fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.obs.registry import MetricsRegistry
    from repro.sim.engine import Simulator

__all__ = ["Sample", "Sampler", "TimeSeries"]

#: Dispatch priority of sample ticks — far below any model event, so a
#: tick at time t sees the post-state of t.
SAMPLE_PRIORITY = 1 << 30


@dataclass(frozen=True, slots=True)
class Sample:
    """One sampled point: simulated time (ns) and gauge value."""

    t_ns: float
    value: float


class TimeSeries:
    """Append-only series of :class:`Sample` points for one gauge."""

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.points: list[Sample] = []

    @property
    def component(self) -> str:
        """The ``component`` label (empty string when unlabeled)."""
        return self.labels.get("component", "")

    def append(self, t_ns: float, value: float) -> None:
        """Record one sample."""
        self.points.append(Sample(t_ns, value))

    def times(self) -> list[float]:
        """All sample times, in order."""
        return [p.t_ns for p in self.points]

    def values(self) -> list[float]:
        """All sample values, in order."""
        return [p.value for p in self.points]

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimeSeries {self.name}{self.labels} n={len(self)}>"


class Sampler:
    """Periodic gauge snapshotter driven by the simulation clock.

    Parameters
    ----------
    sim:
        The engine whose clock paces the sampling.
    registry:
        Gauges are discovered from here *at every tick*, so gauges
        registered after :meth:`start` are picked up automatically.
    interval_ns:
        Simulated time between snapshots.
    select:
        Optional predicate on a gauge; when given, only gauges for
        which it returns True are sampled.
    max_samples:
        Optional cap on ticks (a runaway guard for open-ended runs).
    """

    def __init__(
        self,
        sim: "Simulator",
        registry: "MetricsRegistry",
        interval_ns: float,
        select: Optional[Callable[..., bool]] = None,
        max_samples: Optional[int] = None,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive: {interval_ns}")
        self.sim = sim
        self.registry = registry
        self.interval_ns = float(interval_ns)
        self.select = select
        self.max_samples = max_samples
        self.series: dict[tuple[str, tuple], TimeSeries] = {}
        self.n_ticks = 0
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "Sampler":
        """Begin sampling: first snapshot at the current sim time."""
        if self._running:
            return self
        self._running = True
        self.sim.schedule(0.0, self._tick, priority=SAMPLE_PRIORITY)
        return self

    def stop(self) -> None:
        """Stop scheduling further ticks (already-taken samples stay)."""
        self._running = False

    @property
    def running(self) -> bool:
        """Whether future ticks are scheduled."""
        return self._running

    # -- sampling ---------------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_now()
        self.n_ticks += 1
        if self.max_samples is not None and self.n_ticks >= self.max_samples:
            self._running = False
            return
        self.sim.schedule(self.interval_ns, self._tick,
                          priority=SAMPLE_PRIORITY)

    def sample_now(self) -> None:
        """Snapshot every (selected) gauge at the current sim time."""
        t = self.sim.now
        for gauge in self.registry.gauges():
            if self.select is not None and not self.select(gauge):
                continue
            key = (gauge.name, gauge.label_key)
            ts = self.series.get(key)
            if ts is None:
                ts = TimeSeries(gauge.name, gauge.labels)
                self.series[key] = ts
            ts.append(t, float(gauge.value))

    # -- queries ----------------------------------------------------------

    def get(self, name: str, component: Optional[str] = None) -> TimeSeries:
        """Fetch one series by metric name (+ component label)."""
        for ts in self.series.values():
            if ts.name != name:
                continue
            if component is not None and ts.component != component:
                continue
            return ts
        raise KeyError(f"no sampled series {name!r} component={component!r}")

    def all_series(self) -> list[TimeSeries]:
        """Every series, sorted by name then labels."""
        return sorted(self.series.values(),
                      key=lambda s: (s.name, tuple(sorted(s.labels.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Sampler interval={self.interval_ns}ns"
                f" ticks={self.n_ticks} series={len(self.series)}>")
