"""Metric primitives and the process-wide registry.

The paper's contribution is *measured overhead* — ≈125 ns of extra
receive-path code (Figure 7) and ≈1.3 µs per ejection/re-injection
(Figure 8) — so the reproduction needs first-class measurement
infrastructure, not five unconnected stat silos.  This module provides
the Prometheus-style primitives every component publishes through:

* :class:`Counter` — monotonically increasing total (packets sent,
  buffer flushes),
* :class:`Gauge` — instantaneous level (ITB buffer occupancy,
  send-queue depth),
* :class:`Histogram` — fixed-bucket distribution at nanosecond scale
  (packet latency).

All three may be *callback-backed* (``fn=``): the metric reads an
existing attribute on demand instead of requiring the owning component
to push updates.  This is how the pre-existing silos (``NicStats``
dataclass fields, ``ChannelUsage`` accumulators) register into the
registry without rewriting their hot paths.

Metrics are identified by ``(name, labels)``.  The conventional label
is ``component`` (``nic[host2]``, ``channel[1->3]``), matching the
component strings the structured trace already uses.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricsRegistry",
]

#: Default histogram bucket upper edges for nanosecond-scale latencies.
#: Spans the sub-µs firmware costs (Fig. 7's ~125 ns) through the
#: multi-µs end-to-end latencies of saturated load sweeps.
DEFAULT_NS_BUCKETS: tuple[float, ...] = (
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
    25_000.0, 50_000.0, 100_000.0, 250_000.0, 500_000.0,
    1_000_000.0, 2_500_000.0, 10_000_000.0,
)


class MetricError(ValueError):
    """Raised on metric misuse: kind collisions, negative counter
    increments, invalid bucket layouts."""


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named, labeled observable value.

    Parameters
    ----------
    name:
        Metric family name, e.g. ``"nic_packets_sent"``.
    labels:
        Label set identifying this instance within the family,
        conventionally at least ``{"component": ...}``.
    help:
        One-line description carried into exporter output.
    fn:
        Optional zero-argument callable; when given, :attr:`value`
        reads ``fn()`` instead of internal state (callback-backed
        metric wrapping a pre-existing counter attribute).
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels: dict[str, str] = dict(labels or {})
        self.help = help
        self.fn = fn
        self._value = 0.0
        #: Canonical (sorted) label tuple, the registry key.  Labels
        #: identify a metric and never change after registration, so
        #: the key is computed exactly once — the sampler reads it on
        #: every gauge every tick.
        self.label_key: tuple[tuple[str, str], ...] = _label_key(self.labels)

    @property
    def component(self) -> str:
        """The ``component`` label (empty string when unlabeled)."""
        return self.labels.get("component", "")

    @property
    def value(self) -> float:
        """Current value (reads the backing callable when present)."""
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}{self.labels}>"


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount


class Gauge(Metric):
    """An instantaneous level that can move both ways."""

    kind = "gauge"

    def set(self, value: float) -> None:
        """Set the level to ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the level by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the level by ``amount``."""
        self._value -= amount


class Histogram(Metric):
    """A fixed-bucket distribution (ns scale by default).

    Buckets are defined by ascending finite upper edges; an implicit
    ``+Inf`` bucket catches the overflow.  Per-bucket counts are stored
    non-cumulative; exporters produce the cumulative (Prometheus
    ``le=``) form.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_NS_BUCKETS,
    ) -> None:
        super().__init__(name, labels=labels, help=help)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(edges, edges[1:])):
            raise MetricError(
                f"histogram {name!r} buckets must strictly ascend: {edges}")
        if any(not math.isfinite(b) for b in edges):
            raise MetricError(
                f"histogram {name!r} buckets must be finite (+Inf implicit)")
        self.buckets = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        self.count += 1
        self.sum += value
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def value(self) -> float:
        """Histograms summarize as their observation count."""
        return float(self.count)

    @property
    def mean(self) -> float:
        """Mean of all observations (``nan`` when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_edge, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for edge, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((edge, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, linearly interpolated in-bucket.

        Prometheus ``histogram_quantile`` semantics: the rank is
        located in the cumulative distribution and interpolated
        between the bucket's edges (the first bucket interpolates from
        zero).  Observations above the last finite edge clamp to it.
        Returns ``nan`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        running = 0
        for i, edge in enumerate(self.buckets):
            prev_running = running
            running += self.bucket_counts[i]
            if running >= rank:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                if self.bucket_counts[i] == 0:  # pragma: no cover
                    return edge
                frac = (rank - prev_running) / self.bucket_counts[i]
                return lower + (edge - lower) * frac
        return self.buckets[-1]  # overflow bucket clamps to last edge


class MetricsRegistry:
    """The process-wide metric store.

    ``counter`` / ``gauge`` / ``histogram`` are *get-or-create*:
    re-registering the same ``(name, labels)`` returns the existing
    instance, so hot paths can call them unconditionally.  Registering
    the same identity as a different kind raises :class:`MetricError`
    (a label collision across kinds is always a bug).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], Metric] = {}
        # Keyed index by metric kind, in registration order: the
        # sampler walks every gauge on every tick, and filtering +
        # re-sorting the full store there was the dominant cost of an
        # instrumented run (measured via the engine profiler).
        self._by_kind: dict[str, list[Metric]] = {}

    # -- registration -----------------------------------------------------

    def _get_or_create(
        self,
        cls: type,
        name: str,
        component: Optional[str],
        help: str,
        labels: Optional[Mapping[str, str]],
        **kwargs: Any,
    ) -> Any:
        all_labels: dict[str, str] = dict(labels or {})
        if component is not None:
            all_labels["component"] = component
        key = (name, _label_key(all_labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} {all_labels} already registered as"
                    f" {existing.kind}, not {cls.kind}")
            return existing
        metric = cls(name, labels=all_labels, help=help, **kwargs)
        self._metrics[key] = metric
        self._by_kind.setdefault(metric.kind, []).append(metric)
        return metric

    def counter(
        self,
        name: str,
        component: Optional[str] = None,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        c = self._get_or_create(Counter, name, component, help, labels)
        if fn is not None and c.fn is None:
            c.fn = fn
        return c

    def gauge(
        self,
        name: str,
        component: Optional[str] = None,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        g = self._get_or_create(Gauge, name, component, help, labels)
        if fn is not None and g.fn is None:
            g.fn = fn
        return g

    def histogram(
        self,
        name: str,
        component: Optional[str] = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_NS_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram`.

        Re-registering with different ``buckets`` raises — two callers
        disagreeing about the bucket layout would corrupt the series.
        """
        h = self._get_or_create(
            Histogram, name, component, help, labels, buckets=buckets)
        if h.buckets != tuple(float(b) for b in buckets):
            raise MetricError(
                f"histogram {name!r} re-registered with different buckets")
        return h

    # -- lookup and iteration ---------------------------------------------

    def get(
        self,
        name: str,
        component: Optional[str] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Metric:
        """Fetch a registered metric; ``KeyError`` when absent."""
        all_labels: dict[str, str] = dict(labels or {})
        if component is not None:
            all_labels["component"] = component
        return self._metrics[(name, _label_key(all_labels))]

    def collect(self, kind: Optional[str] = None) -> list[Metric]:
        """All metrics (optionally one kind), sorted by name then labels."""
        if kind is None:
            out = list(self._metrics.values())
        else:
            out = list(self._by_kind.get(kind, []))
        return sorted(out, key=lambda m: (m.name, m.label_key))

    def gauges(self) -> Iterator[Gauge]:
        """Iterate registered gauges (the sampler's working set).

        Registration order — stable and deterministic, served straight
        from the kind index so the per-tick cost is the iteration
        itself (sorted presentation is :meth:`collect`'s job).
        """
        return iter(self._by_kind.get("gauge", []))  # type: ignore[return-value]

    def names(self) -> list[str]:
        """Sorted distinct metric family names."""
        return sorted({name for name, _ in self._metrics})

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return any(n == name for n, _ in self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricsRegistry {len(self)} metrics>"
