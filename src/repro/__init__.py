"""repro — In-Transit Buffers on Myrinet GM, reproduced in simulation.

A production-quality reproduction of Coll, Flich, Malumbres, López,
Duato & Mora, *"A First Implementation of In-Transit Buffers on
Myrinet GM Software"* (IPPS 2001), built on a discrete-event
simulation of the full stack: LANai NIC, GM/MCP firmware (original
and ITB-modified), wormhole switches with Stop&Go flow control,
up*/down* and ITB routing, and the GM host library.

Start with :func:`repro.core.build_network`; the experiment harness
lives in :mod:`repro.harness`; ``python -m repro --help`` lists the
CLI.  See README.md / DESIGN.md / EXPERIMENTS.md at the repository
root.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
