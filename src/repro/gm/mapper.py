"""The network mapper.

The Myrinet mapper explores the fabric, computes routes among all
hosts, and stores them in each NIC's SRAM.  The paper modifies it to
"calculate paths with the proposed mechanism" — i.e. to emit ITB
routes.  The exploration phase is not timing-relevant to any
experiment, so it runs at construction time; what matters (and what
this module provides) is the *routing policy* and the stamped tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro.nic.lanai import Nic
from repro.routing.itb import ItbRouter
from repro.routing.routes import ItbRoute, RouteError, SourceRoute
from repro.routing.spanning_tree import UpDownOrientation, build_orientation
from repro.routing.tables import build_route_tables
from repro.routing.updown import UpDownRouter
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.routing.cache import RouteCache

__all__ = ["run_mapper"]


def run_mapper(
    topo: Topology,
    nics: Mapping[int, Nic],
    routing: str = "updown",
    orientation: Optional[UpDownOrientation] = None,
    overrides: Optional[Mapping[tuple[int, int],
                                Union[SourceRoute, ItbRoute]]] = None,
    root: Optional[int] = None,
    cache: Optional["RouteCache"] = None,
) -> UpDownOrientation:
    """Compute and stamp route tables into every NIC.

    Parameters
    ----------
    routing:
        ``"updown"`` (stock mapper) or ``"itb"`` (modified mapper).
    overrides:
        Hand-built routes for specific (src, dst) pairs — the paper's
        evaluation uses carefully constructed paths rather than mapper
        output, so the harness overrides exactly those pairs.
    root:
        Optional spanning-tree root (defaults to min-eccentricity).
    cache:
        Optional :class:`~repro.routing.cache.RouteCache`; when given
        (and no explicit ``orientation`` is forced) the all-pairs
        route computation is served from — and recorded into — the
        cache, so repeated builds of structurally identical networks
        stop recomputing the spanning tree and routes.

    Returns the orientation used (shared by both routings so they agree
    on link directions).
    """
    if cache is not None and orientation is None:
        orientation, tables = cache.tables_for(topo, routing, root=root)
        if overrides:
            for (s, d), route in overrides.items():
                tables[s].install(d, route)
        for host in sorted(nics):
            nics[host].route_table = tables[host]
        return orientation

    if orientation is None:
        orientation = build_orientation(topo, root=root)
    if routing == "updown":
        router = UpDownRouter(topo, orientation)
    elif routing == "itb":
        router = ItbRouter(topo, orientation)
    else:
        raise RouteError(f"unknown routing policy {routing!r}")

    pairs: dict[tuple[int, int], ItbRoute] = {}
    if overrides:
        for (s, d), route in overrides.items():
            if isinstance(route, SourceRoute):
                route = ItbRoute((route,))
            pairs[(s, d)] = route

    hosts = sorted(nics)
    tables = build_route_tables(hosts, router, pairs=pairs)
    for host, table in tables.items():
        nics[host].route_table = table
    return orientation
