"""The network mapper.

The Myrinet mapper explores the fabric, computes routes among all
hosts, and stores them in each NIC's SRAM.  The paper modifies it to
"calculate paths with the proposed mechanism" — i.e. to emit ITB
routes.  The exploration phase is not timing-relevant to any
experiment, so it runs at construction time; what matters (and what
this module provides) is the *routing policy* and the stamped tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro.nic.lanai import Nic
from repro.routing.itb import HostPolicy, ItbRouter
from repro.routing.minimal import MinimalRouter
from repro.routing.routes import ItbRoute, RouteError, SourceRoute
from repro.routing.selectors import Selector
from repro.routing.spanning_tree import UpDownOrientation, build_orientation
from repro.routing.tables import build_route_tables
from repro.routing.updown import UpDownRouter
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork
    from repro.routing.cache import RouteCache

__all__ = ["ItbReselector", "remap_tables", "run_mapper"]


def run_mapper(
    topo: Topology,
    nics: Mapping[int, Nic],
    routing: str = "updown",
    orientation: Optional[UpDownOrientation] = None,
    overrides: Optional[Mapping[tuple[int, int],
                                Union[SourceRoute, ItbRoute]]] = None,
    root: Optional[int] = None,
    cache: Optional["RouteCache"] = None,
    host_policy: Optional[HostPolicy] = None,
) -> UpDownOrientation:
    """Compute and stamp route tables into every NIC.

    Parameters
    ----------
    routing:
        ``"updown"`` (stock mapper), ``"itb"`` (modified mapper), or
        ``"minimal"`` (unrestricted shortest paths — only safe with
        escape lanes or on acyclic fabrics).
    overrides:
        Hand-built routes for specific (src, dst) pairs — the paper's
        evaluation uses carefully constructed paths rather than mapper
        output, so the harness overrides exactly those pairs.
    root:
        Optional spanning-tree root (defaults to min-eccentricity).
    cache:
        Optional :class:`~repro.routing.cache.RouteCache`; when given
        (and no explicit ``orientation`` is forced) the all-pairs
        route computation is served from — and recorded into — the
        cache, so repeated builds of structurally identical networks
        stop recomputing the spanning tree and routes.
    host_policy:
        Optional in-transit host chooser for the ITB router (a
        :class:`~repro.routing.selectors.Selector` or any
        :data:`~repro.routing.itb.HostPolicy`).  A non-default policy
        makes the tables policy-dependent, so the shared route cache
        is bypassed for this build — cache entries always hold the
        static placement (the zero-load oracle every policy must
        reproduce at occupancy 0).

    Returns the orientation used (shared by both routings so they agree
    on link directions).
    """
    if host_policy is not None and routing == "itb":
        cache = None
    if cache is not None and orientation is None:
        orientation, tables = cache.tables_for(topo, routing, root=root)
        if overrides:
            for (s, d), route in overrides.items():
                tables[s].install(d, route)
        for host in sorted(nics):
            nics[host].route_table = tables[host]
        return orientation

    if orientation is None:
        orientation = build_orientation(topo, root=root)
    if routing == "updown":
        router = UpDownRouter(topo, orientation)
    elif routing == "itb":
        if host_policy is not None:
            router = ItbRouter(topo, orientation, host_policy=host_policy)
        else:
            router = ItbRouter(topo, orientation)
    elif routing == "minimal":
        router = MinimalRouter(topo, orientation)
    else:
        raise RouteError(f"unknown routing policy {routing!r}")

    pairs: dict[tuple[int, int], ItbRoute] = {}
    if overrides:
        for (s, d), route in overrides.items():
            if isinstance(route, SourceRoute):
                route = ItbRoute((route,))
            pairs[(s, d)] = route

    hosts = sorted(nics)
    tables = build_route_tables(hosts, router, pairs=pairs)
    for host, table in tables.items():
        nics[host].route_table = table
    return orientation


def remap_tables(
    net: "BuiltNetwork",
    down_links: set[int],
    dead_hosts: Optional[set[int]] = None,
    host_policy: Optional[HostPolicy] = None,
) -> int:
    """Re-route a degraded network in place (fault recovery).

    Models the outcome of the mapper's re-discovery pass after a
    fault: routes are recomputed on a copy of the topology with the
    down cables removed and stamped over the live NIC route tables of
    every still-reachable host.  An ITB route whose in-transit host
    died is thereby re-split through an alternate host on the same
    violation switch (the degraded ``hosts_on`` no longer offers the
    dead one).  Pairs that the degraded fabric cannot route — the
    destination is unreachable, or the switch graph is disconnected —
    keep their stale route: packets toward them die on the wire and
    the sender's retransmission budget degrades the send gracefully.

    ``host_policy`` overrides the in-transit host chooser the degraded
    ITB router uses.  When omitted and an :class:`ItbReselector` is
    attached to the network, the remap routes through its selector —
    a fault remap *is* a forced reselection: the same selection seam,
    the same counters, the same trace spans.

    Returns the number of (src, dst) pairs whose stamped route
    actually changed.
    """
    dead_hosts = dead_hosts or set()
    topo = net.topo
    degraded = topo.without_links(down_links) if down_links else topo
    alive = [
        h for h in sorted(net.nics)
        if h not in dead_hosts
        and topo.host_link(h).link_id not in down_links
    ]
    routing = getattr(net.config.routing, "value", net.config.routing)
    reselector: Optional["ItbReselector"] = None
    if routing == "itb":
        reselector = net.fabric.meta.get("itb_reselector")
        if host_policy is None and reselector is not None:
            host_policy = reselector.selector
    if reselector is not None:
        reselector.runs += 1
        reselector.forced += 1
        if isinstance(host_policy, Selector):
            host_policy.begin_epoch()
    try:
        orientation = build_orientation(degraded, root=net.config.root)
    except RouteError:
        # The configured root lost every cable: let the mapper elect a
        # new one, as the real re-discovery would.
        try:
            orientation = build_orientation(degraded)
        except RouteError:
            return 0  # no usable fabric at all; keep every stale route
    if routing == "itb":
        if host_policy is not None:
            router = ItbRouter(degraded, orientation,
                               host_policy=host_policy)
        else:
            router = ItbRouter(degraded, orientation)
    else:
        router = UpDownRouter(degraded, orientation)
    changed = 0
    for src in alive:
        table = net.nics[src].route_table
        if table is None:
            continue
        # One batched tree per surviving source; unroutable pairs are
        # skipped inside routes_from (strict=False) — same keep-stale
        # semantics as the old per-pair try/except loop.
        try:
            routes = router.routes_from(
                src, dests=[d for d in alive if d != src], strict=False
            )
        except (RouteError, KeyError):
            continue  # source itself unroutable: keep every stale route
        for dst, route in routes.items():
            old = table.entries.get(dst)
            if route == old:
                continue
            table.install(dst, route)
            changed += 1
            if reselector is not None:
                reselector.note_change(src, dst, old, route)
    if reselector is not None:
        reselector.pairs_changed += changed
    return changed


class ItbReselector:
    """Congestion-driven reselection of in-transit hosts on a live net.

    Closes the loop the paper leaves open: ITB placement is computed
    once at route-build time, but under load the chosen in-transit
    hosts become hotspots (its own Figure 8 data).  The reselector
    periodically re-runs in-transit host selection over the *already
    stamped* route tables — same candidate splits, same
    :class:`~repro.routing.itb.ItbRouter` plan memo — with a pluggable
    :class:`~repro.routing.selectors.Selector` fed by a live
    congestion view, and re-stamps only the pairs whose choice moved.

    Fault integration: a fault remap (:func:`remap_tables`) resolves
    this reselector from ``fabric.meta`` and routes through its
    selector, so PR-5's fault recovery is literally a *forced
    reselection* — and while faults are outstanding the periodic pass
    delegates to the same degraded-topology remap instead of
    reinstalling stale full-fabric routes over it.

    Telemetry: ``runs`` / ``forced`` / ``pairs_changed`` plus the
    selector's ``decisions`` / ``engaged`` feed the ``itb_reselect_*``
    counters (:func:`repro.obs.attach.instrument_network`), and every
    placement change emits an ``itb_select`` trace span when span
    tracing is on.  With a zero (or absent) congestion view every
    policy reproduces the static split, nothing changes, no spans are
    emitted — the zero-load oracle contract.
    """

    def __init__(
        self,
        net: "BuiltNetwork",
        selector: Selector,
        interval_ns: Optional[float] = None,
    ) -> None:
        self.net = net
        self.selector = selector
        self.runs = 0
        self.forced = 0
        self.pairs_changed = 0
        # Full-fabric router sharing the build orientation; its plan
        # memo makes steady-state reselection pure table lookups plus
        # one selector call per ITB cut.
        self._router = ItbRouter(net.topo, net.orientation,
                                 host_policy=selector)
        self._warm_plans_from_tables()
        net.fabric.meta["itb_reselector"] = self
        if interval_ns is not None:
            self.start(interval_ns)

    def _warm_plans_from_tables(self) -> None:
        """Rebuild the router's pair-plan memo from the stamped routes.

        An ITB route's segments concatenate back into exactly the
        ``(switch_path, splits)`` plan the build-time router chose
        (each segment re-enters at its violation switch), so the
        reselector never re-runs path enumeration or the legalization
        Dijkstra for pairs the mapper already routed — reselection is
        table lookups plus one selector call per cut.  Served off the
        shared route-cache entry when the network was built through
        one (the tables *are* that entry's routes).
        """
        topo = self.net.topo
        plans = self._router._plans
        for src in sorted(self.net.nics):
            table = self.net.nics[src].route_table
            if table is None:
                continue
            s_src = topo.switch_of(src)
            for dst in table.destinations():
                route = table.entries[dst]
                if len(route.segments) <= 1:
                    continue
                key = (s_src, topo.switch_of(dst))
                if key in plans:
                    continue
                path = list(route.segments[0].switch_path)
                splits: list[int] = []
                for seg in route.segments[1:]:
                    splits.append(len(path) - 1)
                    path.extend(seg.switch_path[1:])
                plans[key] = (path, splits)

    @property
    def decisions(self) -> int:
        """Total selector invocations (one per ITB cut considered)."""
        return self.selector.decisions

    @property
    def engaged(self) -> int:
        """Decisions where live congestion diverted the static pick."""
        return self.selector.engaged

    def start(self, interval_ns: float) -> None:
        """Run :meth:`reselect` every ``interval_ns`` of sim time."""
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        from repro.sim.engine import Timeout

        def loop():
            while True:
                yield Timeout(interval_ns)
                self.reselect()

        self.net.sim.process(loop(), name="itb-reselect")

    def reselect(self) -> int:
        """One reselection pass; returns the number of pairs restamped.

        Pairs whose route carries no in-transit host are untouched
        (selection cannot change a single-segment route); pairs whose
        selector choice equals the stamped route are not reinstalled,
        so a zero-load pass is a pure no-op.
        """
        injector = self.net.fabric.meta.get("fault_injector")
        if injector is not None and (injector.down_links
                                     or injector.dead_hosts):
            # Outstanding faults: reselect on the degraded fabric via
            # the shared remap path (counts as a forced run there).
            return remap_tables(self.net, set(injector.down_links),
                                set(injector.dead_hosts))
        self.runs += 1
        self.selector.begin_epoch()
        topo = self.net.topo
        changed = 0
        for src in sorted(self.net.nics):
            table = self.net.nics[src].route_table
            if table is None:
                continue
            s_src = topo.switch_of(src)
            for dst in table.destinations():
                current = table.entries[dst]
                if len(current.segments) <= 1:
                    continue
                plan = self._router._pair_plan(s_src, topo.switch_of(dst))
                if plan is None or not plan[1]:
                    continue
                route = self._router._build(src, dst, plan[0], plan[1])
                if route == current:
                    continue
                table.install(dst, route)
                changed += 1
                self.note_change(src, dst, current, route)
        self.pairs_changed += changed
        return changed

    def note_change(self, src: int, dst: int, old, new) -> None:
        """Record one placement change as an ``itb_select`` trace span."""
        tracer = getattr(self.net.fabric, "tracer", None)
        if tracer is None:
            return
        now = self.net.sim.now
        span = tracer.begin(
            "itb_select", now, component=f"selector[{self.selector.name}]",
            src=src, dst=dst, epoch=self.selector.epoch,
            old=list(old.itb_hosts) if old is not None else [],
            new=list(new.itb_hosts),
        )
        span.close(now, "ok")
