"""The network mapper.

The Myrinet mapper explores the fabric, computes routes among all
hosts, and stores them in each NIC's SRAM.  The paper modifies it to
"calculate paths with the proposed mechanism" — i.e. to emit ITB
routes.  The exploration phase is not timing-relevant to any
experiment, so it runs at construction time; what matters (and what
this module provides) is the *routing policy* and the stamped tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro.nic.lanai import Nic
from repro.routing.itb import ItbRouter
from repro.routing.minimal import MinimalRouter
from repro.routing.routes import ItbRoute, RouteError, SourceRoute
from repro.routing.spanning_tree import UpDownOrientation, build_orientation
from repro.routing.tables import build_route_tables
from repro.routing.updown import UpDownRouter
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork
    from repro.routing.cache import RouteCache

__all__ = ["remap_tables", "run_mapper"]


def run_mapper(
    topo: Topology,
    nics: Mapping[int, Nic],
    routing: str = "updown",
    orientation: Optional[UpDownOrientation] = None,
    overrides: Optional[Mapping[tuple[int, int],
                                Union[SourceRoute, ItbRoute]]] = None,
    root: Optional[int] = None,
    cache: Optional["RouteCache"] = None,
) -> UpDownOrientation:
    """Compute and stamp route tables into every NIC.

    Parameters
    ----------
    routing:
        ``"updown"`` (stock mapper), ``"itb"`` (modified mapper), or
        ``"minimal"`` (unrestricted shortest paths — only safe with
        escape lanes or on acyclic fabrics).
    overrides:
        Hand-built routes for specific (src, dst) pairs — the paper's
        evaluation uses carefully constructed paths rather than mapper
        output, so the harness overrides exactly those pairs.
    root:
        Optional spanning-tree root (defaults to min-eccentricity).
    cache:
        Optional :class:`~repro.routing.cache.RouteCache`; when given
        (and no explicit ``orientation`` is forced) the all-pairs
        route computation is served from — and recorded into — the
        cache, so repeated builds of structurally identical networks
        stop recomputing the spanning tree and routes.

    Returns the orientation used (shared by both routings so they agree
    on link directions).
    """
    if cache is not None and orientation is None:
        orientation, tables = cache.tables_for(topo, routing, root=root)
        if overrides:
            for (s, d), route in overrides.items():
                tables[s].install(d, route)
        for host in sorted(nics):
            nics[host].route_table = tables[host]
        return orientation

    if orientation is None:
        orientation = build_orientation(topo, root=root)
    if routing == "updown":
        router = UpDownRouter(topo, orientation)
    elif routing == "itb":
        router = ItbRouter(topo, orientation)
    elif routing == "minimal":
        router = MinimalRouter(topo, orientation)
    else:
        raise RouteError(f"unknown routing policy {routing!r}")

    pairs: dict[tuple[int, int], ItbRoute] = {}
    if overrides:
        for (s, d), route in overrides.items():
            if isinstance(route, SourceRoute):
                route = ItbRoute((route,))
            pairs[(s, d)] = route

    hosts = sorted(nics)
    tables = build_route_tables(hosts, router, pairs=pairs)
    for host, table in tables.items():
        nics[host].route_table = table
    return orientation


def remap_tables(
    net: "BuiltNetwork",
    down_links: set[int],
    dead_hosts: Optional[set[int]] = None,
) -> int:
    """Re-route a degraded network in place (fault recovery).

    Models the outcome of the mapper's re-discovery pass after a
    fault: routes are recomputed on a copy of the topology with the
    down cables removed and stamped over the live NIC route tables of
    every still-reachable host.  An ITB route whose in-transit host
    died is thereby re-split through an alternate host on the same
    violation switch (the degraded ``hosts_on`` no longer offers the
    dead one).  Pairs that the degraded fabric cannot route — the
    destination is unreachable, or the switch graph is disconnected —
    keep their stale route: packets toward them die on the wire and
    the sender's retransmission budget degrades the send gracefully.

    Returns the number of (src, dst) pairs whose route was updated.
    """
    dead_hosts = dead_hosts or set()
    topo = net.topo
    degraded = topo.without_links(down_links) if down_links else topo
    alive = [
        h for h in sorted(net.nics)
        if h not in dead_hosts
        and topo.host_link(h).link_id not in down_links
    ]
    routing = getattr(net.config.routing, "value", net.config.routing)
    try:
        orientation = build_orientation(degraded, root=net.config.root)
    except RouteError:
        # The configured root lost every cable: let the mapper elect a
        # new one, as the real re-discovery would.
        try:
            orientation = build_orientation(degraded)
        except RouteError:
            return 0  # no usable fabric at all; keep every stale route
    if routing == "itb":
        router = ItbRouter(degraded, orientation)
    else:
        router = UpDownRouter(degraded, orientation)
    updated = 0
    for src in alive:
        table = net.nics[src].route_table
        if table is None:
            continue
        # One batched tree per surviving source; unroutable pairs are
        # skipped inside routes_from (strict=False) — same keep-stale
        # semantics as the old per-pair try/except loop.
        try:
            routes = router.routes_from(
                src, dests=[d for d in alive if d != src], strict=False
            )
        except (RouteError, KeyError):
            continue  # source itself unroutable: keep every stale route
        for dst, route in routes.items():
            table.install(dst, route)
            updated += 1
    return updated
