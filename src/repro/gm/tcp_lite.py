"""TCP-lite: a reliable byte stream over IP-over-GM.

Completes the paper's Section 3 stack ("MPI, VIA, and TCP/IP are
layered efficiently over GM"): a deliberately small TCP-shaped
transport over the best-effort :class:`~repro.gm.ip.IpEndpoint` —
enough protocol to make the layering costs measurable against GM's
native reliability:

* three-way handshake (SYN / SYN-ACK / ACK) before data,
* byte-sequence numbers, cumulative ACKs, a fixed congestion-free
  send window, retransmission on timeout,
* FIN teardown.

Segments are IP datagrams whose TCP header rides in the GM metadata
side-channel (consistent with :mod:`repro.gm.ip`'s modeling choice:
wire *lengths* are exact — every segment pays 20 IP + 20 TCP header
bytes — while field layout stays unserialized).

This is a modeling transport, not a TCP implementation: no congestion
control, no SACK, single connection per (endpoint pair, port).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.gm.host import GmHost
from repro.mcp.firmware import TransitPacket
from repro.mcp.packet_format import TYPE_IP
from repro.sim.engine import Event, Timeout

__all__ = ["TcpLiteEndpoint", "TcpStats"]

#: Max payload per segment: GM MTU minus IP (20) and TCP (20) headers.
MSS = 4096 - 40
_HEADERS = 40


@dataclass
class TcpStats:
    """Per-endpoint protocol counters."""

    segments_sent: int = 0
    segments_received: int = 0
    retransmissions: int = 0
    bytes_delivered: int = 0
    handshakes: int = 0


@dataclass
class _Connection:
    peer: int
    established: bool = False
    # send side
    snd_next: int = 0          # next byte sequence to send
    snd_una: int = 0           # oldest unacknowledged byte
    inflight: dict = field(default_factory=dict)  # seq -> length
    established_ev: Optional[Event] = None
    # receive side
    rcv_next: int = 0
    out_of_order: dict = field(default_factory=dict)  # seq -> length


class TcpLiteEndpoint:
    """One host's TCP-lite stack.

    Parameters
    ----------
    gm_host:
        The GM endpoint; TCP segments travel as ``TYPE_IP`` packets.
    window_bytes:
        Fixed send window (flow control stand-in).
    rto_ns:
        Retransmission timeout.
    """

    def __init__(
        self,
        gm_host: GmHost,
        window_bytes: int = 4 * MSS,
        rto_ns: float = 2_000_000.0,
        max_retries: int = 32,
    ) -> None:
        self.gm_host = gm_host
        self.sim = gm_host.sim
        self.host = gm_host.host
        self.window_bytes = window_bytes
        self.rto_ns = rto_ns
        self.max_retries = max_retries
        self.stats = TcpStats()
        self._connections: dict[int, _Connection] = {}
        self._stream_sinks: list[Callable[[int, int], None]] = []
        fw = gm_host.nic.firmware
        previous = gm_host.nic.deliver_up

        def deliver_up(tp: TransitPacket) -> None:
            if tp.ptype == TYPE_IP and tp.gm.get("kind") == "tcp":
                self._on_segment(tp)
            elif previous is not None:
                previous(tp)

        gm_host.nic.deliver_up = deliver_up

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def on_stream_data(self, sink: Callable[[int, int], None]) -> None:
        """Register ``sink(peer_host, n_bytes)`` for in-order data."""
        self._stream_sinks.append(sink)

    def connect(self, peer: int) -> Event:
        """Open a connection; event fires when established."""
        conn = self._conn(peer)
        if conn.established:
            ev = Event(self.sim, name="tcp-established")
            ev.succeed()
            return ev
        conn.established_ev = Event(self.sim, name="tcp-established")
        self._send_ctrl(peer, "syn")
        return conn.established_ev

    def send_stream(self, peer: int, n_bytes: int) -> Event:
        """Stream ``n_bytes`` to an established peer.

        Returns an event firing once every byte is acknowledged.
        Respects the fixed window: at most ``window_bytes`` unacked.
        """
        conn = self._conn(peer)
        if not conn.established:
            raise RuntimeError(f"no established connection to {peer}")
        done = Event(self.sim, name="tcp-stream-done")
        self.sim.process(self._stream_proc(conn, n_bytes, done),
                         name=f"tcp-tx[{self.host}]")
        return done

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _conn(self, peer: int) -> _Connection:
        return self._connections.setdefault(peer, _Connection(peer=peer))

    def _send_ctrl(self, peer: int, flag: str, ack: int = 0) -> None:
        self.stats.segments_sent += 1
        self.gm_host.nic.firmware.host_send(
            dst=peer, payload_len=_HEADERS, ptype=TYPE_IP,
            gm={"kind": "tcp", "flag": flag, "ack": ack, "last": True},
        )

    def _send_data(self, conn: _Connection, seq: int, length: int,
                   retries: int = 0) -> None:
        self.stats.segments_sent += 1
        self.gm_host.nic.firmware.host_send(
            dst=conn.peer, payload_len=length + _HEADERS, ptype=TYPE_IP,
            gm={"kind": "tcp", "flag": "data", "seq": seq,
                "len": length, "last": True},
        )
        conn.inflight[seq] = length

        def maybe_retransmit() -> None:
            if seq not in conn.inflight or seq < conn.snd_una:
                return
            if retries >= self.max_retries:
                raise RuntimeError(
                    f"tcp-lite: seq {seq} to {conn.peer} exceeded retries")
            self.stats.retransmissions += 1
            self._send_data(conn, seq, length, retries + 1)

        self.sim.schedule(self.rto_ns, maybe_retransmit)

    def _stream_proc(self, conn: _Connection, n_bytes: int, done: Event):
        end_seq = conn.snd_next + n_bytes
        while conn.snd_next < end_seq or conn.snd_una < end_seq:
            window_free = self.window_bytes - (conn.snd_next - conn.snd_una)
            if conn.snd_next < end_seq and window_free >= MSS:
                chunk = min(MSS, end_seq - conn.snd_next)
                self._send_data(conn, conn.snd_next, chunk)
                conn.snd_next += chunk
            else:
                yield Timeout(10_000.0)  # wait for acks to open window
        done.succeed()

    def _on_segment(self, tp: TransitPacket) -> None:
        self.stats.segments_received += 1
        flag = tp.gm.get("flag")
        peer = tp.src
        conn = self._conn(peer)
        if flag == "syn":
            self._send_ctrl(peer, "syn-ack")
        elif flag == "syn-ack":
            conn.established = True
            self.stats.handshakes += 1
            self._send_ctrl(peer, "ack-of-syn")
            if conn.established_ev and not conn.established_ev.triggered:
                conn.established_ev.succeed()
        elif flag == "ack-of-syn":
            conn.established = True
            self.stats.handshakes += 1
        elif flag == "data":
            self._on_data(conn, tp)
        elif flag == "ack":
            self._on_ack(conn, tp.gm.get("ack", 0))
        elif flag == "fin":
            conn.established = False
            self._send_ctrl(peer, "ack", ack=conn.rcv_next)

    def _on_data(self, conn: _Connection, tp: TransitPacket) -> None:
        seq = tp.gm["seq"]
        length = tp.gm["len"]
        if seq == conn.rcv_next:
            conn.rcv_next += length
            self.stats.bytes_delivered += length
            delivered = length
            # Drain any buffered out-of-order successors.
            while conn.rcv_next in conn.out_of_order:
                step = conn.out_of_order.pop(conn.rcv_next)
                conn.rcv_next += step
                self.stats.bytes_delivered += step
                delivered += step
            for sink in self._stream_sinks:
                sink(conn.peer, delivered)
        elif seq > conn.rcv_next:
            conn.out_of_order[seq] = length
        # else: duplicate of already-delivered data — just re-ack.
        self._send_ctrl(conn.peer, "ack", ack=conn.rcv_next)

    def _on_ack(self, conn: _Connection, ack: int) -> None:
        if ack > conn.snd_una:
            conn.snd_una = ack
        for seq in [s for s in conn.inflight if s + conn.inflight[s] <= ack]:
            del conn.inflight[seq]

    def close(self, peer: int) -> None:
        """Send FIN and mark the connection closed locally."""
        conn = self._conn(peer)
        if conn.established:
            self._send_ctrl(peer, "fin")
            conn.established = False
