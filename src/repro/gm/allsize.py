"""The ``gm_allsize`` latency test.

Reproduces the measurement protocol of the paper's Section 5: a
ping-pong between two hosts, averaging the half-round-trip latency
over N iterations per message size.  The pong direction may use a
different route than the ping direction — this is how the Figure 8
experiment arranges for "only one ITB in the round trip".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.gm.host import GmHost
from repro.routing.routes import ItbRoute
from repro.sim.engine import Event, Simulator

__all__ = ["PingPongResult", "allsize_sweep", "ping_pong"]


@dataclass
class PingPongResult:
    """Half-round-trip statistics for one message size."""

    size: int
    iterations: int
    half_rtt_ns: np.ndarray  # one sample per iteration

    @property
    def mean_ns(self) -> float:
        return float(np.mean(self.half_rtt_ns))

    @property
    def min_ns(self) -> float:
        return float(np.min(self.half_rtt_ns))

    @property
    def max_ns(self) -> float:
        return float(np.max(self.half_rtt_ns))

    @property
    def std_ns(self) -> float:
        return float(np.std(self.half_rtt_ns))

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0


def ping_pong(
    sim: Simulator,
    host_a: GmHost,
    host_b: GmHost,
    size: int,
    iterations: int = 100,
    warmup: int = 2,
    route_ab: Optional[ItbRoute] = None,
    route_ba: Optional[ItbRoute] = None,
) -> PingPongResult:
    """Run one ping-pong series and return half-RTT samples.

    ``route_ab`` / ``route_ba`` override the NIC route tables for the
    two directions (hand-built experiment paths).  The simulator is
    run in place; reuse one simulator for a whole sweep.
    """
    samples: list[float] = []
    finished = Event(sim, name="pingpong-finished")

    def pinger():
        for it in range(warmup + iterations):
            t0 = sim.now
            host_a.send(host_b.host, size, tag=it, route=route_ab)
            msg = yield host_a.receive()
            assert msg.src == host_b.host, "pong from unexpected host"
            if it >= warmup:
                samples.append((sim.now - t0) / 2.0)
        finished.succeed()

    def ponger():
        for _ in range(warmup + iterations):
            msg = yield host_b.receive()
            host_b.send(host_a.host, size, tag=msg.tag, route=route_ba)

    sim.process(ponger(), name="ponger")
    sim.process(pinger(), name="pinger")
    sim.run_until_event(finished)
    return PingPongResult(
        size=size, iterations=iterations, half_rtt_ns=np.asarray(samples)
    )


def allsize_sweep(
    make_context,
    sizes: Sequence[int],
    iterations: int = 100,
    warmup: int = 2,
) -> list[PingPongResult]:
    """Sweep message sizes, building a fresh network per size.

    ``make_context(size)`` must return a tuple
    ``(sim, host_a, host_b, route_ab, route_ba)``; building fresh
    state per size keeps runs independent, like separate
    ``gm_allsize`` invocations.
    """
    results = []
    for size in sizes:
        sim, a, b, route_ab, route_ba = make_context(size)
        results.append(
            ping_pong(sim, a, b, size, iterations=iterations, warmup=warmup,
                      route_ab=route_ab, route_ba=route_ba)
        )
    return results
