"""Network discovery: the mapping phase of the GM mapper.

GM's mapper does not read a config file — it *explores*: a mapper host
emits scout packets with explicit source routes, growing its map of
the fabric one port at a time from the echoes it gets back.  The
paper's Section 4 notes the mapper must be modified to emit ITB
routes; this module implements the exploration that precedes that
route computation, running real ``TYPE_MAPPING`` packets through the
simulated fabric.

Protocol (faithful in spirit, simplified in packet count):

1. The mapper knows only its own NIC.  It probes route ``[]`` — the
   node its cable reaches — by sending a scout that the *simulation
   harness* answers with the identity of the reached node (on real
   Myrinet the reached NIC echoes the scout; switches are inferred
   because they do NOT echo — a non-echoing hop means a switch port).
2. For every discovered switch, the mapper probes each of its ports
   with a scout routed ``known_route + [port]``.  Echo -> a host NIC;
   identified silence -> another switch (probed recursively); dead
   port -> no cable.
3. The result is a reconstructed :class:`~repro.topology.graph.Topology`
   -equivalent map the route computation then runs on.

Because scouts traverse the real simulated fabric, discovery costs
simulated time and exercises switches, flow control, and the NIC
receive path — and tests can verify the reconstructed map is
isomorphic to the physical truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork
    from repro.topology.graph import Topology
from repro.mcp.packet_format import TYPE_MAPPING
from repro.routing.routes import ItbRoute, SourceRoute

__all__ = ["DiscoveredMap", "DiscoveryError", "discover_network"]


class DiscoveryError(RuntimeError):
    """Raised when exploration cannot complete (e.g. probe budget)."""


@dataclass
class DiscoveredMap:
    """The mapper's reconstructed view of the fabric.

    Node names are the mapper's own labels: ``"sw<k>"`` in discovery
    order for switches, real host ids for NICs (hosts identify
    themselves in their echo).
    """

    mapper_host: int
    #: switch label -> {port: ("host", host_id) | ("switch", label) | None}
    switch_ports: dict[str, dict[int, Optional[tuple]]] = field(
        default_factory=dict)
    #: host id -> (switch label, port) where its NIC is cabled
    host_attach: dict[int, tuple[str, int]] = field(default_factory=dict)
    #: number of scout packets sent
    probes_sent: int = 0
    #: simulated time the mapping phase took (ns)
    elapsed_ns: float = 0.0

    @property
    def n_switches(self) -> int:
        return len(self.switch_ports)

    @property
    def hosts(self) -> list[int]:
        return sorted(self.host_attach)

    def degree(self, label: str) -> int:
        """Cabled fabric ports of a discovered switch."""
        return sum(
            1 for v in self.switch_ports[label].values()
            if v is not None and v[0] == "switch"
        )

    def switch_adjacency(self) -> dict[str, set[str]]:
        """Discovered switch-to-switch adjacency by mapper label."""
        adj: dict[str, set[str]] = {l: set() for l in self.switch_ports}
        for label, ports in self.switch_ports.items():
            for v in ports.values():
                if v is not None and v[0] == "switch":
                    adj[label].add(v[1])
        return adj


def discover_network(
    net: "BuiltNetwork",
    mapper_host: int,
    max_probes: int = 10_000,
    probe_payload: int = 16,
    topo: Optional["Topology"] = None,
) -> DiscoveredMap:
    """Explore the fabric from ``mapper_host`` with scout packets.

    Every probe is a real packet pushed through the simulated network
    (so mapping takes simulated time and exercises the data path); the
    identity oracle — "which node did this route reach, and is it a
    switch or a NIC?" — is answered from topology ground truth, which
    stands in for the echo/silence protocol of the real mapper.

    ``topo`` overrides the ground-truth view: after a fault, passing
    the degraded topology (``net.topo.without_links(...)``) models the
    re-discovery pass — ports whose cable died read as dead, so no
    scout is routed into the failed region (on real Myrinet the scout
    would simply never echo).

    Returns the reconstructed map.  Raises :class:`DiscoveryError`
    when the probe budget is exhausted (disconnected or runaway
    exploration).
    """
    topo = net.topo if topo is None else topo
    sim = net.sim
    result = DiscoveredMap(mapper_host=mapper_host)
    t_start = sim.now

    def reach(route_ports: list[int]) -> Optional[int]:
        """Ground-truth resolution of a probe route (the echo oracle)."""
        try:
            return topo.walk_route(mapper_host, route_ports)
        except Exception:
            return None

    def send_probe(route_ports: list[int], target_host: int) -> None:
        """Push a real scout packet along a discovered host route."""
        switch_path = []
        current = topo.switch_of(mapper_host)
        for port in route_ports[:-1]:
            switch_path.append(current)
            link = topo.link_at(current, port)
            current, _ = link.far_end(current, port)
        switch_path.append(current)
        seg = SourceRoute(src=mapper_host, dst=target_host,
                          ports=tuple(route_ports),
                          switch_path=tuple(switch_path))
        done = sim.event("probe")
        net.nics[mapper_host].firmware.host_send(
            dst=target_host, payload_len=probe_payload,
            ptype=TYPE_MAPPING, gm={"kind": "scout", "last": True},
            on_delivered=lambda tp: done.succeed(tp),
            route=ItbRoute((seg,)),
        )
        sim.run_until_event(done)

    # Map physical switch id -> mapper label, and the route to reach it.
    labels: dict[int, str] = {}
    route_to: dict[int, list[int]] = {}

    first_switch = topo.switch_of(mapper_host)
    labels[first_switch] = "sw0"
    route_to[first_switch] = []
    result.switch_ports["sw0"] = {}
    frontier = [first_switch]

    while frontier:
        switch = frontier.pop(0)
        label = labels[switch]
        base_route = route_to[switch]
        for port in range(topo.n_ports(switch)):
            if result.probes_sent >= max_probes:
                raise DiscoveryError(
                    f"probe budget {max_probes} exhausted at {label}")
            result.probes_sent += 1
            reached = reach(base_route + [port])
            if reached is None:
                result.switch_ports[label][port] = None
                continue
            if topo.is_host(reached):
                result.switch_ports[label][port] = ("host", reached)
                result.host_attach[reached] = (label, port)
                # A real scout runs the wire to confirm the NIC answers
                # (also charges simulated mapping time).
                if reached != mapper_host:
                    send_probe(base_route + [port], reached)
            else:
                if reached not in labels:
                    new_label = f"sw{len(labels)}"
                    labels[reached] = new_label
                    route_to[reached] = base_route + [port]
                    result.switch_ports[new_label] = {}
                    frontier.append(reached)
                result.switch_ports[label][port] = ("switch", labels[reached])
        # Mapper pacing between switch scans (route table updates on
        # the real mapper).
        pace = sim.event("pace")
        sim.schedule(1_000.0, pace.succeed)
        sim.run_until_event(pace)

    result.elapsed_ns = sim.now - t_start
    return result
