"""GM: the host-side message layer.

GM is Myricom's message-based communication system: protected
user-level access to the NIC, reliable ordered delivery, network
mapping and route computation.  This package models the pieces the
paper's evaluation exercises:

* :class:`GmHost` — per-host API object (`gm_send` / `gm_receive`
  semantics) with message segmentation at the GM MTU and an optional
  go-back-N reliability layer (sequence numbers, acks, retransmit) —
  the mechanism that recovers packets flushed by a full in-transit
  buffer pool,
* :func:`run_mapper` — the network mapper: computes routes (up*/down*
  or ITB) and stamps route tables into every NIC's SRAM,
* :mod:`repro.gm.allsize` — the ``gm_allsize`` ping-pong latency test
  used for every measurement in the paper's Section 5.
"""

from repro.gm.host import GmHost, GmMessage, GmSendError
from repro.gm.mapper import run_mapper
from repro.gm.allsize import PingPongResult, ping_pong, allsize_sweep
from repro.gm.ports import GmPort, GmPortError, PortMessage
from repro.gm.collectives import (
    CollectiveContext,
    all_reduce_sum,
    barrier,
    broadcast,
    gather,
    run_collective,
)
from repro.gm.discovery import DiscoveredMap, DiscoveryError, discover_network
from repro.gm.ip import IpDatagram, IpEndpoint, IpStats
from repro.gm.tcp_lite import TcpLiteEndpoint, TcpStats

__all__ = [
    "CollectiveContext",
    "DiscoveredMap",
    "DiscoveryError",
    "GmHost",
    "GmMessage",
    "GmPort",
    "GmPortError",
    "GmSendError",
    "IpDatagram",
    "IpEndpoint",
    "IpStats",
    "PingPongResult",
    "PortMessage",
    "TcpLiteEndpoint",
    "TcpStats",
    "all_reduce_sum",
    "allsize_sweep",
    "barrier",
    "broadcast",
    "discover_network",
    "gather",
    "ping_pong",
    "run_collective",
    "run_mapper",
]
