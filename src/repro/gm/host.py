"""GmHost: the per-host GM API with reliable ordered delivery.

Models the host-software half of GM:

* ``send()`` — segments a message at the GM MTU, charges host-side
  software time (with seeded Gaussian jitter standing in for P-III
  scheduler/cache noise), and pushes packets through the NIC firmware.
* ``receive()`` — event-based receive from the in-order delivery queue.
* Reliability — per-destination go-back-N: sequence numbers on data
  packets, cumulative acks (explicit packets plus a piggybacked ack
  field on reverse data traffic), NACK-triggered fast retransmit, a
  bounded send window, and a per-connection retransmission timer with
  exponential backoff.  A packet that exhausts its retransmission
  budget fails the whole connection *gracefully*: every in-flight
  send's completion event fails with :class:`GmSendError`, a reset
  packet resynchronizes the receiver, and the simulation keeps
  running.  This is what recovers packets flushed by a full in-transit
  buffer pool (paper Section 4's "GM software has mechanisms to
  retransmit missing packets") and what degrades sends over a
  permanently faulted path.

``docs/RELIABILITY.md`` documents the protocol state machine and the
timeout/backoff constants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

import numpy as np

from repro.mcp.firmware import TransitPacket
from repro.mcp.packet_format import TYPE_GM
from repro.nic.lanai import Nic
from repro.routing.routes import ItbRoute, RouteError
from repro.sim.engine import Event, Simulator, Timeout
from repro.sim.resources import Store

__all__ = ["GmHost", "GmMessage", "GmSendError"]

#: GM maximum payload per packet (GM-1.x used 4 KB pages).
GM_MTU = 4096


class GmSendError(RuntimeError):
    """Raised when a message exhausts its retransmission budget."""


@dataclass
class GmMessage:
    """One application-level message as seen by ``receive()``."""

    src: int
    dst: int
    length: int
    tag: int = 0
    t_send_api: float = 0.0
    t_recv_api: float = 0.0
    n_packets: int = 1

    @property
    def latency_ns(self) -> float:
        return self.t_recv_api - self.t_send_api


@dataclass
class _Connection:
    """Per-(local, remote) reliability state."""

    next_seq: int = 0          # next sequence number to assign
    expected_seq: int = 0      # next in-order sequence expected (recv side)
    unacked: dict = field(default_factory=dict)  # seq -> _SendState
    backoff_exp: int = 0       # consecutive timeouts without ack progress
    timer_armed: bool = False
    timer_gen: int = 0         # bumping invalidates scheduled checks
    window_waiters: Deque[Event] = field(default_factory=deque)
    last_nack_seq: int = -1    # dedupe fast retransmits per hole


@dataclass
class _SendState:
    seq: int
    length: int
    tag: int
    route: Optional[ItbRoute]
    t_first_send: float
    retries: int = 0
    acked: bool = False
    msg_id: int = 0
    last_packet: bool = False
    #: Message root span (sampled traces only) and this packet's first
    #: attempt span — retransmissions parent under the first attempt.
    trace_root: Optional[object] = None
    trace0: Optional[object] = None


@dataclass
class _InFlightMessage:
    msg_id: int
    dst: int
    length: int
    tag: int
    n_packets: int
    packets_acked: int = 0
    done: Optional[Event] = None
    trace_root: Optional[object] = None


class GmHost:
    """Host-side GM endpoint bound to one NIC.

    Parameters
    ----------
    sim, nic:
        Simulation context; ``nic.deliver_up`` is claimed by this host.
    seed:
        Seeds the host-noise RNG (deterministic per host).
    reliable:
        Enable acks + retransmission.  Latency tests may disable it to
        match ``gm_allsize``'s measurement of the data path only; it
        must be on for buffer-pool flush and fault experiments.
    ack_payload:
        Wire payload bytes of an ack packet (control packets are tiny).
    resend_timeout_ns / max_retries:
        Go-back-N base timeout and per-packet retransmission budget.
    backoff_factor / max_backoff_ns:
        The retransmission timeout grows by ``backoff_factor`` per
        consecutive timeout without ack progress, capped at
        ``max_backoff_ns``; any cumulative-ack progress resets it.
    window:
        Maximum unacked packets per connection; ``send()`` processes
        stall (simulated time) when the window is full.
    nack_enabled:
        Receivers nack the first missing sequence on a gap, letting
        the sender fast-retransmit without waiting out the timer.
    """

    def __init__(
        self,
        sim: Simulator,
        nic: Nic,
        seed: int = 0,
        reliable: bool = True,
        ack_payload: int = 8,
        resend_timeout_ns: float = 1_000_000.0,
        max_retries: int = 64,
        backoff_factor: float = 2.0,
        max_backoff_ns: float = 16_000_000.0,
        window: int = 64,
        nack_enabled: bool = True,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.host = nic.host
        self.name = nic.name
        self.timings = nic.timings
        self.reliable = reliable
        self.ack_payload = ack_payload
        self.resend_timeout_ns = resend_timeout_ns
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.max_backoff_ns = max_backoff_ns
        self.window = window
        self.nack_enabled = nack_enabled
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(nic.host,))
        )
        self._recv_queue: Store = Store(sim, name=f"gmrecv[{self.name}]")
        self._connections: dict[int, _Connection] = {}
        self._in_flight: dict[int, _InFlightMessage] = {}
        self._msg_counter = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.messages_failed = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.nacks_sent = 0
        self.nacks_received = 0
        self.send_errors = 0
        self.route_failures = 0
        nic.deliver_up = self._on_nic_deliver
        # Back-reference for the port layer (repro.gm.ports).
        nic._gm_host = self  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(
        self,
        dst: int,
        length: int,
        tag: int = 0,
        route: Optional[ItbRoute] = None,
    ) -> Event:
        """gm_send(): returns an event that fires at *send completion*.

        With reliability on, completion means every packet of the
        message has been acked — or the event *fails* with
        :class:`GmSendError` when the retransmission budget runs out.
        With it off, completion fires when the last packet has been
        handed to the NIC.
        """
        if length < 0:
            raise ValueError("negative message length")
        self._msg_counter += 1
        msg_id = (self.host << 24) | self._msg_counter
        n_packets = max(1, -(-length // GM_MTU))
        done = Event(self.sim, name=f"senddone[{self.name}]")
        tracer = self.nic.fabric.tracer
        root = None
        if tracer is not None and tracer.sample():
            root = tracer.begin(
                "message", self.sim.now, component=f"gm[{self.name}]",
                src=self.host, dst=dst, length=length, tag=tag,
                msg_id=msg_id)
        self._in_flight[msg_id] = _InFlightMessage(
            msg_id=msg_id, dst=dst, length=length, tag=tag,
            n_packets=n_packets, done=done, trace_root=root,
        )
        self.sim.process(
            self._send_proc(msg_id, dst, length, tag, route, done, root),
            name=f"gmsend[{self.name}]",
        )
        return done

    def _host_noise(self) -> float:
        sigma = self.timings.host_jitter_sigma_ns
        if sigma <= 0:
            return 0.0
        return float(abs(self._rng.normal(0.0, sigma)))

    def _send_proc(self, msg_id, dst, length, tag, route, done: Event,
                   root=None):
        t = self.timings
        conn = self._connections.setdefault(dst, _Connection())
        remaining = length
        n_packets = max(1, -(-length // GM_MTU))
        for i in range(n_packets):
            chunk = min(GM_MTU, remaining) if length > 0 else 0
            remaining -= chunk
            # Host-side gm_send work per packet (descriptor, pinning).
            hs = None
            if root is not None:
                hs = root.tracer.begin(
                    "host_send", self.sim.now, parent=root,
                    component=f"gm[{self.name}]", pkt=i)
            yield Timeout(t.host_send_sw_ns + self._host_noise())
            if hs is not None:
                hs.close(self.sim.now)
            if self.reliable and msg_id not in self._in_flight:
                return  # connection failed under us (budget exhausted)
            # Send-window backpressure: gm_send blocks while the
            # go-back-N window is full of unacked packets.
            while self.reliable and len(conn.unacked) >= self.window:
                gate = Event(self.sim, name=f"window[{self.name}]")
                conn.window_waiters.append(gate)
                ws = None
                if root is not None:
                    ws = root.tracer.begin(
                        "window_wait", self.sim.now, parent=root,
                        component=f"gm[{self.name}]", pkt=i)
                ok = yield gate
                if ws is not None:
                    ws.close(self.sim.now)
                if ok is False or msg_id not in self._in_flight:
                    return  # woken by connection failure
            seq = conn.next_seq
            conn.next_seq += 1
            state = _SendState(
                seq=seq, length=chunk, tag=tag, route=route,
                t_first_send=self.sim.now, msg_id=msg_id,
                last_packet=(i == n_packets - 1),
                trace_root=root,
            )
            if self.reliable:
                conn.unacked[seq] = state
                self._push_packet(dst, state)
                self._arm_timer(dst, conn)
            else:
                self._push_packet(dst, state)
        self.messages_sent += 1
        if not self.reliable and not done.triggered:
            done.succeed()

    def _push_packet(self, dst: int, state: _SendState) -> None:
        gm = {
            "kind": "data",
            "seq": state.seq,
            "tag": state.tag,
            "msg_id": state.msg_id,
            "msg_len": self._in_flight[state.msg_id].length
            if state.msg_id in self._in_flight else state.length,
            "last": state.last_packet,
            "reliable": self.reliable,
        }
        if self.reliable:
            # Piggybacked cumulative ack for the reverse direction.
            gm["ack"] = self._connections[dst].expected_seq - 1
        trace_ctx = None
        root = state.trace_root
        if root is not None:
            tracer = root.tracer
            attempt = tracer.begin(
                "attempt", self.sim.now,
                parent=state.trace0 if state.trace0 is not None else root,
                component=f"gm[{self.name}]",
                seq=state.seq, retry=state.retries, last=state.last_packet)
            if state.trace0 is None:
                state.trace0 = attempt
            trace_ctx = tracer.packet(root, attempt)
        try:
            self.nic.firmware.host_send(
                dst=dst,
                payload_len=state.length,
                ptype=TYPE_GM,
                gm=gm,
                route=state.route,
                trace=trace_ctx,
            )
        except RouteError:
            if trace_ctx is not None:
                trace_ctx.attempt.close(self.sim.now, "no-route")
            if not self.reliable:
                raise
            # No route (the mapper dropped an unreachable destination
            # after a fault): the packet never reaches the wire.  The
            # retransmission timer keeps retrying; the budget converts
            # a permanent hole into a graceful GmSendError.
            self.route_failures += 1

    # -- retransmission timer -------------------------------------------

    def _current_timeout_ns(self, conn: _Connection) -> float:
        t = self.resend_timeout_ns * (self.backoff_factor ** conn.backoff_exp)
        return min(t, self.max_backoff_ns)

    def _arm_timer(self, dst: int, conn: _Connection) -> None:
        if conn.timer_armed or not conn.unacked:
            return
        conn.timer_armed = True
        gen = conn.timer_gen
        self.sim.schedule(self._current_timeout_ns(conn),
                          lambda: self._timer_fired(dst, gen))

    def _timer_fired(self, dst: int, gen: int) -> None:
        conn = self._connections.get(dst)
        if conn is None or gen != conn.timer_gen:
            return  # superseded by ack progress or connection failure
        conn.timer_armed = False
        if not conn.unacked:
            return
        oldest = min(conn.unacked)
        if conn.unacked[oldest].retries >= self.max_retries:
            self._fail_connection(
                dst, conn,
                f"seq {oldest} to {dst} exceeded {self.max_retries} retries")
            return
        self.timeouts += 1
        conn.backoff_exp += 1
        # Go-back-N: retransmit every unacked packet, in order.
        for seq in sorted(conn.unacked):
            state = conn.unacked[seq]
            state.retries += 1
            self.retransmissions += 1
            self._push_packet(dst, state)
        self._arm_timer(dst, conn)

    def _fail_connection(self, dst: int, conn: _Connection,
                         reason: str) -> None:
        """Retransmission budget exhausted: degrade gracefully.

        Every in-flight message to ``dst`` fails its completion event
        with :class:`GmSendError`; the send state is purged, window
        waiters are released, and a reset packet tells the receiver to
        resynchronize its expected sequence so *later* messages start
        clean.  The simulation keeps running.
        """
        self.send_errors += 1
        err = GmSendError(f"{self.name}: {reason}")
        conn.unacked.clear()
        conn.timer_gen += 1
        conn.timer_armed = False
        conn.backoff_exp = 0
        conn.last_nack_seq = -1
        for msg_id, flight in list(self._in_flight.items()):
            if flight.dst != dst:
                continue
            del self._in_flight[msg_id]
            self.messages_failed += 1
            if flight.trace_root is not None:
                flight.trace_root.close(self.sim.now, "failed")
            if flight.done is not None and not flight.done.triggered:
                flight.done.fail(err)
        self._wake_window_waiters(conn, ok=False)
        self._send_control(dst, {"kind": "reset",
                                 "reset_seq": conn.next_seq})

    def _wake_window_waiters(self, conn: _Connection, ok: bool) -> None:
        while conn.window_waiters:
            gate = conn.window_waiters.popleft()
            if not gate.triggered:
                gate.succeed(ok)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def receive(self) -> Event:
        """gm_receive(): event yielding the next :class:`GmMessage`."""
        return self._recv_queue.get()

    def _on_nic_deliver(self, tp: TransitPacket) -> None:
        """Called by the NIC firmware after RDMA completes."""
        kind = tp.gm.get("kind", "data")
        if kind == "ack":
            self._handle_ack(tp)
            return
        if kind == "nack":
            self._handle_nack(tp)
            return
        if kind == "reset":
            conn = self._connections.setdefault(tp.src, _Connection())
            conn.expected_seq = tp.gm.get("reset_seq", conn.expected_seq)
            return
        self.sim.process(self._recv_proc(tp), name=f"gmrecv[{self.name}]")

    def _recv_proc(self, tp: TransitPacket):
        t = self.timings
        ctx = tp.trace
        gr = None
        if ctx is not None and ctx.root is not None:
            gr = ctx.tracer.begin(
                "gm_recv", self.sim.now, parent=ctx.root,
                component=f"gm[{self.name}]")
        # Host-side receive work (event queue poll, token return).
        yield Timeout(t.host_recv_sw_ns + self._host_noise())
        if gr is not None:
            gr.close(self.sim.now)
        if tp.gm.get("kind", "data") != "data":
            # Control traffic (mapper scouts, diagnostics) is consumed
            # by the GM layer, never surfaced to the application.
            return
        conn = self._connections.setdefault(tp.src, _Connection())
        seq = tp.gm.get("seq", conn.expected_seq)
        reliable = tp.gm.get("reliable", False)
        if reliable and "ack" in tp.gm:
            # Piggybacked cumulative ack for our sends toward tp.src.
            self._process_ack(tp.src, tp.gm["ack"])
        if reliable:
            if seq != conn.expected_seq:
                # Out-of-order: go-back-N receivers drop it.  A gap
                # (seq ran ahead) nacks the first missing sequence for
                # fast retransmit; either way re-ack the last good one.
                if seq > conn.expected_seq and self.nack_enabled:
                    self.nacks_sent += 1
                    self._send_control(
                        tp.src,
                        {"kind": "nack", "nack_seq": conn.expected_seq},
                        parent=ctx.root if ctx is not None else None)
                self._send_ack(tp.src, conn.expected_seq - 1,
                               parent=ctx.root if ctx is not None else None)
                return
            conn.expected_seq += 1
            if ctx is not None:
                ctx.attempt.attrs["accepted"] = True
            self._send_ack(tp.src, seq,
                           parent=ctx.root if ctx is not None else None)
        if tp.gm.get("last", True):
            msg = GmMessage(
                src=tp.src,
                dst=self.host,
                length=tp.gm.get("msg_len", tp.payload_len),
                tag=tp.gm.get("tag", 0),
                t_send_api=tp.t_api_send or 0.0,
                t_recv_api=self.sim.now,
                n_packets=1,
            )
            self.messages_received += 1
            self._recv_queue.put(msg)
            if ctx is not None and ctx.root is not None:
                # GM-level delivery of the last packet: the message's
                # end-to-end latency ends here.  The ack packet's spans
                # may extend past this close (t_acked lands in attrs).
                ctx.root.close(self.sim.now)

    def _send_ack(self, dst: int, seq: int, parent=None) -> None:
        self._send_control(dst, {"kind": "ack", "ack_seq": seq},
                           parent=parent)

    def _send_control(self, dst: int, gm: dict, parent=None) -> None:
        trace_ctx = None
        if parent is not None:
            tracer = parent.tracer
            span = tracer.begin(
                gm.get("kind", "ctl"), self.sim.now, parent=parent,
                component=f"gm[{self.name}]")
            trace_ctx = tracer.packet(None, span)
        try:
            self.nic.firmware.host_send(
                dst=dst, payload_len=self.ack_payload, ptype=TYPE_GM, gm=gm,
                trace=trace_ctx,
            )
        except RouteError:
            if trace_ctx is not None:
                trace_ctx.attempt.close(self.sim.now, "no-route")
            self.route_failures += 1  # best-effort control packet

    def _handle_ack(self, tp: TransitPacket) -> None:
        self._process_ack(tp.src, tp.gm.get("ack_seq", -1))

    def _handle_nack(self, tp: TransitPacket) -> None:
        """Fast retransmit: the receiver is missing ``nack_seq``."""
        self.nacks_received += 1
        want = tp.gm.get("nack_seq", -1)
        # Everything below the hole is implicitly acked.
        self._process_ack(tp.src, want - 1)
        conn = self._connections.setdefault(tp.src, _Connection())
        if want in conn.unacked and conn.last_nack_seq != want:
            conn.last_nack_seq = want
            for seq in sorted(conn.unacked):
                self.retransmissions += 1
                self._push_packet(tp.src, conn.unacked[seq])

    def _process_ack(self, src: int, ack_seq: int) -> None:
        conn = self._connections.setdefault(src, _Connection())
        progressed = False
        # Cumulative ack: everything <= ack_seq is confirmed.
        for seq in sorted(conn.unacked):
            if seq > ack_seq:
                break
            state = conn.unacked.pop(seq)
            state.acked = True
            progressed = True
            flight = self._in_flight.get(state.msg_id)
            if flight is not None:
                flight.packets_acked += 1
                if (flight.packets_acked >= flight.n_packets
                        and flight.done is not None
                        and not flight.done.triggered):
                    flight.done.succeed()
                    if flight.trace_root is not None:
                        flight.trace_root.attrs["t_acked"] = self.sim.now
                    del self._in_flight[state.msg_id]
        if progressed:
            # Ack progress resets the backoff and restarts the timer
            # for whatever is still outstanding.
            conn.backoff_exp = 0
            conn.timer_gen += 1
            conn.timer_armed = False
            self._arm_timer(src, conn)
            self._wake_window_waiters(conn, ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GmHost {self.name} sent={self.messages_sent}>"
