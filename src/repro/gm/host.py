"""GmHost: the per-host GM API with reliable ordered delivery.

Models the host-software half of GM:

* ``send()`` — segments a message at the GM MTU, charges host-side
  software time (with seeded Gaussian jitter standing in for P-III
  scheduler/cache noise), and pushes packets through the NIC firmware.
* ``receive()`` — event-based receive from the in-order delivery queue.
* Reliability — per-destination go-back-N: sequence numbers on data
  packets, explicit ack packets, retransmission on timeout.  This is
  what recovers packets flushed by a full in-transit buffer pool
  (paper Section 4's "GM software has mechanisms to retransmit
  missing packets").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mcp.firmware import TransitPacket
from repro.mcp.packet_format import TYPE_GM
from repro.nic.lanai import Nic
from repro.routing.routes import ItbRoute
from repro.sim.engine import Event, Simulator, Timeout
from repro.sim.resources import Store

__all__ = ["GmHost", "GmMessage", "GmSendError"]

#: GM maximum payload per packet (GM-1.x used 4 KB pages).
GM_MTU = 4096


class GmSendError(RuntimeError):
    """Raised when a message exhausts its retransmission budget."""


@dataclass
class GmMessage:
    """One application-level message as seen by ``receive()``."""

    src: int
    dst: int
    length: int
    tag: int = 0
    t_send_api: float = 0.0
    t_recv_api: float = 0.0
    n_packets: int = 1

    @property
    def latency_ns(self) -> float:
        return self.t_recv_api - self.t_send_api


@dataclass
class _Connection:
    """Per-(local, remote) reliability state."""

    next_seq: int = 0          # next sequence number to assign
    expected_seq: int = 0      # next in-order sequence expected (recv side)
    unacked: dict = field(default_factory=dict)  # seq -> _SendState


@dataclass
class _SendState:
    seq: int
    length: int
    tag: int
    route: Optional[ItbRoute]
    t_first_send: float
    retries: int = 0
    acked: bool = False
    msg_id: int = 0
    last_packet: bool = False


@dataclass
class _InFlightMessage:
    msg_id: int
    dst: int
    length: int
    tag: int
    n_packets: int
    packets_acked: int = 0
    done: Optional[Event] = None


class GmHost:
    """Host-side GM endpoint bound to one NIC.

    Parameters
    ----------
    sim, nic:
        Simulation context; ``nic.deliver_up`` is claimed by this host.
    seed:
        Seeds the host-noise RNG (deterministic per host).
    reliable:
        Enable acks + retransmission.  Latency tests may disable it to
        match ``gm_allsize``'s measurement of the data path only; it
        must be on for buffer-pool flush experiments.
    ack_payload:
        Wire payload bytes of an ack packet (control packets are tiny).
    resend_timeout_ns / max_retries:
        Go-back-N parameters.
    """

    def __init__(
        self,
        sim: Simulator,
        nic: Nic,
        seed: int = 0,
        reliable: bool = True,
        ack_payload: int = 8,
        resend_timeout_ns: float = 1_000_000.0,
        max_retries: int = 64,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.host = nic.host
        self.name = nic.name
        self.timings = nic.timings
        self.reliable = reliable
        self.ack_payload = ack_payload
        self.resend_timeout_ns = resend_timeout_ns
        self.max_retries = max_retries
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(nic.host,))
        )
        self._recv_queue: Store = Store(sim, name=f"gmrecv[{self.name}]")
        self._connections: dict[int, _Connection] = {}
        self._in_flight: dict[int, _InFlightMessage] = {}
        self._msg_counter = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.retransmissions = 0
        nic.deliver_up = self._on_nic_deliver
        # Back-reference for the port layer (repro.gm.ports).
        nic._gm_host = self  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(
        self,
        dst: int,
        length: int,
        tag: int = 0,
        route: Optional[ItbRoute] = None,
    ) -> Event:
        """gm_send(): returns an event that fires at *send completion*.

        With reliability on, completion means every packet of the
        message has been acked; with it off, completion fires when the
        last packet has been handed to the NIC.
        """
        if length < 0:
            raise ValueError("negative message length")
        self._msg_counter += 1
        msg_id = (self.host << 24) | self._msg_counter
        n_packets = max(1, -(-length // GM_MTU))
        done = Event(self.sim, name=f"senddone[{self.name}]")
        self._in_flight[msg_id] = _InFlightMessage(
            msg_id=msg_id, dst=dst, length=length, tag=tag,
            n_packets=n_packets, done=done,
        )
        self.sim.process(
            self._send_proc(msg_id, dst, length, tag, route, done),
            name=f"gmsend[{self.name}]",
        )
        return done

    def _host_noise(self) -> float:
        sigma = self.timings.host_jitter_sigma_ns
        if sigma <= 0:
            return 0.0
        return float(abs(self._rng.normal(0.0, sigma)))

    def _send_proc(self, msg_id, dst, length, tag, route, done: Event):
        t = self.timings
        conn = self._connections.setdefault(dst, _Connection())
        remaining = length
        n_packets = max(1, -(-length // GM_MTU))
        for i in range(n_packets):
            chunk = min(GM_MTU, remaining) if length > 0 else 0
            remaining -= chunk
            # Host-side gm_send work per packet (descriptor, pinning).
            yield Timeout(t.host_send_sw_ns + self._host_noise())
            seq = conn.next_seq
            conn.next_seq += 1
            state = _SendState(
                seq=seq, length=chunk, tag=tag, route=route,
                t_first_send=self.sim.now, msg_id=msg_id,
                last_packet=(i == n_packets - 1),
            )
            if self.reliable:
                conn.unacked[seq] = state
                self._arm_resend_timer(dst, state)
            self._push_packet(dst, state)
        self.messages_sent += 1
        if not self.reliable and not done.triggered:
            done.succeed()

    def _push_packet(self, dst: int, state: _SendState) -> None:
        gm = {
            "kind": "data",
            "seq": state.seq,
            "tag": state.tag,
            "msg_id": state.msg_id,
            "msg_len": self._in_flight[state.msg_id].length
            if state.msg_id in self._in_flight else state.length,
            "last": state.last_packet,
            "reliable": self.reliable,
        }
        self.nic.firmware.host_send(
            dst=dst,
            payload_len=state.length,
            ptype=TYPE_GM,
            gm=gm,
            route=state.route,
        )

    def _arm_resend_timer(self, dst: int, state: _SendState) -> None:
        def check() -> None:
            conn = self._connections[dst]
            if state.acked or state.seq not in conn.unacked:
                return
            if state.retries >= self.max_retries:
                raise GmSendError(
                    f"{self.name}: seq {state.seq} to {dst} exceeded"
                    f" {self.max_retries} retries"
                )
            state.retries += 1
            self.retransmissions += 1
            self._push_packet(dst, state)
            self.sim.schedule(self.resend_timeout_ns, check)

        self.sim.schedule(self.resend_timeout_ns, check)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def receive(self) -> Event:
        """gm_receive(): event yielding the next :class:`GmMessage`."""
        return self._recv_queue.get()

    def _on_nic_deliver(self, tp: TransitPacket) -> None:
        """Called by the NIC firmware after RDMA completes."""
        kind = tp.gm.get("kind", "data")
        if kind == "ack":
            self._handle_ack(tp)
            return
        self.sim.process(self._recv_proc(tp), name=f"gmrecv[{self.name}]")

    def _recv_proc(self, tp: TransitPacket):
        t = self.timings
        # Host-side receive work (event queue poll, token return).
        yield Timeout(t.host_recv_sw_ns + self._host_noise())
        if tp.gm.get("kind", "data") != "data":
            # Control traffic (mapper scouts, diagnostics) is consumed
            # by the GM layer, never surfaced to the application.
            return
        conn = self._connections.setdefault(tp.src, _Connection())
        seq = tp.gm.get("seq", conn.expected_seq)
        reliable = tp.gm.get("reliable", False)
        if reliable:
            if seq != conn.expected_seq:
                # Out-of-order (a retransmit follow-on or duplicate):
                # go-back-N receivers drop and re-ack the last good one.
                self._send_ack(tp.src, conn.expected_seq - 1)
                return
            conn.expected_seq += 1
            self._send_ack(tp.src, seq)
        if tp.gm.get("last", True):
            msg = GmMessage(
                src=tp.src,
                dst=self.host,
                length=tp.gm.get("msg_len", tp.payload_len),
                tag=tp.gm.get("tag", 0),
                t_send_api=tp.t_api_send or 0.0,
                t_recv_api=self.sim.now,
                n_packets=1,
            )
            self.messages_received += 1
            self._recv_queue.put(msg)

    def _send_ack(self, dst: int, seq: int) -> None:
        gm = {"kind": "ack", "ack_seq": seq}
        self.nic.firmware.host_send(
            dst=dst, payload_len=self.ack_payload, ptype=TYPE_GM, gm=gm,
        )

    def _handle_ack(self, tp: TransitPacket) -> None:
        conn = self._connections.setdefault(tp.src, _Connection())
        ack_seq = tp.gm.get("ack_seq", -1)
        # Cumulative ack: everything <= ack_seq is confirmed.
        for seq in sorted(conn.unacked):
            if seq > ack_seq:
                break
            state = conn.unacked.pop(seq)
            state.acked = True
            flight = self._in_flight.get(state.msg_id)
            if flight is not None:
                flight.packets_acked += 1
                if (flight.packets_acked >= flight.n_packets
                        and flight.done is not None
                        and not flight.done.triggered):
                    flight.done.succeed()
                    del self._in_flight[state.msg_id]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GmHost {self.name} sent={self.messages_sent}>"
