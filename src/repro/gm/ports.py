"""GM ports and token flow control.

The real GM API is port-based: an application opens a numbered *port*
on its NIC and addresses sends to ``(host, port)``.  Flow control is
by **tokens**: a process owns a fixed number of send tokens and
receive tokens; ``gm_send_with_callback`` consumes a send token
(returned by the completion callback) and every reception consumes a
receive token that the application must explicitly *provide* — with
no token posted, arriving data waits in GM's buffers.

This module layers those semantics over :class:`~repro.gm.host.GmHost`:

* :class:`GmPort` — open/close, tagged sends with token accounting,
  token-gated receive queues,
* sends to a port whose peer never posted tokens still complete at
  the GM level (GM owns the buffering), but the *application* only
  sees the message once a token is provided — exactly the backpressure
  shape real GM applications program against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.gm.host import GmHost, GmMessage
from repro.routing.routes import ItbRoute
from repro.sim.engine import Event, SimulationError

__all__ = ["GmPort", "GmPortError", "PortMessage"]

#: GM-1.x default token budgets per port.
DEFAULT_SEND_TOKENS = 16
DEFAULT_RECV_TOKENS = 16


class GmPortError(RuntimeError):
    """Port misuse: double open, send without tokens, closed port."""


@dataclass(frozen=True)
class PortMessage:
    """A message as seen by a port: GM message + target port number."""

    message: GmMessage
    port: int

    @property
    def src(self) -> int:
        return self.message.src

    @property
    def length(self) -> int:
        return self.message.length

    @property
    def tag(self) -> int:
        return self.message.tag


class GmPort:
    """One open GM port on a host.

    Parameters
    ----------
    gm_host:
        The host endpoint to bind to.
    port_number:
        GM port id (0 is reserved for the mapper on real GM; any
        non-negative id is accepted here, uniqueness enforced per host).
    send_tokens / recv_tokens:
        Token budgets.
    """

    def __init__(
        self,
        gm_host: GmHost,
        port_number: int,
        send_tokens: int = DEFAULT_SEND_TOKENS,
        recv_tokens: int = DEFAULT_RECV_TOKENS,
    ) -> None:
        if port_number < 0:
            raise GmPortError("port numbers are non-negative")
        if send_tokens < 1 or recv_tokens < 1:
            raise GmPortError("token budgets must be positive")
        self.gm_host = gm_host
        self.sim = gm_host.sim
        self.port_number = port_number
        self.send_tokens_total = send_tokens
        self._send_tokens = send_tokens
        self._recv_tokens = recv_tokens
        self._pending: Deque[PortMessage] = deque()   # arrived, no token
        self._ready: Deque[PortMessage] = deque()     # token matched
        self._recv_waiters: Deque[Event] = deque()
        self._send_token_waiters: Deque[Event] = deque()
        self.closed = False
        registry = _registry_of(gm_host)
        if port_number in registry:
            raise GmPortError(
                f"port {port_number} already open on {gm_host.name}")
        registry[port_number] = self

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    @property
    def send_tokens(self) -> int:
        return self._send_tokens

    @property
    def recv_tokens(self) -> int:
        return self._recv_tokens

    def send(
        self,
        dst_host: int,
        dst_port: int,
        length: int,
        tag: int = 0,
        route: Optional[ItbRoute] = None,
    ) -> Event:
        """gm_send_with_callback: consumes a send token.

        The returned event fires at send completion (ack with
        reliability on), at which point the token is back.  Raises
        :class:`GmPortError` when no token is available — real GM
        returns an error too; callers wanting to block should
        ``yield port.wait_send_token()`` first.
        """
        self._check_open()
        if self._send_tokens <= 0:
            raise GmPortError(
                f"{self.gm_host.name}:{self.port_number} out of send tokens")
        self._send_tokens -= 1
        done = self.gm_host.send(dst_host, length, tag=tag, route=route)
        done.add_callback(lambda _ev: self._return_send_token())
        # Target port travels with the message (GM stamps it in the
        # packet header; we piggyback on the message tag channel).
        done_port = _port_stamp(self.gm_host, dst_host, dst_port)
        done_port.append(dst_port)
        return done

    def wait_send_token(self) -> Event:
        """Event that fires as soon as a send token is available."""
        ev = Event(self.sim, name=f"sendtok[{self.gm_host.name}]")
        if self._send_tokens > 0:
            ev.succeed()
        else:
            self._send_token_waiters.append(ev)
        return ev

    def _return_send_token(self) -> None:
        self._send_tokens += 1
        while self._send_token_waiters and self._send_tokens > 0:
            self._send_token_waiters.popleft().succeed()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def provide_receive_token(self, n: int = 1) -> None:
        """gm_provide_receive_buffer: add receive tokens.

        Matches waiting (buffered) messages immediately.
        """
        self._check_open()
        if n < 1:
            raise GmPortError("must provide at least one token")
        self._recv_tokens += n
        self._match()

    def receive(self) -> Event:
        """Event yielding the next token-matched :class:`PortMessage`."""
        self._check_open()
        ev = Event(self.sim, name=f"portrecv[{self.gm_host.name}]")
        if self._ready:
            ev.succeed(self._ready.popleft())
        else:
            self._recv_waiters.append(ev)
        return ev

    @property
    def buffered(self) -> int:
        """Messages arrived but not yet matched to a token."""
        return len(self._pending)

    def _deliver(self, pm: PortMessage) -> None:
        self._pending.append(pm)
        self._match()

    def _match(self) -> None:
        while self._pending and self._recv_tokens > 0:
            self._recv_tokens -= 1
            pm = self._pending.popleft()
            if self._recv_waiters:
                self._recv_waiters.popleft().succeed(pm)
            else:
                self._ready.append(pm)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """gm_close(): release the port number; fail pending receives."""
        self._check_open()
        self.closed = True
        del _registry_of(self.gm_host)[self.port_number]
        while self._recv_waiters:
            self._recv_waiters.popleft().fail(GmPortError("port closed"))

    def _check_open(self) -> None:
        if self.closed:
            raise GmPortError(
                f"port {self.port_number} on {self.gm_host.name} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<GmPort {self.gm_host.name}:{self.port_number}"
                f" stok={self._send_tokens} rtok={self._recv_tokens}>")


# ---------------------------------------------------------------------------
# host-level port plumbing
# ---------------------------------------------------------------------------


def _registry_of(gm_host: GmHost) -> dict[int, GmPort]:
    """Per-host port registry, installed lazily.

    Installation hooks the host's receive queue: a dispatcher process
    drains :class:`GmMessage` objects and routes each to its target
    port (the stamp queue carries the port numbers in arrival order,
    which is exact because GM delivery is ordered per connection).
    """
    registry = getattr(gm_host, "_ports", None)
    if registry is None:
        registry = {}
        gm_host._ports = registry  # type: ignore[attr-defined]
        gm_host._port_stamps = {}  # type: ignore[attr-defined]
        gm_host.sim.process(_dispatcher(gm_host),
                            name=f"portdisp[{gm_host.name}]")
    return registry


def _port_stamp(src_gm: GmHost, dst_host: int, _dst_port: int) -> list:
    """The per-(src,dst) FIFO of target-port stamps.

    Lives on the *destination* host keyed by source, because delivery
    order is per-connection.
    """
    # Find the destination GmHost through the NIC registry.
    fw_by_host = src_gm.nic.fabric.meta["firmware_by_host"]
    dst_nic = fw_by_host[dst_host].nic
    dst_gm = _gm_of(dst_nic)
    stamps = dst_gm._port_stamps  # type: ignore[attr-defined]
    return stamps.setdefault(src_gm.host, [])


def _gm_of(nic) -> GmHost:
    gm = getattr(nic, "_gm_host", None)
    if gm is None:
        raise SimulationError(f"no GmHost bound to NIC {nic.name}")
    return gm


def _dispatcher(gm_host: GmHost):
    """Route incoming GmMessages to their target ports."""
    while True:
        msg: GmMessage = yield gm_host.receive()
        stamps = getattr(gm_host, "_port_stamps", {})
        queue = stamps.get(msg.src, [])
        port_number = queue.pop(0) if queue else 0
        registry = gm_host._ports  # type: ignore[attr-defined]
        port = registry.get(port_number)
        if port is None or port.closed:
            # No such port: GM drops to the floor (counted nowhere on
            # real GM either beyond a NACK; keep it simple).
            continue
        port._deliver(PortMessage(message=msg, port=port_number))
