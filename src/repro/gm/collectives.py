"""Collective operations over GM ports.

MPI and other middleware are "layered efficiently over GM" (paper
Section 3); the communication kernels that dominate distributed
applications are collectives.  This module provides the classic
log-depth algorithms over :class:`~repro.gm.ports.GmPort` so the
application-level experiments (EXP-M2) and examples can express real
workloads:

* :func:`barrier` — dissemination barrier (Hensgen et al.): ceil(log2 n)
  rounds, host ``i`` signals ``(i + 2^k) mod n`` each round,
* :func:`broadcast` — binomial tree from a root,
* :func:`all_reduce_sum` — reduce-to-root up a binomial tree, then
  broadcast down (values ride in the message ``tag``).

Each collective returns a list of per-host generator functions; the
caller registers them as simulator processes (see
:func:`run_collective` for the one-call driver used by tests).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork
from repro.gm.ports import GmPort
from repro.sim.engine import Event, Simulator

__all__ = ["CollectiveContext", "all_reduce_sum", "barrier",
           "broadcast", "gather", "run_collective"]

#: GM port number reserved by this module for collective traffic.
COLLECTIVE_PORT = 7


class CollectiveContext:
    """Ports and rank mapping for one group of hosts."""

    def __init__(self, net: "BuiltNetwork", hosts: Optional[Sequence[int]] = None,
                 message_bytes: int = 8) -> None:
        self.net = net
        self.sim: Simulator = net.sim
        self.hosts = sorted(hosts if hosts is not None else net.gm_hosts)
        if len(self.hosts) < 2:
            raise ValueError("collectives need at least two hosts")
        self.message_bytes = message_bytes
        self.rank_of = {h: i for i, h in enumerate(self.hosts)}
        self.ports: dict[int, GmPort] = {
            h: GmPort(net.gm_hosts[h], COLLECTIVE_PORT,
                      send_tokens=64, recv_tokens=256)
            for h in self.hosts
        }

    @property
    def n(self) -> int:
        return len(self.hosts)

    def host_of(self, rank: int) -> int:
        """Host id of a rank (wraps modulo the group size)."""
        return self.hosts[rank % self.n]

    def send(self, src_rank: int, dst_rank: int, tag: int) -> None:
        """One collective message between ranks (value in the tag)."""
        src = self.host_of(src_rank)
        dst = self.host_of(dst_rank)
        self.ports[src].send(dst, COLLECTIVE_PORT, self.message_bytes,
                             tag=tag)

    def recv(self, rank: int) -> Event:
        """Event yielding the next collective message at ``rank``."""
        return self.ports[self.host_of(rank)].receive()


def barrier(ctx: CollectiveContext) -> list[Callable]:
    """Dissemination barrier: every host function returns at a time
    >= every host's entry time.

    Round-``k`` notifications from different peers can overtake each
    other (a fast peer may already signal round ``k+1`` before our
    round-``k`` partner signals us), so arrivals for future rounds are
    buffered and consumed when their round comes up.
    """
    n = ctx.n
    rounds = max(1, math.ceil(math.log2(n)))

    def make(rank: int):
        def proc():
            port = ctx.ports[ctx.host_of(rank)]
            buffered: dict[int, int] = {}
            for k in range(rounds):
                peer = (rank + (1 << k)) % n
                ctx.send(rank, peer, tag=k)
                if buffered.get(k, 0) > 0:
                    buffered[k] -= 1
                    continue
                while True:
                    pm = yield port.receive()
                    if pm.tag == k:
                        break
                    buffered[pm.tag] = buffered.get(pm.tag, 0) + 1
            return ctx.sim.now

        return proc

    return [make(r) for r in range(n)]


def broadcast(ctx: CollectiveContext, root_rank: int = 0) -> list[Callable]:
    """Binomial-tree broadcast of a value from ``root_rank``.

    The value travels in the tag.  Each host function returns the
    received value.
    """
    n = ctx.n

    def make(rank: int):
        def proc():
            port = ctx.ports[ctx.host_of(rank)]
            rel = (rank - root_rank) % n
            if rel == 0:
                value = 42  # the broadcast payload
            else:
                pm = yield port.receive()
                value = pm.tag
            # Forward to children: rel + 2^k for every k where
            # 2^k > rel's low bits (standard binomial tree).
            mask = 1
            while mask < n:
                if rel & (mask - 1) == rel and rel < mask:
                    child = rel + mask
                    if child < n:
                        ctx.send(rank, (child + root_rank) % n, tag=value)
                mask <<= 1
            return value

        return proc

    return [make(r) for r in range(n)]


def all_reduce_sum(ctx: CollectiveContext,
                   values: Sequence[int]) -> list[Callable]:
    """Sum-all-reduce: reduce up a binomial tree to rank 0, broadcast
    the total back down.  Each host function returns the global sum."""
    n = ctx.n
    if len(values) != n:
        raise ValueError("need one value per host")

    def make(rank: int):
        def proc():
            port = ctx.ports[ctx.host_of(rank)]
            acc = int(values[rank])
            # --- reduce phase: receive from children, send to parent.
            mask = 1
            while mask < n:
                if rank & mask:
                    parent = rank & ~mask
                    ctx.send(rank, parent, tag=acc)
                    break
                child = rank | mask
                if child < n:
                    pm = yield port.receive()
                    acc += pm.tag
                mask <<= 1
            # --- broadcast phase: rank 0 has the total.
            if rank == 0:
                total = acc
            else:
                pm = yield port.receive()
                total = pm.tag
            # Children in the (root-0) binomial tree.
            mask = 1
            while mask < n:
                if rank < mask and rank | mask < n:
                    ctx.send(rank, rank | mask, tag=total)
                mask <<= 1
            return total

        return proc

    return [make(r) for r in range(n)]


def gather(ctx: CollectiveContext, values: Sequence[int],
           root_rank: int = 0) -> list[Callable]:
    """Gather one value per rank at ``root_rank`` (binomial tree).

    Non-root host functions return ``None``; the root's returns the
    values ordered by rank.  Contributions ride in the message tag as
    ``rank * SHIFT + value``, so values must be in ``[0, SHIFT)`` —
    payload-in-tag keeps this layer free of a serialization substrate.
    """
    n = ctx.n
    SHIFT = 1 << 16
    if len(values) != n:
        raise ValueError("need one value per host")
    for v in values:
        if not 0 <= int(v) < SHIFT:
            raise ValueError(f"gather values must be in [0, {SHIFT})")

    def make(rank: int):
        def proc():
            port = ctx.ports[ctx.host_of(rank)]
            rel = (rank - root_rank) % n
            collected = {rank: int(values[rank])}
            mask = 1
            while mask < n:
                if rel & mask:
                    # Forward everything collected to the tree parent.
                    parent = ((rel & ~mask) + root_rank) % n
                    for r, v in collected.items():
                        ctx.send(rank, parent, tag=r * SHIFT + v)
                    break
                child_rel = rel | mask
                if child_rel < n:
                    # That child's subtree contributes this many values.
                    expected = min(mask, n - child_rel)
                    for _ in range(expected):
                        pm = yield port.receive()
                        collected[pm.tag // SHIFT] = pm.tag % SHIFT
                mask <<= 1
            if rel == 0:
                return [collected[r] for r in range(n)]
            return None

        return proc

    return [make(r) for r in range(n)]


def run_collective(ctx: CollectiveContext,
                   procs: list[Callable]) -> list:
    """Run one collective to completion; return per-rank results."""
    handles = [ctx.sim.process(p(), name=f"coll[{i}]")
               for i, p in enumerate(procs)]
    done = Event(ctx.sim, name="collective-done")
    remaining = {"n": len(handles)}
    for h in handles:
        def on_done(_ev, h=h):
            remaining["n"] -= 1
            if remaining["n"] == 0:
                done.succeed()

        h.done_event.add_callback(on_done)
    ctx.sim.run_until_event(done)
    return [h.returned for h in handles]
