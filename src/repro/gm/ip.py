"""IP encapsulation over GM.

The paper's Section 3: "Other software interfaces such as MPI, VIA,
and TCP/IP are layered efficiently over GM", and the NIC's type
decode recognizes "a packet with an IP packet in its payload"
(``TYPE_IP`` in :mod:`repro.mcp.packet_format`).  This module
implements that layering's datagram half:

* IP datagrams larger than the GM MTU are **fragmented** (ident +
  fragment offset + more-fragments flag, IPv4-style, 8-byte aligned
  offsets),
* fragments travel as unreliable ``TYPE_IP`` GM packets,
* the receiver **reassembles** per (src, ident), delivering complete
  datagrams upward and expiring partial ones on a timeout — losing
  any fragment loses the datagram, exactly IP's best-effort contract
  (the contrast with GM's own go-back-N reliability is the point, and
  a test pins it).

The "header" is carried in the GM metadata side-channel rather than
serialized bytes: the simulation's packet images already model wire
length exactly, and what matters behaviorally is the
fragmentation/reassembly logic, not byte layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.gm.host import GmHost
from repro.mcp.firmware import TransitPacket
from repro.mcp.packet_format import TYPE_IP

__all__ = ["IpDatagram", "IpEndpoint", "IpStats"]

#: Fragment payload per GM packet: the GM MTU minus the 20-byte IP
#: header each fragment carries on the wire.
FRAGMENT_PAYLOAD = 4096 - 20
#: IPv4 fragment offsets count 8-byte units.
FRAG_UNIT = 8


@dataclass(frozen=True)
class IpDatagram:
    """A delivered IP datagram."""

    src: int
    dst: int
    length: int
    ident: int
    ttl: int
    t_delivered: float


@dataclass
class IpStats:
    """Per-endpoint counters."""

    datagrams_sent: int = 0
    fragments_sent: int = 0
    datagrams_delivered: int = 0
    fragments_received: int = 0
    reassembly_timeouts: int = 0
    ttl_drops: int = 0


@dataclass
class _Reassembly:
    total_len: Optional[int] = None  # known once the last fragment lands
    received: dict = field(default_factory=dict)  # offset -> length
    first_at: float = 0.0


class IpEndpoint:
    """Best-effort IP datagram service on one host.

    Parameters
    ----------
    gm_host:
        The GM endpoint to layer over.  IP traffic bypasses GM's
        reliability (datagrams are best-effort by contract), so the
        endpoint works with ``reliable`` either on or off — IP packets
        are always sent unacked.
    reassembly_timeout_ns:
        Partial datagrams older than this are discarded.
    default_ttl:
        Hop-limit stamped on originated datagrams.  Each traversal of
        an in-transit host decrements it (an ITB hop is an IP-visible
        store-and-forward); 0 on arrival drops the datagram.
    """

    def __init__(
        self,
        gm_host: GmHost,
        reassembly_timeout_ns: float = 5_000_000.0,
        default_ttl: int = 16,
    ) -> None:
        self.gm_host = gm_host
        self.sim = gm_host.sim
        self.host = gm_host.host
        self.reassembly_timeout_ns = reassembly_timeout_ns
        self.default_ttl = default_ttl
        self.stats = IpStats()
        self._ident = 0
        self._partials: dict[tuple[int, int], _Reassembly] = {}
        self._sinks: list[Callable[[IpDatagram], None]] = []
        # Claim the IP type's delivery path on this host's firmware.
        fw = gm_host.nic.firmware
        previous = gm_host.nic.deliver_up

        def deliver_up(tp: TransitPacket) -> None:
            if tp.ptype == TYPE_IP:
                self._on_fragment(tp)
            elif previous is not None:
                previous(tp)

        gm_host.nic.deliver_up = deliver_up

    # ------------------------------------------------------------------

    def on_datagram(self, sink: Callable[[IpDatagram], None]) -> None:
        """Register a delivery callback for reassembled datagrams."""
        self._sinks.append(sink)

    def send(self, dst: int, length: int,
             ttl: Optional[int] = None) -> int:
        """Send a datagram of ``length`` bytes; returns its ident.

        Fragments at the GM MTU; every fragment carries the 20-byte IP
        header on the wire.
        """
        if length < 0:
            raise ValueError("negative datagram length")
        self._ident += 1
        ident = (self.host << 16) | (self._ident & 0xFFFF)
        ttl = self.default_ttl if ttl is None else ttl
        offset = 0
        remaining = max(length, 1)  # zero-length datagram = 1 fragment
        self.stats.datagrams_sent += 1
        while remaining > 0:
            chunk = min(FRAGMENT_PAYLOAD, remaining)
            # Align non-final fragments down to the 8-byte unit.
            more = remaining - chunk > 0
            if more:
                chunk -= chunk % FRAG_UNIT
            self.stats.fragments_sent += 1
            self.gm_host.nic.firmware.host_send(
                dst=dst,
                payload_len=chunk + 20,  # fragment + IP header bytes
                ptype=TYPE_IP,
                gm={
                    "kind": "ip",
                    "ident": ident,
                    "frag_offset": offset,
                    "more": more,
                    "dgram_len": length,
                    "ttl": ttl,
                    "last": True,
                },
            )
            offset += chunk
            remaining -= chunk
        return ident

    # ------------------------------------------------------------------

    def _on_fragment(self, tp: TransitPacket) -> None:
        self.stats.fragments_received += 1
        ttl = tp.gm.get("ttl", self.default_ttl) - len(tp.itb_times)
        if ttl <= 0:
            self.stats.ttl_drops += 1
            return
        ident = tp.gm["ident"]
        key = (tp.src, ident)
        part = self._partials.get(key)
        if part is None:
            part = _Reassembly(first_at=self.sim.now)
            self._partials[key] = part
            self.sim.schedule(self.reassembly_timeout_ns,
                              lambda key=key: self._expire(key))
        offset = tp.gm["frag_offset"]
        chunk = tp.payload_len - 20
        part.received[offset] = chunk
        if not tp.gm.get("more", False):
            part.total_len = tp.gm["dgram_len"]
        self._try_complete(key, tp, ttl)

    def _try_complete(self, key: tuple[int, int],
                      tp: TransitPacket, ttl: int) -> None:
        part = self._partials.get(key)
        if part is None or part.total_len is None:
            return
        covered = sum(part.received.values())
        needed = max(part.total_len, 1)
        if covered < needed:
            return
        del self._partials[key]
        self.stats.datagrams_delivered += 1
        dgram = IpDatagram(
            src=tp.src, dst=self.host, length=part.total_len,
            ident=key[1], ttl=ttl, t_delivered=self.sim.now,
        )
        for sink in self._sinks:
            sink(dgram)

    def _expire(self, key: tuple[int, int]) -> None:
        if key in self._partials:
            del self._partials[key]
            self.stats.reassembly_timeouts += 1

    @property
    def partial_reassemblies(self) -> int:
        """Datagrams currently awaiting fragments."""
        return len(self._partials)
