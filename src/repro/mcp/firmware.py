"""The MCP firmware: original GM and the ITB-modified variant.

The firmware object of a NIC implements the paper's four state
machines and event handler (Figures 4-5) as discrete-event processes:

* **SDMA** — host memory -> NIC SRAM for outgoing packets (uses the
  shared host-DMA engine),
* **Send** — dispatch, route-table lookup, header stamping, and
  programming of the wire-side send DMA; also serves deferred
  in-transit re-injections with priority (``ITB packet pending``),
* **Recv** — reception bookkeeping, packet type decode, buffer
  management; in the modified firmware it additionally owns the
  **Early-Recv Packet** event raised when the first four bytes of a
  packet have arrived, the in-transit detection, and the immediate
  re-injection path that bypasses one dispatch cycle,
* **RDMA** — NIC SRAM -> host memory for delivered packets.

The :class:`OriginalFirmware` and :class:`ItbFirmware` differ exactly
where the paper says they do:

========================  =======================  =========================
stage                     original                 ITB-modified
========================  =======================  =========================
recv path, every packet   type decode              type decode + ITB check
                                                   (+ ~125 ns, Figure 7)
ITB packet arrives        unknown type -> dropped  Early-Recv -> detect ->
                                                   re-inject (~1.3 us,
                                                   Figure 8)
========================  =======================  =========================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from repro.core.timings import Timings
from repro.mcp.packet_format import (
    TYPE_GM,
    PacketImage,
    encode_packet,
)
from repro.network.worm import Worm
from repro.nic.lanai import Nic
from repro.routing.routes import ItbRoute
from repro.sim.engine import Event, Simulator, Timeout

__all__ = [
    "Firmware",
    "ItbFirmware",
    "McpEventKind",
    "OriginalFirmware",
    "TransitPacket",
]


class McpEventKind:
    """Event priorities of the MCP event handler (highest first).

    The ITB firmware inserts EARLY_RECV as a new *high-priority* event
    (paper Section 4); the relative order below mirrors Figure 5.
    """

    EARLY_RECV = 0
    ITB_PENDING = 1
    RECV_DONE = 2
    SEND_DONE = 3
    SDMA_DONE = 4


@dataclass
class TransitPacket:
    """A packet travelling through the system, across all its segments."""

    pid: int
    src: int
    dst: int
    route: ItbRoute
    payload_len: int
    ptype: int = TYPE_GM
    payload: bytes = b""
    #: GM-level annotations (port, sequence number, ack flag, ...).
    gm: dict = field(default_factory=dict)
    #: Index of the route segment currently being traversed.
    seg_index: int = 0
    #: Current wire image (offset advances as headers are consumed).
    image: Optional[PacketImage] = None
    # -- timestamps (ns) -------------------------------------------------
    t_api_send: Optional[float] = None     # gm_send() called
    t_inject: Optional[float] = None       # first byte onto the wire
    t_header_dst: Optional[float] = None   # early bytes at final NIC
    t_complete_dst: Optional[float] = None  # last byte at final NIC
    t_deliver: Optional[float] = None      # handed to host software
    itb_times: list = field(default_factory=list)  # per-ITB forward times
    dropped: bool = False
    drop_reason: str = ""
    on_delivered: Optional[Callable[["TransitPacket"], None]] = None
    #: Span-trace context (:class:`repro.obs.tracing.PacketTrace`) for
    #: sampled packets, ``None`` otherwise.  Duck-typed so this module
    #: never imports the tracing package.
    trace: Optional[object] = None

    @property
    def final_segment(self) -> bool:
        return self.seg_index == len(self.route.segments) - 1

    @property
    def wire_bytes(self) -> int:
        return 0 if self.image is None else self.image.wire_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TransitPacket {self.pid} {self.src}->{self.dst}"
            f" seg {self.seg_index}/{len(self.route.segments)}>"
        )


class Firmware:
    """Base class: the original GM MCP.

    Subclasses override the hooks marked below; everything else — the
    SDMA/Send/RDMA plumbing — is shared, because the paper's
    modification deliberately "keeps the main structure of the MCP".
    """

    name = "gm-original"
    supports_itb = False

    def __init__(self, nic: Nic) -> None:
        self.nic = nic
        self.sim: Simulator = nic.sim
        self.timings: Timings = nic.timings
        self._pid_counter = 0
        # The Send machine's prioritized work queue: the event handler
        # always dispatches the highest-priority pending event (paper
        # Figure 5) — ITB-pending re-injections outrank normal sends.
        from repro.sim.resources import PriorityStore, Resource

        self._send_work = PriorityStore(nic.sim, name=f"sendq[{nic.name}]")
        # The wire-side send DMA engine: one packet at a time, whether
        # driven by the Send machine or the Recv fast path.
        self._send_engine = Resource(nic.sim, capacity=1,
                                     name=f"senddma[{nic.name}]")
        # Worms stalled waiting for a receive buffer (backpressure).
        self._recv_waiters: Deque[tuple[Worm, Event]] = deque()
        self.sim.process(self._send_machine(), name=f"send[{nic.name}]")
        nic.attach_firmware(self)

    # ------------------------------------------------------------------
    # host -> wire (SDMA + Send machine)
    # ------------------------------------------------------------------

    def host_send(
        self,
        dst: int,
        payload_len: int,
        ptype: int = TYPE_GM,
        payload: bytes = b"",
        gm: Optional[dict] = None,
        on_delivered: Optional[Callable[[TransitPacket], None]] = None,
        route: Optional[ItbRoute] = None,
        trace: Optional[object] = None,
    ) -> TransitPacket:
        """Entry point from the host library: queue a send descriptor.

        The route is looked up in the NIC's SRAM route table unless an
        explicit one is supplied (hand-built test routes).
        """
        if route is None:
            if self.nic.route_table is None:
                raise RuntimeError(f"{self.nic.name}: no route table stamped")
            route = self.nic.route_table.lookup(dst)
        elif not isinstance(route, ItbRoute):
            # Accept a bare single-segment source route.
            route = ItbRoute((route,))
        self._pid_counter += 1
        tp = TransitPacket(
            pid=(self.nic.host << 20) | self._pid_counter,
            src=self.nic.host,
            dst=dst,
            route=route,
            payload_len=payload_len if not payload else len(payload),
            ptype=ptype,
            payload=payload,
            gm=gm or {},
            on_delivered=on_delivered,
            t_api_send=self.sim.now,
            trace=trace,
        )
        self.sim.process(self._sdma(tp), name=f"sdma[{self.nic.name}]")
        return tp

    def _sdma(self, tp: TransitPacket):
        """SDMA machine: move the message into NIC SRAM, then hand the
        descriptor to the Send machine."""
        t = self.timings
        dma = self.nic.host_dma
        arbiter = self.nic.arbiter
        tr = tp.trace
        if tr is not None:
            tr.begin("sdma", self.sim.now, component=self._trace_component)
        yield dma.request(owner=tp)
        payload = tp.payload if tp.payload else tp.payload_len
        tp.image = encode_packet(tp.route, payload, final_type=tp.ptype)
        arbiter.engine_start("host_dma")
        yield Timeout(t.dma_setup_ns + t.pci_time(len(tp.image.data)))
        arbiter.engine_stop("host_dma")
        dma.release(owner=tp)
        if tr is not None:
            now = self.sim.now
            tr.finish("sdma", now)
            tr.begin("send_queue", now, component=self._trace_component,
                     key="queue")
        self._send_work.put(("send", tp), priority=McpEventKind.SDMA_DONE)

    def _send_machine(self):
        """The Send state machine, fed by the prioritized event queue:
        pending ITB re-injections (``ITB packet pending``) outrank
        normal sends; ties dispatch FIFO."""
        t = self.timings
        arbiter = self.nic.arbiter
        while True:
            kind, tp = yield self._send_work.get()
            tr = tp.trace
            if tr is not None:
                now = self.sim.now
                tr.finish("queue", now)
                tr.begin("itb_dispatch" if kind == "itb" else "mcp_send",
                         now, component=self._trace_component, key="dispatch")
            if kind == "itb":
                # Deferred re-injection: one dispatch cycle was lost
                # (the paper's Recv fast path exists to avoid this).
                yield Timeout(arbiter.scaled(
                    t.cycles(t.itb_program_dma_cycles)
                    + t.cycles(t.mcp_send_cycles) * 0.5))
            else:
                # Dispatch + route stamp + program the send DMA.
                yield Timeout(arbiter.scaled(t.cycles(t.mcp_send_cycles)))
            yield from self._inject(tp)

    @property
    def _send_busy(self) -> bool:
        return not self._send_engine.free

    @property
    def _trace_component(self) -> str:
        return f"mcp[{self.nic.name}]"

    def _inject(self, tp: TransitPacket):
        """Run the wire-side send DMA: launch the worm for the current
        segment and hold the engine until the packet has drained.

        ``seg_index`` is captured at entry: downstream in-transit hosts
        mutate ``tp.seg_index`` while this engine is still draining.
        """
        seg_index = tp.seg_index
        yield self._send_engine.request(owner=tp)
        segment = tp.route.segments[seg_index]
        dest_fw = self._firmware_of(segment.dst)
        worm = Worm(
            self.sim, self.nic.fabric, segment, tp.image,
            observer=dest_fw, meta={"tp": tp},
        )
        if seg_index == 0:
            tp.t_inject = self.sim.now
            self.nic.stats.packets_sent += 1
            self.nic.stats.bytes_sent += tp.image.wire_length
        else:
            self.nic.stats.packets_forwarded += 1
        self.nic.emit("inject", pid=tp.pid, seg=seg_index,
                      bytes=tp.image.wire_length)
        done = Event(self.sim, name=f"drain[{self.nic.name}]")
        worm.meta["on_drained"] = done
        self.nic.arbiter.engine_start("send_dma")
        tr = tp.trace
        if tr is not None:
            # Dispatch (or ITB-program) work ends as the worm launches;
            # the wire span opened by the worm takes over from here.
            tr.finish("dispatch", self.sim.now)
        worm.launch()
        yield done
        self.nic.arbiter.engine_stop("send_dma")
        self._send_engine.release(owner=tp)
        if seg_index > 0:
            # Re-injection finished: free the in-transit buffer slot.
            self.nic.recv_buffers.release(tp)
            if tr is not None:
                tr.finish(f"itb_buffer{seg_index - 1}", self.sim.now)
            self.nic.emit("itb_buffer_release", pid=tp.pid, seg=seg_index)
            self._admit_recv_waiter()

    def _firmware_of(self, host: int) -> "Firmware":
        fw = self.nic.fabric.meta["firmware_by_host"][host]
        return fw

    # ------------------------------------------------------------------
    # wire -> host (Recv machine + RDMA), WormObserver interface
    # ------------------------------------------------------------------

    def on_header(self, worm: Worm, t_now: float) -> Optional[Event]:
        """First bytes of a packet have arrived.

        The stock firmware just claims a receive buffer; when both
        buffers are busy the reception cannot be programmed and the
        packet stalls on the wire (backpressure), expressed by the
        returned gate event.
        """
        tp: TransitPacket = worm.meta["tp"]
        return self._claim_recv_buffer(worm, tp)

    def on_complete(self, worm: Worm, t_now: float) -> None:
        """Last byte arrived: decode the type, deliver or drop."""
        tp: TransitPacket = worm.meta["tp"]
        drained = worm.meta.get("on_drained")
        if drained is not None and not drained.triggered:
            drained.succeed()
        if tp.dropped:
            # Flushed at on_header (buffer-pool overflow): the wire
            # drained into the bit bucket.  Report final disposition.
            if tp.trace is not None:
                tp.trace.attempt.close(t_now, tp.drop_reason or "dropped")
            if tp.on_delivered is not None:
                tp.on_delivered(tp)
            return
        self.nic.stats.packets_received += 1
        self.nic.stats.bytes_received += worm.image.wire_length
        image = worm.image
        if image.is_itb():
            # The original MCP does not know the ITB packet type:
            # the packet is dropped (and counted) — a correctness
            # experiment in the tests, not a paper scenario.
            self.nic.stats.packets_dropped_unknown += 1
            tp.dropped = True
            tp.drop_reason = "unknown-type"
            self.nic.recv_buffers.release(tp)
            self._admit_recv_waiter()
            self.nic.emit("drop_unknown_type", pid=tp.pid)
            if tp.trace is not None:
                tp.trace.attempt.close(t_now, "unknown-type")
            if tp.on_delivered is not None:
                tp.on_delivered(tp)
            return
        tp.image = image
        tp.t_complete_dst = t_now
        self.sim.process(self._recv_and_rdma(tp), name=f"recv[{self.nic.name}]")

    def _recv_and_rdma(self, tp: TransitPacket):
        """Recv machine processing, then RDMA into host memory."""
        t = self.timings
        arbiter = self.nic.arbiter
        tr = tp.trace
        if tr is not None:
            tr.begin("recv", self.sim.now, component=self._trace_component)
        yield Timeout(arbiter.scaled(
            t.cycles(t.mcp_recv_cycles) + self._recv_extra_ns()))
        dma = self.nic.host_dma
        yield dma.request(owner=tp)
        arbiter.engine_start("host_dma")
        yield Timeout(t.dma_setup_ns + t.pci_time(tp.wire_bytes))
        arbiter.engine_stop("host_dma")
        dma.release(owner=tp)
        self.nic.recv_buffers.release(tp)
        self._admit_recv_waiter()
        tp.t_deliver = self.sim.now
        if tr is not None:
            tr.finish("recv", tp.t_deliver)
            tr.attempt.close(tp.t_deliver)
        self.nic.emit("deliver", pid=tp.pid)
        if self.nic.deliver_up is not None:
            self.nic.deliver_up(tp)
        if tp.on_delivered is not None:
            tp.on_delivered(tp)

    def _recv_extra_ns(self) -> float:
        """Hook: extra per-packet receive-path cost (Figure 7 delta)."""
        return 0.0

    # -- receive buffer management ----------------------------------------

    def _claim_recv_buffer(
        self, worm: Worm, tp: TransitPacket
    ) -> Optional[Event]:
        buffers = self.nic.recv_buffers
        size = worm.image.wire_length
        if buffers.try_accept(tp, size):
            tp.t_header_dst = self.sim.now if tp.final_segment else tp.t_header_dst
            return None
        if buffers.drops_when_full():
            # Buffer-pool overflow: flush the packet (GM retransmits).
            tp.dropped = True
            tp.drop_reason = "buffer-pool-flush"
            self.nic.stats.packets_flushed += 1
            self.nic.emit("flush", pid=tp.pid)
            return None
        # Fixed buffers: stall the wire until a slot frees.
        gate = Event(self.sim, name=f"bufwait[{self.nic.name}]")
        self._recv_waiters.append((worm, gate))
        self.nic.emit("recv_blocked", pid=tp.pid)
        stall_start = self.sim.now
        tr = tp.trace
        wait_span = None if tr is None else tr.begin(
            "recv_wait", stall_start, component=self._trace_component)

        def _account(_ev: Event, start=stall_start) -> None:
            self.nic.stats.recv_blocked_ns += self.sim.now - start
            if wait_span is not None:
                wait_span.close(self.sim.now)

        gate.add_callback(_account)
        return gate

    def _admit_recv_waiter(self) -> None:
        while self._recv_waiters and self.nic.recv_buffers.can_accept():
            worm, gate = self._recv_waiters.popleft()
            tp = worm.meta["tp"]
            if tp.dropped or worm._killed:
                # The stalled packet was lost while it waited (fault
                # injection killed the worm): accepting it now would
                # leak the buffer slot.  Skip to the next waiter.
                continue
            self.nic.recv_buffers.try_accept(tp, worm.image.wire_length)
            gate.succeed()


class OriginalFirmware(Firmware):
    """Alias for clarity at call sites."""

    name = "gm-original"


class ItbFirmware(Firmware):
    """The ITB-modified MCP (paper Section 4).

    Differences from :class:`OriginalFirmware`:

    * every received packet pays the new type-check instructions
      (:attr:`Timings.itb_check_cycles` — the ~125 ns of Figure 7);
    * the **Early-Recv Packet** event fires once the first four bytes
      are in: if they announce an in-transit packet, the Recv machine
      either programs the send DMA immediately (send engine free —
      saving a dispatch cycle) or raises ``ITB packet pending`` for
      the Send machine to serve with priority;
    * re-injection is cut-through: it starts while the tail of the
      packet is still being received.
    """

    name = "gm-itb"
    supports_itb = True

    def _recv_extra_ns(self) -> float:
        return self.timings.cycles(self.timings.itb_check_cycles)

    def on_header(self, worm: Worm, t_now: float) -> Optional[Event]:
        """Early-Recv: divert in-transit packets to the forward path."""
        tp: TransitPacket = worm.meta["tp"]
        image = worm.image
        if image.is_itb() and not tp.final_segment:
            return self._early_recv_itb(worm, tp)
        return super().on_header(worm, t_now)

    def on_complete(self, worm: Worm, t_now: float) -> None:
        """In-transit packets finish reception here: bookkeeping only.

        The forwarding work was already started by the Early-Recv
        handler (cut-through); the buffer slot is released when the
        re-injection drains, not now.
        """
        if worm.image.is_itb() and not worm.meta["tp"].dropped:
            drained = worm.meta.get("on_drained")
            if drained is not None and not drained.triggered:
                drained.succeed()
            self.nic.stats.packets_received += 1
            self.nic.stats.bytes_received += worm.image.wire_length
            self.nic.emit("itb_recv_complete", pid=worm.meta["tp"].pid)
            return
        super().on_complete(worm, t_now)

    def _early_recv_itb(self, worm: Worm, tp: TransitPacket) -> Optional[Event]:
        """Early-Recv handler for an in-transit packet."""
        gate = self._claim_recv_buffer(worm, tp)
        if tp.dropped:
            return gate
        tr = tp.trace
        if tr is not None:
            # Buffer residency: claim here, released when this host's
            # re-injection drains (cut-through — it overlaps the next
            # segment's wire span).
            tr.begin("itb_buffer", self.sim.now,
                     component=self._trace_component,
                     key=f"itb_buffer{tp.seg_index}", seg=tp.seg_index)
        self.nic.emit("early_recv", pid=tp.pid, seg=tp.seg_index)
        self.sim.process(
            self._forward(worm, tp), name=f"itbfwd[{self.nic.name}]"
        )
        return gate

    def _forward(self, worm: Worm, tp: TransitPacket):
        """Detect, strip the stage header, and re-inject."""
        t = self.timings
        arbiter = self.nic.arbiter
        t_start = self.sim.now
        tr = tp.trace
        if tr is not None:
            tr.begin("itb_detect", t_start, component=self._trace_component)
        # Event-handler dispatch + in-transit detection code.
        yield Timeout(arbiter.scaled(t.cycles(t.itb_early_recv_cycles)))
        if tp.dropped:
            # Killed (fault) while the detection code ran: the loss
            # path already freed this host's buffer slot — do not
            # re-inject or take ownership of the release.
            if tr is not None:
                tr.finish("itb_detect", self.sim.now)
            return
        _remaining_len, image2 = worm.image.strip_itb_stage()
        tp.image = image2
        tp.seg_index += 1
        tp.itb_times.append(t_start)
        if tr is not None:
            tr.finish("itb_detect", self.sim.now)
        if not self._send_busy and len(self._send_work) == 0:
            # Fast path: the Recv machine programs the send DMA itself,
            # avoiding one dispatching cycle (paper Figure 4, dashed).
            self.nic.stats.itb_immediate += 1
            if tr is not None:
                tr.begin("itb_program", self.sim.now,
                         component=self._trace_component, key="dispatch")
            yield Timeout(arbiter.scaled(t.cycles(t.itb_program_dma_cycles)))
            self.nic.emit("reinject_immediate", pid=tp.pid, seg=tp.seg_index)
            yield from self._inject(tp)
        else:
            # ITB packet pending: served by the Send machine with
            # priority as soon as it frees up.
            self.nic.stats.itb_pending += 1
            self.nic.emit("reinject_pending", pid=tp.pid, seg=tp.seg_index)
            if tr is not None:
                tr.begin("itb_queue", self.sim.now,
                         component=self._trace_component, key="queue")
            self._send_work.put(("itb", tp),
                                priority=McpEventKind.ITB_PENDING)
