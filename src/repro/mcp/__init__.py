"""The Myrinet Control Program (MCP) model.

The MCP is the firmware running on the LANai processor inside every
NIC.  This package models:

* the Myrinet packet formats — original and ITB-extended
  (:mod:`repro.mcp.packet_format`, paper Figure 3),
* the four MCP state machines (SDMA, RDMA, Send, Recv) coordinated by
  a prioritized event handler (:mod:`repro.mcp.firmware`, paper
  Figures 4–5),
* the **original GM firmware** and the **ITB-modified firmware** —
  the paper's contribution is precisely the delta between the two,
* NIC packet buffering: the stock two-buffer queues and the proposed
  circular buffer pool extension (:mod:`repro.mcp.buffers`).
"""

from repro.mcp.packet_format import (
    CRC_LEN,
    ITB_HEADER_LEN,
    TYPE_GM,
    TYPE_IP,
    TYPE_ITB,
    TYPE_LEN,
    TYPE_MAPPING,
    PacketFormatError,
    PacketImage,
    decode_header,
    encode_packet,
)
from repro.mcp.buffers import BufferPool, FixedBuffers, NicBufferError

# The firmware module sits high in the import graph (it pulls in the
# network layer, which needs this package's leaf modules), so its
# names resolve lazily (PEP 562).
_LAZY_FIRMWARE = {"Firmware", "ItbFirmware", "McpEventKind",
                  "OriginalFirmware", "TransitPacket"}


def __getattr__(name: str):
    if name in _LAZY_FIRMWARE:
        from repro.mcp import firmware

        return getattr(firmware, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "TransitPacket",
    "BufferPool",
    "CRC_LEN",
    "Firmware",
    "FixedBuffers",
    "ITB_HEADER_LEN",
    "ItbFirmware",
    "McpEventKind",
    "NicBufferError",
    "OriginalFirmware",
    "PacketFormatError",
    "PacketImage",
    "TYPE_GM",
    "TYPE_IP",
    "TYPE_ITB",
    "TYPE_LEN",
    "TYPE_MAPPING",
    "decode_header",
    "encode_packet",
]
