"""Myrinet packet formats, original and ITB-extended (paper Figure 3).

Original Myrinet packet (Fig. 3a)::

    | path bytes ... | type (2B) | payload | CRC (1B) |

Each switch consumes (strips) the leading path byte to select its
output port, so the *type* field is what the destination NIC sees
first.

ITB packet (Fig. 3b) — a path through ``k`` in-transit hosts carries
``k + 1`` concatenated sub-paths, each non-final one announced by an
ITB type tag and the length of the remaining path::

    | path_0 | ITB (2B) | len (1B) | path_1 | ... | type (2B) | payload | CRC |

When the packet surfaces at an in-transit host (after the switches
consumed ``path_0``), the NIC sees ``ITB | len | path_1 | ...``: the
firmware recognizes the ITB tag within the first 4 bytes, strips the
tag + length, and re-injects the remainder — which is again a
well-formed Myrinet packet whose leading bytes are ``path_1``.

This module builds and manipulates real byte images so tests exercise
the exact header arithmetic the MCP performs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.routing.routes import ItbRoute, SourceRoute

__all__ = [
    "CRC_LEN",
    "ITB_HEADER_LEN",
    "PacketFormatError",
    "PacketImage",
    "TYPE_GM",
    "TYPE_IP",
    "TYPE_ITB",
    "TYPE_LEN",
    "TYPE_MAPPING",
    "decode_header",
    "encode_packet",
]


class PacketFormatError(ValueError):
    """Raised on malformed packet images or encode errors."""


# Two-byte packet types (values assigned by Myricom upon request; the
# ITB value here is the reproduction's stand-in).
TYPE_GM = 0x5047       # 'PG' — normal GM packet
TYPE_MAPPING = 0x504D  # 'PM' — mapper packet
TYPE_IP = 0x5049       # 'PI' — encapsulated IP
TYPE_ITB = 0x4954      # 'IT' — in-transit packet

TYPE_LEN = 2
CRC_LEN = 1
#: Bytes an in-transit host strips per ITB stage: type tag + length.
ITB_HEADER_LEN = TYPE_LEN + 1

_KNOWN_TYPES = {TYPE_GM, TYPE_MAPPING, TYPE_IP, TYPE_ITB}


def _route_byte(port: int) -> int:
    """Myrinet routing byte for an output port.

    Real Myrinet encodes a signed port delta; an absolute port number
    (< 64, flagged) is an equivalent encoding for simulation and keeps
    the byte human-readable in hex dumps.
    """
    if not 0 <= port < 64:
        raise PacketFormatError(f"port {port} not encodable in a route byte")
    return 0x80 | port


def _decode_route_byte(byte: int) -> int:
    if not byte & 0x80:
        raise PacketFormatError(f"byte 0x{byte:02x} is not a route byte")
    return byte & 0x3F


@dataclass(frozen=True)
class PacketImage:
    """A packet's wire image plus cursor state.

    ``data`` never changes; ``offset`` advances as switches strip route
    bytes and in-transit hosts strip ITB stage headers.  ``wire_length``
    (bytes currently on the wire) is therefore ``len(data) - offset``.
    """

    data: bytes
    offset: int = 0
    #: User payload length (for bookkeeping; also recoverable by parse).
    payload_len: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.offset <= len(self.data):
            raise PacketFormatError("offset outside packet data")

    # -- views -----------------------------------------------------------

    @property
    def wire_length(self) -> int:
        return len(self.data) - self.offset

    def peek(self, n: int) -> bytes:
        """First ``n`` bytes currently on the wire."""
        return self.data[self.offset:self.offset + n]

    def leading_is_route_byte(self) -> bool:
        """Whether the next wire byte is a switch routing byte."""
        return self.wire_length > 0 and bool(self.data[self.offset] & 0x80)

    def leading_type(self) -> int:
        """The 2-byte type at the current cursor (big-endian)."""
        raw = self.peek(TYPE_LEN)
        if len(raw) < TYPE_LEN:
            raise PacketFormatError("packet too short for a type field")
        return (raw[0] << 8) | raw[1]

    def is_itb(self) -> bool:
        """Whether the leading type announces an in-transit packet."""
        return self.leading_type() == TYPE_ITB

    # -- cursor transitions ------------------------------------------------

    def strip_route_byte(self) -> tuple[int, "PacketImage"]:
        """Switch behaviour: consume the leading route byte.

        Returns ``(output_port, new_image)``.
        """
        if not self.leading_is_route_byte():
            raise PacketFormatError("leading byte is not a route byte")
        port = _decode_route_byte(self.data[self.offset])
        return port, replace(self, offset=self.offset + 1)

    def consume_route_bytes(self, ports: Sequence[int]) -> "PacketImage":
        """Whole-segment switch behaviour in one step.

        Validates that the leading wire bytes are route bytes decoding
        to ``ports`` (in order) and strips them all — one cursor
        advance instead of one :func:`dataclasses.replace` per hop.
        The worm layer shares this single decode between its stepped
        and express paths.
        """
        data, pos = self.data, self.offset
        end = len(data)
        for port in ports:
            if pos >= end or not data[pos] & 0x80:
                raise PacketFormatError("leading byte is not a route byte")
            decoded = data[pos] & 0x3F
            if decoded != port:
                raise PacketFormatError(
                    f"route byte {decoded} != expected port {port}"
                )
            pos += 1
        return replace(self, offset=pos)

    def strip_itb_stage(self) -> tuple[int, "PacketImage"]:
        """In-transit host behaviour: strip ``ITB | len``.

        Returns ``(remaining_path_len, new_image)`` where the new image
        begins with the next sub-path's route bytes.
        """
        if self.leading_type() != TYPE_ITB:
            raise PacketFormatError("not positioned at an ITB stage header")
        length_at = self.offset + TYPE_LEN
        if length_at >= len(self.data):
            raise PacketFormatError("truncated ITB stage header")
        remaining = self.data[length_at]
        return remaining, replace(self, offset=self.offset + ITB_HEADER_LEN)

    def payload(self) -> bytes:
        """User payload bytes (walks the remaining header)."""
        info = decode_header(self)
        start = len(self.data) - CRC_LEN - info.payload_len
        return self.data[start:len(self.data) - CRC_LEN]

    def crc_ok(self) -> bool:
        """Check the 1-byte XOR CRC over everything after the full path.

        Myrinet recomputes the CRC at each switch as route bytes are
        stripped; a XOR-of-payload+type checksum is invariant under
        route-byte stripping, which keeps this model simple and exact.
        """
        info = decode_header(self)
        covered = self.data[len(self.data) - CRC_LEN - info.payload_len - TYPE_LEN:
                            len(self.data) - CRC_LEN]
        return _xor_crc(covered) == self.data[-1]


@dataclass(frozen=True)
class HeaderInfo:
    """Result of parsing a packet image from its current cursor."""

    #: Route bytes remaining before the next type field.
    leading_route_bytes: int
    #: Sequence of (type, route_byte_counts) stages; last stage is the
    #: final packet type with no following path.
    stages: tuple[int, ...]
    final_type: int
    payload_len: int
    n_itb_stages: int


def decode_header(image: PacketImage) -> HeaderInfo:
    """Parse the remaining header structure of ``image``.

    Walks: route bytes, then either an ITB stage (``ITB | len`` then
    more route bytes) or the final type.  Raises on malformed images.
    """
    data, pos = image.data, image.offset
    end = len(data)
    leading = 0
    while pos < end and data[pos] & 0x80:
        leading += 1
        pos += 1
    stages: list[int] = []
    n_itb = 0
    while True:
        if pos + TYPE_LEN > end:
            raise PacketFormatError("ran off packet while seeking type")
        ptype = (data[pos] << 8) | data[pos + 1]
        if ptype == TYPE_ITB:
            n_itb += 1
            stages.append(ptype)
            pos += TYPE_LEN
            if pos >= end:
                raise PacketFormatError("truncated ITB stage")
            pos += 1  # remaining-length byte
            # consume this stage's route bytes
            while pos < end and data[pos] & 0x80:
                pos += 1
            continue
        if ptype not in _KNOWN_TYPES:
            raise PacketFormatError(f"unknown packet type 0x{ptype:04x}")
        stages.append(ptype)
        payload_len = end - CRC_LEN - (pos + TYPE_LEN)
        if payload_len < 0:
            raise PacketFormatError("packet shorter than type + CRC")
        return HeaderInfo(
            leading_route_bytes=leading,
            stages=tuple(stages),
            final_type=ptype,
            payload_len=payload_len,
            n_itb_stages=n_itb,
        )


def _xor_crc(data: bytes) -> int:
    crc = 0
    for b in data:
        crc ^= b
    return crc


def encode_packet(
    route: ItbRoute | SourceRoute,
    payload: bytes | int,
    final_type: int = TYPE_GM,
) -> PacketImage:
    """Encode a packet for ``route`` (Fig. 3a when it has no ITBs,
    Fig. 3b otherwise).

    ``payload`` may be real bytes or just a length (content zeros) for
    performance runs where only sizes matter.
    """
    if isinstance(route, SourceRoute):
        route = ItbRoute((route,))
    if isinstance(payload, int):
        payload_bytes = bytes(payload)
    else:
        payload_bytes = bytes(payload)
    if final_type == TYPE_ITB:
        raise PacketFormatError("final type cannot be the ITB tag")

    segments = route.segments
    # Build from the tail: final type + payload + CRC, then prepend
    # stages right-to-left.
    tail = bytes([final_type >> 8, final_type & 0xFF]) + payload_bytes
    tail += bytes([_xor_crc(bytes([final_type >> 8, final_type & 0xFF])
                            + payload_bytes)])

    body = tail
    for seg in reversed(segments[1:]):
        path = bytes(_route_byte(p) for p in seg.ports)
        remaining_path_len = len(path)
        if remaining_path_len > 255:
            raise PacketFormatError("sub-path longer than 255 switches")
        stage = (bytes([TYPE_ITB >> 8, TYPE_ITB & 0xFF])
                 + bytes([remaining_path_len]) + path)
        body = stage + body
    first_path = bytes(_route_byte(p) for p in segments[0].ports)
    data = first_path + body
    return PacketImage(data=data, offset=0, payload_len=len(payload_bytes))
