"""NIC packet buffering.

Two implementations behind one interface:

* :class:`FixedBuffers` — the stock GM arrangement the paper keeps
  ("the length of both sending and receiving queues have been kept
  without changes from the original MCP (two buffers each)").
* :class:`BufferPool` — the circular-queue extension the paper
  *proposes* (Section 4): a ring managed with head/tail pointers;
  when full, a newly arriving packet is **flushed** and GM's
  reliability layer retransmits it later.

Both track byte occupancy against the NIC SRAM budget so tests can
exercise the "8 MB seems to be enough" claim quantitatively.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

__all__ = ["BufferPool", "FixedBuffers", "NicBufferError"]


class NicBufferError(RuntimeError):
    """Raised on buffer misuse (free of an un-held slot, etc.)."""


@dataclass
class _Slot:
    packet: Any
    size: int


class FixedBuffers:
    """``n`` fixed packet slots (GM default: two).

    ``try_accept`` fails when all slots are busy — with the stock
    firmware the Recv machine then simply does not program the next
    reception, exerting backpressure onto the wire (the wormhole
    blocks; nothing is dropped).
    """

    kind = "fixed"

    def __init__(self, n_slots: int = 2, name: str = "") -> None:
        if n_slots < 1:
            raise ValueError("need at least one slot")
        self.n_slots = n_slots
        self.name = name
        self._slots: Deque[_Slot] = deque()
        self.accepted = 0
        self.rejected = 0

    @property
    def free_slots(self) -> int:
        return self.n_slots - len(self._slots)

    @property
    def n_packets(self) -> int:
        return len(self._slots)

    @property
    def occupancy_bytes(self) -> int:
        return sum(s.size for s in self._slots)

    def can_accept(self) -> bool:
        """Whether a slot is free right now."""
        return len(self._slots) < self.n_slots

    def try_accept(self, packet: Any, size: int) -> bool:
        """Claim a slot for an arriving packet; False when all busy."""
        if not self.can_accept():
            self.rejected += 1
            return False
        self._slots.append(_Slot(packet, size))
        self.accepted += 1
        return True

    def release(self, packet: Any) -> None:
        """Free the slot holding ``packet`` (completion of RDMA or
        re-injection)."""
        for i, slot in enumerate(self._slots):
            if slot.packet is packet:
                del self._slots[i]
                return
        raise NicBufferError(f"{self.name}: releasing packet not held")

    def drops_when_full(self) -> bool:
        """Fixed buffers block the wire instead of dropping."""
        return False


class BufferPool:
    """Circular buffer pool (the paper's proposed extension).

    A ring of ``capacity_bytes`` managed by two pointers ("one pointing
    the first incoming packet and the other pointing the next available
    buffer").  A packet arriving when the ring cannot hold it is
    flushed — the GM layer's retransmission recovers it.
    """

    kind = "pool"

    def __init__(self, capacity_bytes: int, name: str = "") -> None:
        if capacity_bytes < 1:
            raise ValueError("pool needs capacity")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._ring: Deque[_Slot] = deque()
        self._used = 0
        self.accepted = 0
        self.flushed = 0

    @property
    def occupancy_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    @property
    def n_packets(self) -> int:
        return len(self._ring)

    def can_accept(self, size: Optional[int] = None) -> bool:
        """Whether ``size`` more bytes fit in the ring right now."""
        return (size or 0) <= self.free_bytes

    def try_accept(self, packet: Any, size: int) -> bool:
        """Append at the tail pointer; False (flush) when it can't fit."""
        if size > self.free_bytes:
            self.flushed += 1
            return False
        self._ring.append(_Slot(packet, size))
        self._used += size
        self.accepted += 1
        return True

    def release(self, packet: Any) -> None:
        """Free a held packet.

        The ring frees space at the *head* pointer; out-of-order frees
        (a re-injection completing before an older packet's) mark the
        slot dead and space is reclaimed lazily when the head catches
        up, matching a real two-pointer ring.  Byte accounting reflects
        the reclaimable space immediately for simplicity of the
        occupancy metric.
        """
        for i, slot in enumerate(self._ring):
            if slot.packet is packet:
                self._used -= slot.size
                del self._ring[i]
                return
        raise NicBufferError(f"{self.name}: releasing packet not held")

    def drops_when_full(self) -> bool:
        """A full pool flushes the arriving packet (GM retransmits)."""
        return True
