"""EXP-F8: per-ITB ejection/re-injection overhead (paper Figure 8).

Protocol (paper Section 5): half-round-trip latency between hosts 1
and 2 over two paths that cross the same number of switches (5)
through the same kinds of ports — the plain up*/down* path (looping
through switch 2) and the path through one in-transit host.  Since
the test measures half-RTT and only one direction carries the ITB,
the per-ITB overhead is the difference of the two half-RTT curves
**multiplied by two**.

Paper results to match in shape: ~1.3 us per ITB, relative overhead
~10 % (short) falling to ~3 % (long), both far above the earlier
simulation estimate of ~0.5 us [2,3].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.fig7 import DEFAULT_SIZES
from repro.harness.paths import fig6_paths

__all__ = ["Fig8Result", "Fig8Row", "measure_fig8_point", "run_fig8"]


@dataclass
class Fig8Row:
    """One message size: UD vs UD-ITB half-RTT and the ITB overhead."""

    size: int
    ud_ns: float       # half-RTT over the 5-crossing up*/down* path
    ud_itb_ns: float   # half-RTT with one ITB in the forward direction

    @property
    def overhead_ns(self) -> float:
        """Per-ITB overhead: half-RTT difference x 2 (paper protocol)."""
        return 2.0 * (self.ud_itb_ns - self.ud_ns)

    @property
    def one_way_itb_ns(self) -> float:
        """One-way latency of the ITB path, derived from the half-RTTs."""
        return self.ud_ns + self.overhead_ns

    @property
    def relative_pct(self) -> float:
        """Overhead relative to the one-way latency of the ITB path."""
        return 100.0 * self.overhead_ns / self.one_way_itb_ns


@dataclass
class Fig8Result:
    rows: list[Fig8Row] = field(default_factory=list)
    iterations: int = 100

    @property
    def mean_overhead_ns(self) -> float:
        return float(np.mean([r.overhead_ns for r in self.rows]))

    @property
    def relative_short_pct(self) -> float:
        return self.rows[0].relative_pct

    @property
    def relative_long_pct(self) -> float:
        return self.rows[-1].relative_pct


def _measure(route_ab, size: int, iterations: int,
             timings: Optional[Timings], seed: int,
             build: Callable = build_network) -> float:
    config = NetworkConfig(firmware="itb", routing="updown", seed=seed)
    if timings is not None:
        config.timings = timings
    net = build("fig6", config=config)
    paths = fig6_paths(net.topo, net.roles)
    chosen = paths.ud5 if route_ab == "ud5" else paths.itb5
    result = net.ping_pong(
        "host1", "host2", size=size, iterations=iterations,
        route_ab=chosen, route_ba=paths.rev2,
    )
    return result.mean_ns


def measure_fig8_point(size: int, iterations: int,
                       timings: Optional[Timings], seed: int,
                       build: Callable = build_network) -> Fig8Row:
    """One independent Figure 8 point: both paths at one size.

    Both series run the ITB-modified firmware (as on the real testbed
    — the firmware is installed on all NICs; only the path differs)
    with identical seeds, so the delta isolates the ejection +
    re-injection cost.
    """
    ud = _measure("ud5", size, iterations, timings, seed, build)
    ud_itb = _measure("itb5", size, iterations, timings, seed, build)
    return Fig8Row(size=size, ud_ns=ud, ud_itb_ns=ud_itb)


def run_fig8(
    sizes: Sequence[int] = DEFAULT_SIZES,
    iterations: int = 100,
    timings: Optional[Timings] = None,
    seed: int = 2001,
) -> Fig8Result:
    """Regenerate Figure 8 (through the unified experiment pipeline)."""
    from repro.exp import ExperimentSpec, run_experiment

    return run_experiment(ExperimentSpec(
        experiment="fig8", sizes=tuple(sizes), iterations=iterations,
        timings=timings, seed=seed,
    ))
