"""Generic parameter sweeps.

Experiments beyond the fixed figure set — sensitivity studies over
timing constants, topology parameters, or load knobs — all reduce to
"run a function over the cartesian product of parameter values and
tabulate".  :func:`sweep` does exactly that, deterministically, with
optional progress callbacks, crash isolation per point, and opt-in
parallel evaluation (``jobs > 1``) that merges results by point index
so parallel and serial sweeps tabulate identically.
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = ["SweepPoint", "SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter combination."""

    params: dict
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All evaluated points plus tabulation helpers."""

    axes: dict
    points: list[SweepPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def failures(self) -> list[SweepPoint]:
        return [p for p in self.points if not p.ok]

    def values(self, **fixed: Any) -> list[Any]:
        """Values of points matching the ``fixed`` parameter subset."""
        out = []
        for p in self.points:
            if p.ok and all(p.params.get(k) == v for k, v in fixed.items()):
                out.append(p.value)
        return out

    def best(self, key: Callable[[Any], float],
             maximize: bool = True) -> SweepPoint:
        """The point whose value optimizes ``key``."""
        ok_points = [p for p in self.points if p.ok]
        if not ok_points:
            raise ValueError("sweep produced no successful points")
        chooser = max if maximize else min
        return chooser(ok_points, key=lambda p: key(p.value))

    def table_rows(
        self, extract: Callable[[Any], Sequence[Any]]
    ) -> list[Sequence[Any]]:
        """Rows of (param values..., extracted values...) per point."""
        keys = list(self.axes)
        rows = []
        for p in self.points:
            cells = [p.params[k] for k in keys]
            if p.ok:
                cells.extend(extract(p.value))
            else:
                cells.append(f"ERROR: {p.error}")
            rows.append(tuple(cells))
        return rows


def _evaluate(fn: Callable[..., Any], params: dict, fixed: dict,
              isolate_errors: bool) -> SweepPoint:
    """Evaluate one parameter combination into a :class:`SweepPoint`."""
    try:
        return SweepPoint(params=params, value=fn(**params, **fixed))
    except Exception as exc:
        if not isolate_errors:
            raise
        return SweepPoint(params=params, error=repr(exc))


def _evaluate_payload(payload: tuple) -> SweepPoint:
    """Pool-worker entry point (module-level so it pickles)."""
    fn, params, fixed, isolate_errors = payload
    return _evaluate(fn, params, fixed, isolate_errors)


def _sweep_parallel(fn: Callable[..., Any], combos: list[dict],
                    fixed: dict, isolate_errors: bool,
                    jobs: int) -> list[SweepPoint]:
    """Fan combos over a fork pool; order-preserving, serial fallback."""
    try:
        mp = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        return [_evaluate(fn, params, fixed, isolate_errors)
                for params in combos]
    payloads = [(fn, params, fixed, isolate_errors) for params in combos]
    with mp.Pool(processes=min(jobs, len(payloads))) as pool:
        # pool.map preserves input order: merge is by point index.
        return pool.map(_evaluate_payload, payloads)


def sweep(
    fn: Callable[..., Any],
    axes: Mapping[str, Sequence[Any]],
    fixed: Optional[Mapping[str, Any]] = None,
    on_point: Optional[Callable[[SweepPoint], None]] = None,
    isolate_errors: bool = False,
    jobs: int = 1,
) -> SweepResult:
    """Evaluate ``fn(**params)`` over the cartesian product of ``axes``.

    Parameters
    ----------
    fn:
        The experiment; receives one keyword per axis plus ``fixed``.
    axes:
        Ordered mapping of parameter name -> values (iteration order is
        the cartesian product in the mapping's key order).
    fixed:
        Extra keyword arguments passed to every call.
    on_point:
        Progress callback invoked after each evaluation (with
        ``jobs > 1`` it fires in the parent, in point order, after the
        pool drains).
    isolate_errors:
        When True, an exception in one point is recorded on that
        point instead of aborting the sweep.
    jobs:
        Process-pool width; ``1`` (default) evaluates serially.
        Points are independent by construction, results are merged by
        point index, and the simulation is deterministic, so the
        tabulated result does not depend on ``jobs`` (``fn`` must be
        picklable — a module-level function — to fan out).
    """
    if not axes:
        raise ValueError("sweep needs at least one axis")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    fixed = dict(fixed or {})
    for k in fixed:
        if k in axes:
            raise ValueError(f"parameter {k!r} is both an axis and fixed")
    result = SweepResult(axes=dict(axes))
    names = list(axes)
    combos = [dict(zip(names, combo))
              for combo in itertools.product(*(axes[k] for k in names))]
    if jobs > 1 and len(combos) > 1:
        for point in _sweep_parallel(fn, combos, fixed,
                                     isolate_errors, jobs):
            result.points.append(point)
            if on_point is not None:
                on_point(point)
    else:
        for params in combos:
            point = _evaluate(fn, params, fixed, isolate_errors)
            result.points.append(point)
            if on_point is not None:
                on_point(point)
    return result
