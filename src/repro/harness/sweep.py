"""Generic parameter sweeps.

Experiments beyond the fixed figure set — sensitivity studies over
timing constants, topology parameters, or load knobs — all reduce to
"run a function over the cartesian product of parameter values and
tabulate".  :func:`sweep` does exactly that, deterministically, with
optional progress callbacks and crash isolation per point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = ["SweepPoint", "SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter combination."""

    params: dict
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All evaluated points plus tabulation helpers."""

    axes: dict
    points: list[SweepPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def failures(self) -> list[SweepPoint]:
        return [p for p in self.points if not p.ok]

    def values(self, **fixed: Any) -> list[Any]:
        """Values of points matching the ``fixed`` parameter subset."""
        out = []
        for p in self.points:
            if p.ok and all(p.params.get(k) == v for k, v in fixed.items()):
                out.append(p.value)
        return out

    def best(self, key: Callable[[Any], float],
             maximize: bool = True) -> SweepPoint:
        """The point whose value optimizes ``key``."""
        ok_points = [p for p in self.points if p.ok]
        if not ok_points:
            raise ValueError("sweep produced no successful points")
        chooser = max if maximize else min
        return chooser(ok_points, key=lambda p: key(p.value))

    def table_rows(
        self, extract: Callable[[Any], Sequence[Any]]
    ) -> list[Sequence[Any]]:
        """Rows of (param values..., extracted values...) per point."""
        keys = list(self.axes)
        rows = []
        for p in self.points:
            cells = [p.params[k] for k in keys]
            if p.ok:
                cells.extend(extract(p.value))
            else:
                cells.append(f"ERROR: {p.error}")
            rows.append(tuple(cells))
        return rows


def sweep(
    fn: Callable[..., Any],
    axes: Mapping[str, Sequence[Any]],
    fixed: Optional[Mapping[str, Any]] = None,
    on_point: Optional[Callable[[SweepPoint], None]] = None,
    isolate_errors: bool = False,
) -> SweepResult:
    """Evaluate ``fn(**params)`` over the cartesian product of ``axes``.

    Parameters
    ----------
    fn:
        The experiment; receives one keyword per axis plus ``fixed``.
    axes:
        Ordered mapping of parameter name -> values (iteration order is
        the cartesian product in the mapping's key order).
    fixed:
        Extra keyword arguments passed to every call.
    on_point:
        Progress callback invoked after each evaluation.
    isolate_errors:
        When True, an exception in one point is recorded on that
        point instead of aborting the sweep.
    """
    if not axes:
        raise ValueError("sweep needs at least one axis")
    fixed = dict(fixed or {})
    for k in fixed:
        if k in axes:
            raise ValueError(f"parameter {k!r} is both an axis and fixed")
    result = SweepResult(axes=dict(axes))
    names = list(axes)
    for combo in itertools.product(*(axes[k] for k in names)):
        params = dict(zip(names, combo))
        try:
            value = fn(**params, **fixed)
            point = SweepPoint(params=params, value=value)
        except Exception as exc:
            if not isolate_errors:
                raise
            point = SweepPoint(params=params, error=repr(exc))
        result.points.append(point)
        if on_point is not None:
            on_point(point)
    return result
