"""One-shot validation: measure every paper claim and report.

``python -m repro validate`` runs the quick versions of EXP-F7,
EXP-F8, and EXP-F1, evaluates each claim from
:mod:`repro.harness.paper_claims` against the measured values, and
prints a single verdict table.  The throughput ratio claim (EXP-M1)
is optional because it costs minutes at the network size where the
paper's 2x shows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.fig1 import run_fig1
from repro.harness.fig7 import run_fig7
from repro.harness.fig8 import run_fig8
from repro.harness.paper_claims import claim
from repro.harness.report import format_table

__all__ = ["ValidationReport", "validate_claims"]


@dataclass
class ValidationReport:
    """Claim-by-claim verdicts."""

    entries: list = field(default_factory=list)  # (claim, measured, ok)

    def add(self, key: str, measured: float) -> None:
        """Judge one measured value against its paper claim."""
        c = claim(key)
        self.entries.append((c, measured, c.holds(measured)))

    @property
    def all_hold(self) -> bool:
        return all(ok for (_c, _m, ok) in self.entries)

    @property
    def n_checked(self) -> int:
        return len(self.entries)

    def render(self) -> str:
        """ASCII verdict table."""
        rows = [
            (c.key, f"{c.value:g} {c.unit}", f"{measured:g} {c.unit}",
             "yes" if ok else "NO")
            for (c, measured, ok) in self.entries
        ]
        return format_table(
            ["claim", "paper", "measured", "holds"],
            rows,
            title="paper-claim validation",
        )


def validate_claims(
    iterations: int = 20,
    sizes: tuple = (16, 128, 1024, 4096),
    include_throughput: bool = False,
    throughput_switches: int = 32,
) -> ValidationReport:
    """Measure and judge every quick-checkable claim.

    With ``include_throughput`` the EXP-M1 ratio is measured too (the
    band for the 64-switch 2x claim is evaluated at
    ``throughput_switches`` only when that equals 64; smaller sizes
    are reported informationally by the caller instead).
    """
    report = ValidationReport()

    f7 = run_fig7(sizes=sizes, iterations=iterations)
    report.add("f7.mean_overhead_ns", f7.mean_overhead_ns)
    report.add("f7.max_overhead_ns", f7.max_overhead_ns)
    report.add("f7.relative_short_pct", f7.relative_short_pct)
    report.add("f7.relative_long_pct", f7.relative_long_pct)

    f8 = run_fig8(sizes=sizes, iterations=iterations)
    report.add("f8.overhead_ns", f8.mean_overhead_ns)
    report.add("f8.relative_short_pct", f8.relative_short_pct)
    report.add("f8.relative_long_pct", f8.relative_long_pct)

    # The [2,3]-assumption regime (ablation A3 reproduces their 0.5 us).
    from repro.core.timings import Timings

    t_assumed = Timings().with_overrides(
        itb_early_recv_cycles=18, itb_program_dma_cycles=13,
        host_jitter_sigma_ns=0.0,
    )
    f8_assumed = run_fig8(sizes=(64,), iterations=max(5, iterations // 4),
                          timings=t_assumed)
    report.add("f8.prior_estimate_ns", f8_assumed.mean_overhead_ns)

    f1 = run_fig1()
    # Methodology claims checked structurally.
    report.add("method.early_recv_bytes", Timings().early_recv_bytes)
    report.add("method.mcp_buffers", Timings().mcp_buffers)
    from repro.harness.paths import fig6_paths
    from repro.topology.generators import fig6_testbed

    topo, roles = fig6_testbed()
    paths = fig6_paths(topo, roles)
    report.add("method.fig8_switch_crossings", paths.ud5.n_switches)
    report.add(
        "method.fig7_avg_crossings",
        (paths.fig7_fwd.n_switches + paths.rev2.n_switches) / 2,
    )
    # Figure 1's structural results ride along as a sanity gate.
    assert f1.updown_deadlock_free and f1.itb_deadlock_free
    assert not f1.minimal_deadlock_free

    if include_throughput and throughput_switches >= 64:
        from repro.harness.throughput import run_throughput

        sweep = run_throughput(
            n_switches=throughput_switches, packet_size=512,
            rates=(0.02, 0.04, 0.08), duration_ns=250_000.0,
            warmup_ns=50_000.0, hosts_per_switch=2, topo_seed=5,
        )
        report.add("m1.throughput_ratio_64sw", sweep.throughput_ratio)

    return report
