"""Packet-lifecycle timelines from the structured trace.

Renders the journey of one packet — injection, per-hop forwards,
early-recv events, re-injections, delivery — as an indented, timed
event list plus an ASCII Gantt strip.  Built from
:class:`~repro.sim.trace.Trace` records, so it shows what actually
happened, not what the timing constants predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.sim.trace import Trace

__all__ = ["PacketTimeline", "packet_timeline"]

#: Trace kinds that belong to a packet's lifecycle, in display labels.
_KIND_LABELS = {
    "inject": "injected",
    "early_recv": "early-recv (ITB detect)",
    "reinject_immediate": "re-injected (fast path)",
    "reinject_pending": "re-injection queued (engine busy)",
    "itb_recv_complete": "reception at transit host complete",
    "recv_blocked": "stalled: no receive buffer",
    "flush": "FLUSHED (buffer pool full)",
    "drop_unknown_type": "DROPPED (unknown type)",
    "deliver": "delivered to host",
    "fault_corrupt": "DROPPED (CRC error)",
    "fault_lost": "LOST in flight",
}


@dataclass
class PacketTimeline:
    """The ordered lifecycle events of one packet."""

    pid: int
    events: list  # (time_ns, component, label)

    @property
    def t0(self) -> float:
        return self.events[0][0] if self.events else 0.0

    @property
    def span_ns(self) -> float:
        if len(self.events) < 2:
            return 0.0
        return self.events[-1][0] - self.events[0][0]

    def render(self, width: int = 48) -> str:
        """Timed event list plus an ASCII position strip."""
        if not self.events:
            return f"packet {self.pid}: no trace records"
        t0 = self.t0
        span = max(self.span_ns, 1e-9)
        lines = [f"packet {self.pid} — {self.span_ns / 1000:.2f} us"
                 " from first record"]
        for t, component, label in self.events:
            col = round((t - t0) / span * (width - 1))
            strip = "." * col + "#" + "." * (width - 1 - col)
            lines.append(
                f"  +{(t - t0) / 1000.0:9.3f} us |{strip}| {component:>14s}"
                f"  {label}"
            )
        return "\n".join(lines)


def packet_timeline(trace: "Trace", tp_or_pid) -> PacketTimeline:
    """Extract the lifecycle of one packet from a trace.

    Accepts a :class:`TransitPacket` or a raw pid.
    """
    pid = getattr(tp_or_pid, "pid", tp_or_pid)
    events = []
    for rec in trace.records(predicate=lambda r: r.detail.get("pid") == pid):
        label = _KIND_LABELS.get(rec.kind, rec.kind)
        if rec.kind == "inject":
            seg = rec.detail.get("seg", 0)
            label = ("injected" if seg == 0
                     else f"re-injection on the wire (segment {seg})")
        events.append((rec.time, rec.component, label))
    events.sort(key=lambda e: e[0])
    return PacketTimeline(pid=pid, events=events)
