"""EXP-F1: minimal routes enabled by ITBs (paper Figure 1).

Figure 1 is illustrative, not a measurement, so the reproduction is a
route-analysis table over the Figure-1-style irregular network: for
the highlighted pair (switch 4 -> switch 1) and for all pairs, compare
minimal, up*/down*, and ITB route lengths, and verify the deadlock
properties (up*/down* and ITB channel-dependency graphs acyclic,
unsplit minimal routing cyclic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.cdg import is_deadlock_free
from repro.routing.itb import ItbRouter
from repro.routing.minimal import MinimalRouter
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.generators import fig1_topology

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    """Route-length comparison and deadlock verdicts."""

    # The showcased pair: hosts on switches 4 and 1.
    showcase_minimal_len: int = 0
    showcase_updown_len: int = 0
    showcase_itb_len: int = 0
    showcase_itb_hosts: tuple = ()
    showcase_itb_inter_switch_hops: int = 0
    showcase_updown_inter_switch_hops: int = 0
    # All-pairs averages (switch traversals per route).
    avg_minimal: float = 0.0
    avg_updown: float = 0.0
    avg_itb: float = 0.0
    pairs_itb_shorter: int = 0
    n_pairs: int = 0
    # Deadlock analysis.
    updown_deadlock_free: bool = False
    itb_deadlock_free: bool = False
    minimal_deadlock_free: bool = True  # expected False
    # Root-switch traffic concentration (fraction of routes crossing it).
    root_cross_updown: float = 0.0
    root_cross_itb: float = 0.0


def run_fig1() -> Fig1Result:
    """Regenerate the Figure 1 analysis."""
    topo, roles = fig1_topology()
    orientation = build_orientation(topo, root=roles["sw0"])
    ud = UpDownRouter(topo, orientation)
    itb = ItbRouter(topo, orientation)
    mn = MinimalRouter(topo)

    out = Fig1Result()
    src, dst = roles["host_on_sw4"], roles["host_on_sw1"]
    r_min = mn.route(src, dst)
    r_ud = ud.route(src, dst)
    r_itb = itb.itb_route(src, dst)
    out.showcase_minimal_len = r_min.n_switches
    out.showcase_updown_len = r_ud.n_switches
    out.showcase_itb_len = r_itb.n_switches
    out.showcase_itb_hosts = r_itb.itb_hosts
    out.showcase_itb_inter_switch_hops = len(r_itb.switch_hops())
    out.showcase_updown_inter_switch_hops = len(r_ud.switch_hops())

    hosts = topo.hosts()
    min_lens, ud_lens, itb_lens = [], [], []
    ud_routes, itb_routes, min_routes = [], [], []
    root = roles["sw0"]
    root_ud = root_itb = 0
    for s in hosts:
        for d in hosts:
            if s == d:
                continue
            rm = mn.route(s, d)
            ru = ud.route(s, d)
            ri = itb.itb_route(s, d)
            min_lens.append(rm.n_switches)
            ud_lens.append(ru.n_switches)
            itb_lens.append(ri.n_switches)
            min_routes.append(rm)
            ud_routes.append(ru)
            itb_routes.append(ri)
            if len(ri.switch_hops()) < len(ru.switch_hops()):
                out.pairs_itb_shorter += 1
            if root in ru.switch_path:
                root_ud += 1
            if any(root in seg.switch_path for seg in ri.segments):
                root_itb += 1
    out.n_pairs = len(min_lens)
    out.avg_minimal = float(np.mean(min_lens))
    out.avg_updown = float(np.mean(ud_lens))
    out.avg_itb = float(np.mean(itb_lens))
    out.root_cross_updown = root_ud / out.n_pairs
    out.root_cross_itb = root_itb / out.n_pairs

    out.updown_deadlock_free = is_deadlock_free(topo, ud_routes)
    out.itb_deadlock_free = is_deadlock_free(topo, itb_routes)
    out.minimal_deadlock_free = is_deadlock_free(topo, min_routes)
    return out
