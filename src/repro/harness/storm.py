"""Partitioned packet storm: the parallel-engine workload.

The partitioned engine (:mod:`repro.sim.partition`) earns its keep on
exactly one shape of problem: a fabric big enough that one calendar is
the bottleneck, cut at links whose wire latency is long relative to
the event density behind them.  This harness builds that shape — a
chain of switch groups joined by long trunk cables — runs an open-loop
storm on every host, and reports per-partition delivery stats that are
**identical for every worker count** (the determinism contract of
``docs/PARALLEL.md``).

Traffic is two-tier:

* *intra-partition* packets pick a uniform random other host of the
  same partition and ride the normal wormhole fabric;
* *cross-partition* packets (a configurable fraction) terminate at the
  local **gateway host** of a cut link, cross the boundary as an
  engine message delayed by the trunk's wire latency, and re-inject
  from the remote gateway toward their final destination — the
  store-and-forward pattern the paper's in-transit buffers implement
  at a host in the middle of a route, applied at partition boundaries.

Cross traffic targets *adjacent* partitions only (one boundary per
packet), which keeps every packet's path inside exactly two calendars
and the accounting partition-local.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.builder import build_network
from repro.core.timings import Timings
from repro.harness.throughput import build_load_network
from repro.sim.partition import Partition, PartitionedEngine
from repro.topology.graph import PortKind, Topology
from repro.topology.partition import PartitionPlan, partition_topology

__all__ = ["StormResult", "run_storm", "storm_topology"]


def storm_topology(
    n_switches: int,
    hosts_per_switch: int = 2,
    trunk_length_m: float = 200.0,
    kind: PortKind = PortKind.SAN,
) -> Topology:
    """A switch chain with long trunks — the partitionable fabric.

    Inter-switch cables are ``trunk_length_m`` long (200 m of copper
    is ~860 ns of propagation — the engine lookahead when a trunk is
    cut), host cables the stock 3 m.
    """
    ports = max(8, hosts_per_switch + 2)
    topo = Topology(name=f"storm-{n_switches}")
    switches = [topo.add_switch(n_ports=ports) for _ in range(n_switches)]
    for a, b in zip(switches, switches[1:]):
        topo.connect(a, topo.free_port(a), b, topo.free_port(b),
                     kind=kind, length_m=trunk_length_m)
    for sw in switches:
        for _ in range(hosts_per_switch):
            topo.attach_host(sw, topo.free_port(sw), kind=kind)
    topo.validate()
    return topo


@dataclass
class StormResult:
    """One storm run: per-partition stats plus engine telemetry."""

    n_switches: int
    n_parts: int
    packet_size: int
    duration_ns: float
    #: One dict per partition: offered/delivered/cross counters and
    #: summed latency — every field deterministic.
    per_partition: list[dict] = field(default_factory=list)
    #: Deterministic engine counters (windows/messages/dropped).
    engine: dict = field(default_factory=dict)
    #: Engine execution metadata (mode/workers/stall) — wall-clock
    #: telemetry, excluded from :meth:`summary`.
    execution: dict = field(default_factory=dict)

    def total(self, key: str) -> int:
        """Sum one per-partition counter (``offered``, ``delivered``,
        ``cross_sent``, ...) over every partition."""
        return sum(int(p[key]) for p in self.per_partition)

    @property
    def mean_latency_ns(self) -> float:
        n = self.total("delivered") + self.total("cross_delivered")
        if n == 0:
            return 0.0
        return self.total("latency_sum_ns") / n

    def summary(self) -> dict:
        """The deterministic result document (identical for all
        worker counts — what the parallel-smoke CI job diffs)."""
        return {
            "n_switches": self.n_switches,
            "n_parts": self.n_parts,
            "packet_size": self.packet_size,
            "duration_ns": self.duration_ns,
            "offered": self.total("offered"),
            "delivered": self.total("delivered"),
            "cross_sent": self.total("cross_sent"),
            "cross_delivered": self.total("cross_delivered"),
            "mean_latency_ns": round(self.mean_latency_ns, 6),
            "per_partition": self.per_partition,
            "engine": self.engine,
        }


def _wire_storm_partition(
    part: Partition,
    net,
    plan: PartitionPlan,
    timings: Timings,
    stats: dict,
    rate: float,
    packet_size: int,
    cross_fraction: float,
    duration_ns: float,
    seed: int,
) -> None:
    """Attach injectors, gateway forwarding, and ports to one partition."""
    from repro.sim.engine import Timeout

    index = part.index
    sub = plan.subs[index]
    to_global = plan.to_global[index]
    # Real (non-gateway) hosts, local and global ids in lockstep.
    local_hosts = sorted(h for h in sub.hosts() if h in to_global)
    # Cut links touching this partition, ascending link id: the
    # cross-traffic fan-out targets.
    cuts = []
    for link in plan.cut_links:
        (na, _pa), (nb, _pb) = link.endpoints()
        pa, pb = plan.part_of[na], plan.part_of[nb]
        if index == pa:
            cuts.append((link, pb))
        elif index == pb:
            cuts.append((link, pa))
    # Real hosts of each adjacent partition, by global id.
    peer_hosts = {
        peer: sorted(g for g, p in plan.part_of.items()
                     if p == peer and plan.topo.is_host(g))
        for _link, peer in cuts
    }
    sim = net.sim

    def count_delivered(t0: float, key: str) -> Callable:
        def on_final(tp) -> None:
            if tp.dropped:
                stats["dropped"] += 1
                return
            stats[key] += 1
            stats["latency_sum_ns"] += sim.now - t0
        return on_final

    def reinject(payload) -> None:
        """Remote side of a cut: gateway re-injects toward the dst."""
        dst_global, link_id, t0 = payload
        gw = plan.gateways[(index, link_id)]
        stats["cross_received"] += 1
        net.nics[gw].firmware.host_send(
            dst=plan.to_local[index][dst_global],
            payload_len=packet_size,
            gm={"kind": "data", "last": True},
            on_delivered=count_delivered(t0, "cross_delivered"),
        )

    part.on_message("inject", reinject)

    def gateway_handoff(link, peer, t0: float) -> Callable:
        """Local side: worm reached the gateway, cross the boundary."""
        latency = timings.propagation(link.length_m)

        def on_gateway(tp) -> None:
            if tp.dropped:
                stats["dropped"] += 1
                return
            dst_global = tp.gw_dst_global
            part.send(peer, "inject", (dst_global, link.link_id, t0),
                      delay=latency)
            stats["cross_sent"] += 1
        return on_gateway

    mean_gap = packet_size / rate

    def injector(local_host: int, global_host: int):
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(global_host,)))
        nic = net.nics[local_host]
        while True:
            yield Timeout(float(rng.exponential(mean_gap)))
            if sim.now >= duration_ns:
                return
            stats["offered"] += 1
            t0 = sim.now
            if cuts and rng.random() < cross_fraction:
                link, peer = cuts[int(rng.integers(len(cuts)))]
                remotes = peer_hosts[peer]
                dst_global = remotes[int(rng.integers(len(remotes)))]
                gw = plan.gateways[(index, link.link_id)]
                on_delivered = gateway_handoff(link, peer, t0)
                nic.firmware.host_send(
                    dst=gw, payload_len=packet_size,
                    gm={"kind": "data", "last": True},
                    on_delivered=_with_dst(on_delivered, dst_global),
                )
            else:
                others = [h for h in local_hosts if h != local_host]
                if not others:
                    continue
                dst = others[int(rng.integers(len(others)))]
                nic.firmware.host_send(
                    dst=dst, payload_len=packet_size,
                    gm={"kind": "data", "last": True},
                    on_delivered=count_delivered(t0, "delivered"),
                )

    for local in local_hosts:
        sim.process(injector(local, to_global[local]),
                    name=f"storm[{to_global[local]}]")


def _with_dst(on_gateway: Callable, dst_global: int) -> Callable:
    """Tag the transit packet with its final (global) destination."""
    def wrapped(tp) -> None:
        tp.gw_dst_global = dst_global
        on_gateway(tp)
    return wrapped


def run_storm(
    n_switches: int = 8,
    n_parts: int = 4,
    hosts_per_switch: int = 2,
    packet_size: int = 1024,
    rate: float = 0.05,
    duration_ns: float = 100_000.0,
    cross_fraction: float = 0.25,
    trunk_length_m: float = 200.0,
    seed: int = 7,
    build_seed: int = 2001,
    routing: str = "updown",
    engine_jobs: int = 1,
    timings: Optional[Timings] = None,
    build: Callable = build_network,
) -> StormResult:
    """Run one partitioned storm; results independent of ``engine_jobs``.

    ``engine_jobs`` only sets the worker-process count of the
    partitioned engine — the partition plan, every seed, and the
    barrier schedule are functions of the other arguments alone.
    """
    topo = storm_topology(n_switches, hosts_per_switch=hosts_per_switch,
                          trunk_length_m=trunk_length_m)
    plan = partition_topology(topo, n_parts)
    t = (timings or Timings()).with_overrides(host_jitter_sigma_ns=0.0)
    if plan.cut_links:
        lookahead = t.propagation(plan.min_cut_length_m)
    else:  # single partition: any positive bound works, windows are moot
        lookahead = t.propagation(trunk_length_m)

    parts: list[Partition] = []
    for p in range(plan.n_parts):
        net = build_load_network(plan.subs[p], routing, timings=t,
                                 seed=build_seed, build=build)
        stats = {"offered": 0, "delivered": 0, "dropped": 0,
                 "cross_sent": 0, "cross_received": 0,
                 "cross_delivered": 0, "latency_sum_ns": 0.0}
        part = Partition(p, net.sim,
                         finalize=(lambda s=stats: dict(s)))
        _wire_storm_partition(
            part, net, plan, t, stats,
            rate=rate, packet_size=packet_size,
            cross_fraction=cross_fraction, duration_ns=duration_ns,
            seed=seed)
        parts.append(part)

    engine = PartitionedEngine(parts, lookahead=lookahead,
                               jobs=engine_jobs)
    # Drain past the injection stop so in-flight worms and boundary
    # crossings settle: one trunk crossing plus fabric residence is
    # well under 16 lookaheads on every storm configuration.
    per_partition = engine.run(until=duration_ns + 16.0 * lookahead)
    return StormResult(
        n_switches=n_switches,
        n_parts=plan.n_parts,
        packet_size=packet_size,
        duration_ns=duration_ns,
        per_partition=per_partition,
        engine={key: engine.stats[key]
                for key in ("windows", "messages", "dropped")},
        execution={key: engine.stats[key]
                   for key in ("mode", "workers", "stall_s")},
    )
