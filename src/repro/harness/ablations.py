"""EXP-A1/A2/A3: ablations of the design choices DESIGN.md calls out.

* **A1 — load on the Figure 8 path**: the paper argues the 1.3 us
  per-ITB delay "only will be important when, after detecting an
  in-transit packet, the required output port is free" — under load,
  the packet would have waited anyway.  We inject background traffic
  that keeps the re-injection output channel busy and measure how the
  *marginal* ITB overhead shrinks.

* **A2 — two fixed buffers vs circular buffer pool** at the in-transit
  host: burst arrival of in-transit packets; fixed buffers exert
  wire backpressure (no loss, long stalls); the pool absorbs bursts
  and flushes when full, with GM retransmission recovering losses.

* **A3 — detection/programming cost sweep**: the earlier studies
  [2,3] assumed 275 ns + 200 ns; the implementation measured ~1.3 us.
  We sweep the firmware cycle counts between those regimes and report
  the per-ITB overhead each yields, including the saved dispatch
  cycle of the Recv-machine fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.fig8 import measure_fig8_point
from repro.harness.paths import fig6_paths

__all__ = [
    "AblationLoadResult",
    "BufferPoolResult",
    "BufferPoolStudyResult",
    "TimingSweepResult",
    "TimingSweepRow",
    "measure_buffer_scheme",
    "measure_loaded_half_rtt",
    "measure_timing_regime",
    "run_ablation_buffer_pool",
    "run_ablation_load",
    "run_ablation_timing",
]


# ---------------------------------------------------------------------------
# A1: marginal ITB overhead under background load
# ---------------------------------------------------------------------------


@dataclass
class AblationLoadResult:
    """Per-ITB overhead with and without a busy output port."""

    size: int
    overhead_unloaded_ns: float
    overhead_loaded_ns: float

    @property
    def marginal_fraction(self) -> float:
        """Loaded overhead as a fraction of the unloaded overhead."""
        if self.overhead_unloaded_ns == 0:
            return 0.0
        return self.overhead_loaded_ns / self.overhead_unloaded_ns


def measure_loaded_half_rtt(
    route_name: str,
    size: int,
    iterations: int,
    background_gap_ns: float,
    seed: int,
    build: Callable = build_network,
) -> float:
    """Half-RTT over one Figure 8 path while the in-transit host keeps
    the re-injection output channel busy with background traffic."""
    from repro.sim.engine import Timeout

    t = Timings().with_overrides(host_jitter_sigma_ns=0.0)
    config = NetworkConfig(firmware="itb", routing="updown",
                           timings=t, seed=seed)
    net = build("fig6", config=config)
    paths = fig6_paths(net.topo, net.roles)
    itb_host = net.roles["itb"]
    h2 = net.roles["host2"]

    def background():
        nic = net.nics[itb_host]
        while True:
            nic.firmware.host_send(dst=h2, payload_len=512,
                                   gm={"last": True})
            yield Timeout(background_gap_ns)

    net.sim.process(background(), name="background")
    chosen = paths.ud5 if route_name == "ud5" else paths.itb5
    res = net.ping_pong("host1", "host2", size=size,
                        iterations=iterations,
                        route_ab=chosen, route_ba=paths.rev2)
    return res.mean_ns


def run_ablation_load(
    size: int = 256,
    iterations: int = 40,
    background_gap_ns: float = 9_000.0,
    seed: int = 2001,
) -> AblationLoadResult:
    """Measure the marginal per-ITB overhead when the re-injection
    output port is kept busy by background traffic (through the
    unified experiment pipeline).

    Background: the in-transit host itself streams packets to host2
    over the same output channel the re-injection needs, so in-transit
    packets frequently find the send engine busy (the ``ITB packet
    pending`` path) — and, symmetrically, the reference up*/down* path
    contends on the same inter-switch channel.  Under the paper's
    argument the *difference* between the ITB and UD latencies shrinks
    relative to the unloaded case.
    """
    from repro.exp import ExperimentSpec, run_experiment

    return run_experiment(ExperimentSpec(
        experiment="ablation-load",
        sizes=(size,),
        iterations=iterations,
        seed=seed,
        params={"background_gap_ns": background_gap_ns},
    ))


# ---------------------------------------------------------------------------
# A2: fixed buffers vs buffer pool at the in-transit host
# ---------------------------------------------------------------------------


@dataclass
class BufferPoolResult:
    """Burst behaviour of the two in-transit buffering schemes."""

    kind: str
    delivered: int
    offered: int
    flushed: int
    recv_blocked_ns: float
    mean_latency_ns: float

    @property
    def delivered_fraction(self) -> float:
        return self.delivered / max(1, self.offered)


@dataclass
class BufferPoolStudyResult:
    """Both buffering schemes, fixed first then pool."""

    results: list[BufferPoolResult] = field(default_factory=list)

    def get(self, kind: str) -> BufferPoolResult:
        """The result of one buffering scheme."""
        for r in self.results:
            if r.kind == kind:
                return r
        raise KeyError(f"no result for scheme {kind!r}")

    def as_dict(self) -> dict[str, BufferPoolResult]:
        """The results keyed by scheme kind (the legacy return shape)."""
        return {r.kind: r for r in self.results}


def measure_buffer_scheme(
    kind: str,
    n_senders: int,
    packets_per_sender: int,
    packet_size: int,
    pool_bytes: int,
    seed: int,
    build: Callable = build_network,
) -> BufferPoolResult:
    """Blast the in-transit burst through one buffering scheme."""
    from repro.routing.routes import ItbRoute, SourceRoute
    from repro.sim.engine import Timeout
    from repro.topology.graph import PortKind, Topology

    topo = Topology(name="bufpool-star")
    sw_a = topo.add_switch(n_ports=8, name="swA")
    sw_b = topo.add_switch(n_ports=8, name="swB")
    sw_c = topo.add_switch(n_ports=8, name="swC")
    topo.connect(sw_a, 0, sw_b, 0, kind=PortKind.SAN)
    topo.connect(sw_b, 1, sw_c, 0, kind=PortKind.SAN)
    senders = [
        topo.attach_host(sw_a, topo.free_port(sw_a), name=f"src{i}")
        for i in range(n_senders)
    ]
    transit = topo.attach_host(sw_b, topo.free_port(sw_b), name="transit")
    sinks = [
        topo.attach_host(sw_c, topo.free_port(sw_c), name=f"dst{i}")
        for i in range(n_senders)
    ]

    t = Timings().with_overrides(host_jitter_sigma_ns=0.0)
    config = NetworkConfig(
        firmware="itb", routing="updown", timings=t, seed=seed,
        recv_buffer_kind=kind, pool_bytes=pool_bytes, reliable=False,
    )
    net = build(topo, config=config)
    sim = net.sim

    done = sim.event("burst-done")
    counts = {"outstanding": 0, "delivered": 0, "offered": 0,
              "lat": []}

    def on_final(tp):
        counts["outstanding"] -= 1
        if not tp.dropped:
            counts["delivered"] += 1
            counts["lat"].append(
                (tp.t_complete_dst or 0) - (tp.t_inject or 0))
        if counts["outstanding"] == 0 and not done.triggered:
            done.succeed()

    def route_for(src_host: int, dst_host: int) -> ItbRoute:
        seg1 = SourceRoute(
            src=src_host, dst=transit,
            ports=(0, topo.port_toward(sw_b, transit)),
            switch_path=(sw_a, sw_b),
        )
        seg2 = SourceRoute(
            src=transit, dst=dst_host,
            ports=(1, topo.port_toward(sw_c, dst_host)),
            switch_path=(sw_b, sw_c),
        )
        return ItbRoute((seg1, seg2))

    def blaster(src_host: int, dst_host: int):
        nic = net.nics[src_host]
        route = route_for(src_host, dst_host)
        for _ in range(packets_per_sender):
            counts["offered"] += 1
            counts["outstanding"] += 1
            nic.firmware.host_send(
                dst=dst_host, payload_len=packet_size,
                gm={"last": True}, on_delivered=on_final, route=route,
            )
            yield Timeout(200.0)  # near-simultaneous burst

    for src, dst in zip(senders, sinks):
        sim.process(blaster(src, dst), name=f"blast[{src}]")
    sim.run_until_event(done)

    transit_nic = net.nics[transit]
    import numpy as np

    return BufferPoolResult(
        kind=kind,
        delivered=counts["delivered"],
        offered=counts["offered"],
        flushed=transit_nic.stats.packets_flushed,
        recv_blocked_ns=transit_nic.stats.recv_blocked_ns,
        mean_latency_ns=float(np.mean(counts["lat"])) if counts["lat"]
        else 0.0,
    )


def run_ablation_buffer_pool(
    n_senders: int = 4,
    packets_per_sender: int = 30,
    packet_size: int = 1024,
    pool_bytes: int = 8 * 1024,
    seed: int = 2001,
) -> dict[str, BufferPoolResult]:
    """Blast in-transit traffic through one host under both schemes
    (through the unified experiment pipeline).

    Topology: a star of ``n_senders`` hosts on switch A, all sending
    through an in-transit host on switch B to targets on switch C —
    every packet takes one ITB, so the in-transit buffers are the
    bottleneck.  Fixed buffers stall the wire; a small pool flushes
    (packets lost without reliability — losses are the point: they
    are what GM's retransmission exists to recover, tested in
    tests/test_gm_reliability.py).
    """
    from repro.exp import ExperimentSpec, run_experiment

    result: BufferPoolStudyResult = run_experiment(ExperimentSpec(
        experiment="ablation-bufpool",
        packet_size=packet_size,
        seed=seed,
        params={
            "n_senders": n_senders,
            "packets_per_sender": packets_per_sender,
            "pool_bytes": pool_bytes,
        },
    ))
    return result.as_dict()


# ---------------------------------------------------------------------------
# A3: detection/programming cost sweep
# ---------------------------------------------------------------------------


@dataclass
class TimingSweepRow:
    """Per-ITB overhead under one firmware cost assumption."""

    label: str
    early_recv_cycles: int
    program_dma_cycles: int
    overhead_ns: float
    firmware_cost_ns: float = 0.0


@dataclass
class TimingSweepResult:
    """The firmware-cost sweep, one row per regime."""

    rows: list[TimingSweepRow] = field(default_factory=list)


def measure_timing_regime(
    label: str,
    early: int,
    prog: int,
    size: int,
    iterations: int,
    seed: int,
    build: Callable = build_network,
) -> TimingSweepRow:
    """Per-ITB overhead under one firmware cost assumption."""
    t = Timings().with_overrides(
        itb_early_recv_cycles=early, itb_program_dma_cycles=prog,
    )
    row = measure_fig8_point(size, iterations, t, seed, build=build)
    return TimingSweepRow(
        label=label,
        early_recv_cycles=early,
        program_dma_cycles=prog,
        overhead_ns=row.overhead_ns,
        firmware_cost_ns=t.itb_forward_ns,
    )


def run_ablation_timing(
    size: int = 64,
    iterations: int = 30,
    seed: int = 2001,
    regimes: Optional[Sequence[tuple[str, int, int]]] = None,
) -> list[TimingSweepRow]:
    """Sweep the ITB firmware costs from the [2,3] assumption to the
    measured implementation and beyond (through the unified
    experiment pipeline)."""
    from repro.exp import ExperimentSpec, run_experiment

    base = Timings()
    if regimes is None:
        regimes = (
            # [2,3] assumed 275 ns detect + 200 ns DMA program.
            ("simulation-assumption [2,3]", 18, 13),
            # This paper's measured implementation (~1.3 us).
            ("gm-implementation (paper)", base.itb_early_recv_cycles,
             base.itb_program_dma_cycles),
            # A hypothetical hardware-assisted detection.
            ("hardware-assisted", 6, 6),
        )
    result: TimingSweepResult = run_experiment(ExperimentSpec(
        experiment="ablation-timing",
        sizes=(size,),
        iterations=iterations,
        seed=seed,
        params={"regimes": [list(r) for r in regimes]},
    ))
    return result.rows
