"""Export structured traces as Chrome tracing JSON.

Any Chromium-based browser (``chrome://tracing``) and Perfetto load
the Trace Event Format: a JSON array of events with microsecond
timestamps, one row per named "thread".  Mapping our components
(NICs, switches) to rows and packet-lifecycle records to instant
events gives an interactive zoomable view of a simulation — far
easier to scan than a textual trace when debugging contention.

Three event mappings:

* every :class:`~repro.sim.trace.TraceRecord` becomes an *instant*
  event (phase ``"i"``) on its component's row,
* per-packet lifecycles (inject -> deliver at a NIC pair) can also be
  emitted as *duration* pairs (phases ``"b"``/``"e"``) so packets show
  as horizontal spans, via ``durations=True``,
* sampled telemetry time series (from a
  :class:`repro.obs.sampler.Sampler`) become *counter* events (phase
  ``"C"``), which Perfetto renders as occupancy/utilization tracks
  alongside the packet spans — pass them via ``series=``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Union

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.obs.sampler import TimeSeries
    from repro.sim.trace import Trace

__all__ = ["to_chrome_trace", "to_counter_events", "write_chrome_trace"]

#: Lifecycle kinds that open/close a packet's duration span.
_SPAN_OPEN = "inject"
_SPAN_CLOSE = ("deliver", "drop_unknown_type", "flush",
               "fault_corrupt", "fault_lost")


def to_chrome_trace(trace: "Trace", durations: bool = True) -> list[dict]:
    """Convert a trace to a list of Trace-Event-Format dicts.

    Timestamps convert from simulated nanoseconds to the format's
    microseconds.  With ``durations``, each packet also contributes a
    begin/end pair spanning first injection to final disposition.
    """
    events: list[dict] = []
    first_seen: dict = {}
    for rec in trace:
        events.append({
            "name": rec.kind,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": rec.time / 1000.0,
            "pid": "repro",
            "tid": rec.component,
            "args": {k: repr(v) for k, v in rec.detail.items()},
        })
        pid_key = rec.detail.get("pid")
        if not durations or pid_key is None:
            continue
        if rec.kind == _SPAN_OPEN and pid_key not in first_seen:
            first_seen[pid_key] = rec
            events.append({
                "name": f"packet {pid_key}",
                "ph": "b",
                "cat": "packet",
                "id": pid_key,
                "ts": rec.time / 1000.0,
                "pid": "repro",
                "tid": rec.component,
            })
        elif rec.kind in _SPAN_CLOSE and pid_key in first_seen:
            events.append({
                "name": f"packet {pid_key}",
                "ph": "e",
                "cat": "packet",
                "id": pid_key,
                "ts": rec.time / 1000.0,
                "pid": "repro",
                "tid": rec.component,
            })
            del first_seen[pid_key]
    return events


def to_counter_events(series: Iterable["TimeSeries"],
                      pid: str = "repro") -> list[dict]:
    """Convert sampled gauge series to counter ("C") phase events.

    Each :class:`~repro.obs.sampler.TimeSeries` becomes one counter
    track named ``metric component`` whose value steps at every sample
    point; Perfetto draws these as filled area charts alongside the
    packet spans.
    """
    events: list[dict] = []
    for ts in series:
        component = ts.component
        name = f"{ts.name} {component}" if component else ts.name
        for point in ts.points:
            events.append({
                "name": name,
                "ph": "C",
                "ts": point.t_ns / 1000.0,
                "pid": pid,
                "args": {"value": point.value},
            })
    return events


def write_chrome_trace(
    trace: "Trace",
    path: Union[str, Path],
    durations: bool = True,
    series: Iterable["TimeSeries"] = (),
) -> Path:
    """Write the trace as a ``chrome://tracing``-loadable JSON file.

    ``series`` (sampled telemetry time series) are appended as counter
    tracks via :func:`to_counter_events`.
    """
    path = Path(path)
    events = to_chrome_trace(trace, durations=durations)
    events.extend(to_counter_events(series))
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    path.write_text(json.dumps(payload, indent=1))
    return path
