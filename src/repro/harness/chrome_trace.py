"""Export structured traces as Chrome tracing JSON.

Any Chromium-based browser (``chrome://tracing``) and Perfetto load
the Trace Event Format: a JSON array of events with microsecond
timestamps, one row per named "thread".  Mapping our components
(NICs, switches) to rows and packet-lifecycle records to instant
events gives an interactive zoomable view of a simulation — far
easier to scan than a textual trace when debugging contention.

Three event mappings:

* every :class:`~repro.sim.trace.TraceRecord` becomes an *instant*
  event (phase ``"i"``) on its component's row,
* per-packet lifecycles (inject -> deliver at a NIC pair) can also be
  emitted as *duration* pairs (phases ``"b"``/``"e"``) so packets show
  as horizontal spans, via ``durations=True``,
* sampled telemetry time series (from a
  :class:`repro.obs.sampler.Sampler`) become *counter* events (phase
  ``"C"``), which Perfetto renders as occupancy/utilization tracks
  alongside the packet spans — pass them via ``series=``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Union

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.obs.sampler import TimeSeries
    from repro.sim.trace import Trace

__all__ = ["spans_to_chrome_trace", "to_chrome_trace", "to_counter_events",
           "write_chrome_trace"]

#: Lifecycle kinds that open/close a packet's duration span.
_SPAN_OPEN = "inject"
_SPAN_CLOSE = ("deliver", "drop_unknown_type", "flush",
               "fault_corrupt", "fault_lost")


def to_chrome_trace(trace: "Trace", durations: bool = True) -> list[dict]:
    """Convert a trace to a list of Trace-Event-Format dicts.

    Timestamps convert from simulated nanoseconds to the format's
    microseconds.  With ``durations``, each packet also contributes a
    begin/end pair spanning first injection to final disposition.
    """
    events: list[dict] = []
    first_seen: dict = {}
    for rec in trace:
        events.append({
            "name": rec.kind,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": rec.time / 1000.0,
            "pid": "repro",
            "tid": rec.component,
            "args": {k: repr(v) for k, v in rec.detail.items()},
        })
        pid_key = rec.detail.get("pid")
        if not durations or pid_key is None:
            continue
        if rec.kind == _SPAN_OPEN and pid_key not in first_seen:
            first_seen[pid_key] = rec
            events.append({
                "name": f"packet {pid_key}",
                "ph": "b",
                "cat": "packet",
                "id": pid_key,
                "ts": rec.time / 1000.0,
                "pid": "repro",
                "tid": rec.component,
            })
        elif rec.kind in _SPAN_CLOSE and pid_key in first_seen:
            events.append({
                "name": f"packet {pid_key}",
                "ph": "e",
                "cat": "packet",
                "id": pid_key,
                "ts": rec.time / 1000.0,
                "pid": "repro",
                "tid": rec.component,
            })
            del first_seen[pid_key]
    return events


def to_counter_events(series: Iterable["TimeSeries"],
                      pid: str = "repro") -> list[dict]:
    """Convert sampled gauge series to counter ("C") phase events.

    Each :class:`~repro.obs.sampler.TimeSeries` becomes one counter
    track named ``metric component`` whose value steps at every sample
    point; Perfetto draws these as filled area charts alongside the
    packet spans.
    """
    events: list[dict] = []
    for ts in series:
        component = ts.component
        name = f"{ts.name} {component}" if component else ts.name
        for point in ts.points:
            events.append({
                "name": name,
                "ph": "C",
                "ts": point.t_ns / 1000.0,
                "pid": pid,
                "args": {"value": point.value},
            })
    return events


def spans_to_chrome_trace(spans: Iterable[Union[dict, object]],
                          pid: str = "repro") -> list[dict]:
    """Convert causal spans to async-span + flow Trace-Event dicts.

    Every closed :class:`~repro.obs.tracing.Span` (or its
    ``to_dict()`` form) becomes an async begin/end pair (phases
    ``"b"``/``"e"``) on its component's row, id'd
    ``"<trace>.<span>"`` so nesting within one trace groups in
    Perfetto.  Each parent→child edge *across components* additionally
    emits a flow arrow (phases ``"s"``/``"f"`` with ``bp: "e"``) so the
    hand-off from GM host to firmware to wire renders as connected
    arrows across rows.
    """
    recs = []
    for s in spans:
        recs.append(s if isinstance(s, dict) else s.to_dict())
    by_id = {r["span"]: r for r in recs}
    events: list[dict] = []
    flow_seq = 0
    for r in recs:
        if r["end"] is None:
            continue
        span_id = f"{r['trace']}.{r['span']}"
        tid = r["component"] or "untracked"
        common = {"cat": "span", "id": span_id, "pid": pid, "tid": tid}
        events.append({
            "name": r["name"], "ph": "b", "ts": r["start"] / 1000.0,
            "args": {"status": r["status"],
                     **{k: repr(v) for k, v in r["attrs"].items()}},
            **common,
        })
        events.append({
            "name": r["name"], "ph": "e", "ts": r["end"] / 1000.0,
            **common,
        })
        parent = by_id.get(r["parent"])
        if (parent is None or parent["end"] is None
                or parent["component"] == r["component"]):
            continue
        # Cross-component hand-off: a flow arrow from the parent's row
        # to the child's start.
        flow_seq += 1
        flow_id = f"flow.{r['trace']}.{flow_seq}"
        events.append({
            "name": f"{parent['name']}->{r['name']}", "ph": "s",
            "cat": "flow", "id": flow_id, "ts": r["start"] / 1000.0,
            "pid": pid, "tid": parent["component"] or "untracked",
        })
        events.append({
            "name": f"{parent['name']}->{r['name']}", "ph": "f",
            "bp": "e",
            "cat": "flow", "id": flow_id, "ts": r["start"] / 1000.0,
            "pid": pid, "tid": tid,
        })
    return events


def write_chrome_trace(
    trace: "Trace",
    path: Union[str, Path],
    durations: bool = True,
    series: Iterable["TimeSeries"] = (),
    spans: Iterable[Union[dict, object]] = (),
) -> Path:
    """Write the trace as a ``chrome://tracing``-loadable JSON file.

    ``series`` (sampled telemetry time series) are appended as counter
    tracks via :func:`to_counter_events`; ``spans`` (causal span dumps
    from :mod:`repro.obs.tracing`) as async spans plus cross-component
    flow arrows via :func:`spans_to_chrome_trace`.
    """
    path = Path(path)
    events = to_chrome_trace(trace, durations=durations)
    events.extend(to_counter_events(series))
    events.extend(spans_to_chrome_trace(spans))
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    path.write_text(json.dumps(payload, indent=1))
    return path
