"""EXP-F7: code overhead of ITB support (paper Figure 7).

Protocol (paper Section 5): point-to-point half-round-trip latency
between host 1 and host 2 over up*/down* routes, averaged over 100
iterations per message size, once with the original MCP and once with
the ITB-modified MCP.  Both firmwares carry only normal GM packets —
the measured delta is the cost of the *added instructions* in the
receive path, paid once per packet.

Paper results to match in shape: average delta ~125 ns, never above
~300 ns, relative overhead ~1 % (short) falling to ~0.4 % (long).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths

__all__ = ["Fig7Result", "Fig7Row", "measure_fig7_point", "run_fig7",
           "DEFAULT_SIZES"]

#: gm_allsize-style size ladder: powers of two up to the GM MTU.
DEFAULT_SIZES: tuple[int, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096
)


@dataclass
class Fig7Row:
    """One message size: original vs modified MCP latency."""

    size: int
    original_ns: float
    modified_ns: float

    @property
    def overhead_ns(self) -> float:
        return self.modified_ns - self.original_ns

    @property
    def relative_pct(self) -> float:
        return 100.0 * self.overhead_ns / self.original_ns


@dataclass
class Fig7Result:
    """The full Figure 7 series plus the paper's summary statistics."""

    rows: list[Fig7Row] = field(default_factory=list)
    iterations: int = 100

    @property
    def mean_overhead_ns(self) -> float:
        return float(np.mean([r.overhead_ns for r in self.rows]))

    @property
    def max_overhead_ns(self) -> float:
        return float(np.max([r.overhead_ns for r in self.rows]))

    @property
    def min_overhead_ns(self) -> float:
        return float(np.min([r.overhead_ns for r in self.rows]))

    @property
    def relative_short_pct(self) -> float:
        return self.rows[0].relative_pct

    @property
    def relative_long_pct(self) -> float:
        return self.rows[-1].relative_pct


def _measure(firmware: str, size: int, iterations: int,
             timings: Optional[Timings], seed: int,
             build: Callable = build_network) -> float:
    config = NetworkConfig(firmware=firmware, routing="updown", seed=seed)
    if timings is not None:
        config.timings = timings
    net = build("fig6", config=config)
    paths = fig6_paths(net.topo, net.roles)
    result = net.ping_pong(
        "host1", "host2", size=size, iterations=iterations,
        route_ab=paths.fig7_fwd, route_ba=paths.rev2,
    )
    return result.mean_ns


def measure_fig7_point(size: int, iterations: int,
                       timings: Optional[Timings], seed: int,
                       build: Callable = build_network) -> Fig7Row:
    """One independent Figure 7 point: both firmwares at one size.

    Both networks are built with the same seed, so the host-noise
    stream is identical across the two firmwares and the measured
    delta isolates the code change — the simulation analogue of
    running both MCPs on the same testbed.
    """
    orig = _measure("original", size, iterations, timings, seed, build)
    mod = _measure("itb", size, iterations, timings, seed, build)
    return Fig7Row(size=size, original_ns=orig, modified_ns=mod)


def run_fig7(
    sizes: Sequence[int] = DEFAULT_SIZES,
    iterations: int = 100,
    timings: Optional[Timings] = None,
    seed: int = 2001,
) -> Fig7Result:
    """Regenerate Figure 7 (through the unified experiment pipeline)."""
    from repro.exp import ExperimentSpec, run_experiment

    return run_experiment(ExperimentSpec(
        experiment="fig7", sizes=tuple(sizes), iterations=iterations,
        timings=timings, seed=seed,
    ))
