"""Latency/throughput statistics helpers shared by the harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LatencySummary", "summarize_latencies", "saturation_point"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample (ns).

    An empty sample (``n == 0``) carries ``nan`` in every statistic so
    that a run that produced no latencies can never masquerade as a
    zero-latency run; check :attr:`empty` (or ``n``) before comparing.
    """

    n: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    p999: float
    maximum: float

    @property
    def empty(self) -> bool:
        """True when the summary was computed over zero samples."""
        return self.n == 0

    @property
    def mean_us(self) -> float:
        """Mean in microseconds."""
        return self.mean / 1000.0


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Compute the standard summary over a latency sample.

    With zero samples every statistic is ``nan`` (distinguishable
    sentinel), not ``0.0``.
    """
    if len(samples) == 0:
        nan = float("nan")
        return LatencySummary(0, nan, nan, nan, nan, nan, nan, nan, nan)
    a = np.asarray(samples, dtype=float)
    return LatencySummary(
        n=int(a.size),
        mean=float(a.mean()),
        std=float(a.std()),
        minimum=float(a.min()),
        p50=float(np.percentile(a, 50)),
        p90=float(np.percentile(a, 90)),
        p99=float(np.percentile(a, 99)),
        p999=float(np.percentile(a, 99.9)),
        maximum=float(a.max()),
    )


def saturation_point(
    offered: Sequence[float], accepted: Sequence[float], tolerance: float = 0.95
) -> float:
    """Estimate the saturation load from a load sweep.

    Returns the highest offered load at which accepted throughput is
    still at least ``tolerance`` x offered (i.e. the network keeps
    up); past saturation accepted flattens or collapses while offered
    keeps growing.
    """
    if len(offered) != len(accepted):
        raise ValueError("offered/accepted length mismatch")
    best = 0.0
    for o, a in zip(offered, accepted):
        if o > 0 and a >= tolerance * o:
            best = max(best, o)
    return best
