"""EXP-VC: in-transit buffers vs virtual channels, head to head.

The paper proposes ITBs *instead of* adding virtual channels to
Myrinet switches (Section 1: commercial switches have no VCs and the
authors want a software-only fix), but never measures against them —
the obvious missing experiment.  With the multi-lane fabric
(:mod:`repro.network.fabric`) the comparison is one config away; this
harness runs it.

Mechanisms compared (each a ``(routing, lanes, lane_policy)`` arm):

``updown``
    Stock GM: up*/down* routing on the single-lane fabric — the
    baseline both mechanisms try to beat.

``itb``
    The paper's mechanism: minimal-with-ejection routing, one lane.

``vc``
    The hardware alternative: true minimal routing made deadlock-free
    by escape lanes (dateline assignment), with the lane count sized
    by :func:`repro.routing.cdg.lanes_required` so the static
    guarantee holds.  No ejection — packets stay on the wire.

``itb+vc``
    Both mechanisms combined: ITB routing over a multi-lane fabric
    with round-robin lane balancing.  ITB routes are deadlock-free on
    the collapsed channel graph, so any static per-launch lane
    assignment (round-robin included) preserves the guarantee.

``minimal`` (static row only)
    Unrestricted minimal routing on one lane.  Its CDG is cyclic on
    the study topology — the deadlock the other arms exist to avoid —
    so it gets no dynamic run; the report shows the verdict.

Every arm's deadlock-freedom column is computed honestly from the
lane-aware CDG of the exact all-pairs routes the mapper stamps.

A modelling caveat for the VC arms (see ``docs/TIMING_MODEL.md``):
lanes do not time-multiplex the physical wire, so each lane streams
at full link rate.  VC numbers are therefore an *optimistic upper
bound* — if ITB beats VC here, it beats real (wire-sharing) VCs by
more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.builder import build_network
from repro.core.timings import Timings
from repro.harness.throughput import build_load_network
from repro.harness.workloads import drive_traffic
from repro.topology.generators import random_irregular
from repro.topology.graph import Topology

__all__ = [
    "VcArm",
    "VcLoadPoint",
    "VcMechanismResult",
    "VcStudyResult",
    "analyze_arm",
    "measure_vc_point",
    "study_arms",
    "study_topology",
]


@dataclass(frozen=True)
class VcArm:
    """One mechanism configuration of the study."""

    mechanism: str
    routing: str
    lanes: int
    lane_policy: str
    dynamic: bool = True  # False = static CDG verdict only, no traffic


@dataclass
class VcLoadPoint:
    """Dynamic measurement of one (mechanism, offered-rate) sample."""

    offered: float
    accepted: float
    mean_latency_ns: float
    p99_latency_ns: float
    delivered_fraction: float


@dataclass
class VcMechanismResult:
    """One mechanism's static verdict plus its load sweep."""

    mechanism: str
    routing: str
    lanes: int
    lane_policy: str
    deadlock_free: bool
    lanes_required: int
    points: list[VcLoadPoint] = field(default_factory=list)

    @property
    def peak_accepted(self) -> float:
        """Highest accepted throughput over the sweep (0 if static-only)."""
        return max((p.accepted for p in self.points), default=0.0)

    @property
    def best_mean_latency_ns(self) -> float:
        """Lowest mean latency over the sweep (inf if static-only)."""
        return min((p.mean_latency_ns for p in self.points),
                   default=float("inf"))


@dataclass
class VcStudyResult:
    """The full ITB vs VC vs ITB+VC comparison."""

    n_switches: int
    hosts_per_switch: int
    packet_size: int
    topo_seed: int
    rows: list[VcMechanismResult] = field(default_factory=list)

    def row(self, mechanism: str) -> VcMechanismResult:
        """The result row of one mechanism (KeyError if absent)."""
        for r in self.rows:
            if r.mechanism == mechanism:
                return r
        raise KeyError(f"no mechanism {mechanism!r} in this study")

    @property
    def combined_wins_throughput(self) -> bool:
        """True when ITB+VC out-peaks both ITB alone and VC alone."""
        combined = self.row("itb+vc").peak_accepted
        return (combined > self.row("itb").peak_accepted
                and combined > self.row("vc").peak_accepted)


def study_topology(n_switches: int, topo_seed: int,
                   hosts_per_switch: int) -> Topology:
    """The study's random irregular COW (same generator as EXP-M1)."""
    return random_irregular(n_switches, seed=topo_seed,
                            hosts_per_switch=hosts_per_switch)


def _all_pairs_routes(topo: Topology, routing: str) -> list:
    """All-pairs routes as the mapper would stamp them, via the shared
    route cache (so repeated analyses and builds pay the cost once)."""
    from repro.routing.cache import default_route_cache

    _orientation, pairs = default_route_cache().routes_for(topo, routing)
    return list(pairs.values())


def vc_lanes_for(topo: Topology) -> int:
    """Lane count the escape policy needs on this topology's minimal
    routes — how the VC arm sizes its fabric."""
    from repro.routing.cdg import lanes_required

    return lanes_required(topo, _all_pairs_routes(topo, "minimal"))


def study_arms(topo: Topology, vc_lanes: Optional[int] = None,
               combined_lanes: int = 2) -> list[VcArm]:
    """The study's arms, with the VC fabric sized for this topology."""
    if vc_lanes is None:
        vc_lanes = vc_lanes_for(topo)
    return [
        VcArm("updown", "updown", 1, "fixed"),
        VcArm("itb", "itb", 1, "fixed"),
        VcArm("minimal", "minimal", 1, "fixed", dynamic=False),
        VcArm("vc", "minimal", vc_lanes, "escape"),
        VcArm("itb+vc", "itb", combined_lanes, "roundrobin"),
    ]


def analyze_arm(topo: Topology, arm: VcArm) -> tuple[bool, int]:
    """Static CDG verdict for one arm on its actual stamped routes.

    Returns ``(deadlock_free, lanes_required)`` where the second value
    is the escape-walk lane demand of the arm's route set (1 for
    descent-free routings).
    """
    from repro.routing.cdg import is_deadlock_free, lanes_required

    routes = _all_pairs_routes(topo, arm.routing)
    return (
        is_deadlock_free(topo, routes, n_lanes=arm.lanes,
                         lane_policy=arm.lane_policy),
        lanes_required(topo, routes),
    )


def measure_vc_point(
    routing: str,
    lanes: int,
    lane_policy: str,
    rate: float,
    n_switches: int,
    packet_size: int,
    duration_ns: float,
    warmup_ns: float,
    topo_seed: int,
    traffic_seed: int,
    hosts_per_switch: int,
    timings: Optional[Timings] = None,
    build: Callable = build_network,
) -> VcLoadPoint:
    """One independent (mechanism, offered-rate) sample on a fresh build."""
    topo = study_topology(n_switches, topo_seed, hosts_per_switch)
    net = build_load_network(topo, routing, timings=timings, build=build,
                             lanes=lanes, lane_policy=lane_policy)
    stats = drive_traffic(
        net,
        rate_bytes_per_ns_per_host=rate,
        packet_size=packet_size,
        duration_ns=duration_ns,
        warmup_ns=warmup_ns,
        seed=traffic_seed,
    )
    return VcLoadPoint(
        offered=rate,
        accepted=stats.accepted_bytes_per_ns_per_host,
        mean_latency_ns=stats.mean_latency_ns,
        p99_latency_ns=stats.p99_latency_ns,
        delivered_fraction=stats.delivered_fraction,
    )
