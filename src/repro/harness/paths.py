"""Canonical hand-built routes on the Figure 6 testbed.

The paper's evaluation does not use mapper-computed routes: both
experiments compare *carefully constructed* paths so that only the
quantity under test differs.  This module pins those constructions:

Figure 7 paths (code-overhead test, "2.5 switches" on average):
    * forward  host1 -> sw1 -> sw2 -> (loopback) -> sw2 -> host2
      (3 switch crossings),
    * reverse  host2 -> sw2 -> sw1 -> host1 (2 crossings).

Figure 8 paths (per-ITB overhead test, 5 switch crossings each, all
five crossings through one LAN and one SAN port):
    * ``ud5``  — host1 -> sw1 -> sw2 -> sw1 -> sw2 -> (loopback) ->
      sw2 -> host2, using the SAN-A, LAN, SAN-B inter-switch cables so
      no directed channel repeats,
    * ``itb5`` — host1 -> sw1 -> sw2 -> **in-transit host** -> sw2 ->
      sw1 -> sw2 -> host2 (one ITB, same five port-kind pairs),
    * the pong direction always takes the plain 2-crossing route, so
      "only one ITB is used" per round trip and the half-RTT
      difference x2 isolates one ITB (paper Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.routes import ItbRoute, SourceRoute
from repro.topology.graph import Topology

__all__ = ["Fig6Paths", "fig6_paths"]


@dataclass(frozen=True)
class Fig6Paths:
    """All hand-built routes used by the Figure 7/8 experiments."""

    #: Figure 7 forward path (3 crossings, through the loopback).
    fig7_fwd: SourceRoute
    #: Figure 7 / plain reverse path (2 crossings).
    rev2: SourceRoute
    #: Figure 8 up*/down* reference path (5 crossings).
    ud5: SourceRoute
    #: Figure 8 in-transit path (5 crossings, one ITB).
    itb5: ItbRoute
    #: Plain 2-crossing forward path (baseline/correctness runs).
    fwd2: SourceRoute


def fig6_paths(topo: Topology, roles: dict[str, int]) -> Fig6Paths:
    """Build (and verify) the canonical routes for a fig6 testbed."""
    h1, h2, itb = roles["host1"], roles["host2"], roles["itb"]
    sw1, sw2 = roles["sw1"], roles["sw2"]

    fig7_fwd = SourceRoute(
        src=h1, dst=h2, ports=(0, 6, 1), switch_path=(sw1, sw2, sw2)
    )
    rev2 = SourceRoute(src=h2, dst=h1, ports=(0, 5), switch_path=(sw2, sw1))
    fwd2 = SourceRoute(src=h1, dst=h2, ports=(0, 1), switch_path=(sw1, sw2))
    # SAN-A out, LAN back, SAN-B out, loopback, exit to host2: five
    # crossings, each through one LAN and one SAN port, no directed
    # channel used twice.
    ud5 = SourceRoute(
        src=h1, dst=h2, ports=(0, 4, 2, 6, 1),
        switch_path=(sw1, sw2, sw1, sw2, sw2),
    )
    itb5 = ItbRoute((
        SourceRoute(src=h1, dst=itb, ports=(0, 5), switch_path=(sw1, sw2)),
        SourceRoute(src=itb, dst=h2, ports=(0, 4, 1),
                    switch_path=(sw2, sw1, sw2)),
    ))

    # Verify deliverability against the actual cabling.
    assert topo.walk_route(h1, list(fig7_fwd.ports)) == h2
    assert topo.walk_route(h2, list(rev2.ports)) == h1
    assert topo.walk_route(h1, list(fwd2.ports)) == h2
    assert topo.walk_route(h1, list(ud5.ports)) == h2
    assert topo.walk_route(h1, list(itb5.segments[0].ports)) == itb
    assert topo.walk_route(itb, list(itb5.segments[1].ports)) == h2
    assert ud5.n_switches == itb5.n_switches == 5
    return Fig6Paths(fig7_fwd=fig7_fwd, rev2=rev2, ud5=ud5, itb5=itb5,
                     fwd2=fwd2)
