"""EXP-SCALE: ITB vs up*/down* across 16 -> 512 switch fabrics.

The paper evaluates in-transit buffers on fabrics of at most a few
dozen switches; this study asks how the mechanism scales.  Three
generator families cover the design space:

``clos``
    Folded two-level Clos (leaf-spine): every leaf reaches every spine
    in one hop, so minimal paths already satisfy up*/down* through the
    root spine — the regular fabric where ITBs have nothing to fix.

``fattree``
    Three-level k-ary fat tree: same story one level deeper.  Core and
    aggregation switches carry no hosts, so non-tree shortcuts cannot
    be legalized by ejection, and the ITB router falls back to pure
    up*/down* on every pair.

``irregular``
    Seeded random irregular SAN cabling
    (:func:`~repro.topology.generators.random_irregular_scaled`) — the
    cluster-of-workstations wiring the paper targets, where up*/down*
    concentrates load at the root and ITB splits restore minimal
    paths.

Per (family, size, routing) the study reports *static* route-quality
metrics computed from a full batched all-pairs build (minimal-path
coverage, stretch, root-link involvement, worst channel load and the
analytic saturation throughput it implies, ITB-host pressure) plus
wall-clock build/route times, and — on sizes small enough to simulate
— one *dynamic* offered-load point through the event simulator.

The analytic saturation bound assumes uniform all-to-all traffic:
with H hosts each sending (H-1)/H of its load across the fabric, the
busiest directed channel carrying ``max_load`` of the H*(H-1) routes
saturates first, at per-host rate ``link_rate * (H - 1) /
max_load``.  Larger is better; up*/down*'s root concentration shows
up directly as a shrinking bound while ITB's spread keeps it flat.

Static metrics use transient routers (not the shared route cache) so
a 512-switch sweep does not pin hundreds of thousands of routes in
the LRU; dynamic points go through the normal cached build path.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.builder import build_network
from repro.core.timings import Timings
from repro.harness.throughput import build_load_network
from repro.harness.workloads import drive_traffic
from repro.routing.itb import ItbRouter
from repro.routing.minimal import switch_distances
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.generators import (clos, fat_tree,
                                       random_irregular_scaled)
from repro.topology.graph import Topology

__all__ = [
    "ScaleDynamicPoint",
    "ScaleStudyResult",
    "ScaleStudyRow",
    "family_topology",
    "fat_tree_k_for",
    "measure_scale_point",
]

#: Generator families the study sweeps, in report order.
FAMILIES = ("clos", "fattree", "irregular")


def fat_tree_k_for(target: int) -> int:
    """Largest even ``k`` whose fat tree fits in ``target`` switches.

    A k-ary fat tree has ``5 * k**2 / 4`` switches; the study picks
    the biggest one not exceeding the size rung so families stay
    comparable.
    """
    k = 2
    while 5 * (k + 2) ** 2 // 4 <= target:
        k += 2
    return k


def family_topology(family: str, target: int, seed: int) -> Topology:
    """The study topology of one family at one size rung.

    ``target`` is the nominal switch count; regular families land on
    the nearest structurally-valid size at or below it (the row
    records the actual counts).
    """
    if family == "clos":
        m = max(2, target // 32)
        return clos(m=m, n=1, r=target - m)
    if family == "fattree":
        return fat_tree(k=fat_tree_k_for(target), hosts_per_edge=1)
    if family == "irregular":
        return random_irregular_scaled(target, seed=seed)
    raise ValueError(f"unknown scale-study family {family!r}")


@dataclass
class ScaleDynamicPoint:
    """One simulated offered-load sample (small fabrics only)."""

    offered: float
    accepted: float
    mean_latency_ns: float
    delivered_fraction: float


@dataclass
class ScaleStudyRow:
    """Static route metrics of one (family, size, routing) cell."""

    family: str
    target: int
    n_switches: int
    n_hosts: int
    n_links: int
    diameter: int
    root: int
    routing: str
    n_pairs: int
    minimal_coverage: float
    avg_stretch: float
    root_load_fraction: float
    max_channel_load: int
    saturation_bytes_per_ns_per_host: float
    itb_pairs_fraction: float
    total_itbs: int
    max_itbs_per_host: int
    build_s: float
    route_s: float
    dynamic: Optional[ScaleDynamicPoint] = None


@dataclass
class ScaleStudyResult:
    """The full scale sweep: rows per (family, size rung, routing)."""

    families: tuple[str, ...]
    targets: tuple[int, ...]
    routings: tuple[str, ...]
    topo_seed: int
    rows: list[ScaleStudyRow] = field(default_factory=list)

    def row(self, family: str, target: int, routing: str) -> ScaleStudyRow:
        """One cell of the sweep (KeyError if absent)."""
        for r in self.rows:
            if (r.family, r.target, r.routing) == (family, target, routing):
                return r
        raise KeyError(f"no row ({family}, {target}, {routing})")

    def series(self, family: str, routing: str) -> list[ScaleStudyRow]:
        """All rows of one (family, routing), in size order."""
        return [r for r in self.rows
                if r.family == family and r.routing == routing]

    def saturation_ratio(self, family: str, target: int) -> float:
        """ITB analytic saturation over up*/down*'s (1.0 = no gain)."""
        ud = self.row(family, target, "updown")
        itb = self.row(family, target, "itb")
        base = ud.saturation_bytes_per_ns_per_host
        if base <= 0:
            return float("inf")
        return itb.saturation_bytes_per_ns_per_host / base


def _make_router(topo: Topology, routing: str, orientation):
    if routing == "updown":
        return UpDownRouter(topo, orientation)
    if routing == "itb":
        return ItbRouter(topo, orientation)
    raise ValueError(f"scale study compares 'updown' and 'itb',"
                     f" not {routing!r}")


def measure_scale_point(
    family: str,
    target: int,
    routing: str,
    topo_seed: int,
    rate: float = 0.08,
    dynamic_max: int = 64,
    packet_size: int = 512,
    duration_ns: float = 120_000.0,
    warmup_ns: float = 24_000.0,
    traffic_seed: int = 7,
    timings: Optional[Timings] = None,
    build: Callable = build_network,
) -> ScaleStudyRow:
    """Build one fabric, run the batched all-pairs, score the routes.

    Every metric is derived from the exact route set a mapper would
    stamp (same routers, same deterministic tie-breaks).  Wall-clock
    fields are environment-dependent by nature and are never golden'd
    or gated — they exist so the scale table documents build cost.
    """
    t0 = time.perf_counter()
    topo = family_topology(family, target, topo_seed)
    orientation = build_orientation(topo)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    router = _make_router(topo, routing, orientation)
    pairs = router.itb_all_pairs()
    route_s = time.perf_counter() - t0

    hosts = topo.hosts()
    root = orientation.root
    n_pairs = len(pairs)
    minimal = 0
    stretch_sum = 0.0
    through_root = 0
    itb_pairs = 0
    total_itbs = 0
    channel_load: Counter = Counter()
    itb_host_load: Counter = Counter()
    for (s, d), route in pairs.items():
        hops = len(route.switch_hops())
        min_hops = switch_distances(topo, topo.switch_of(s))[topo.switch_of(d)]
        if hops == min_hops:
            minimal += 1
        stretch_sum += (hops + 1) / (min_hops + 1)
        if any(root in seg.switch_path for seg in route.segments):
            through_root += 1
        if route.n_itbs:
            itb_pairs += 1
            total_itbs += route.n_itbs
            itb_host_load.update(route.itb_hosts)
        channel_load.update(route.switch_hops())

    max_load = max(channel_load.values(), default=0)
    link_rate = 1.0 / (timings or Timings()).link_byte_ns
    # Uniform all-to-all: the busiest channel carries max_load of the
    # H*(H-1) flows; it fills when each host offers link_rate*(H-1)/max_load.
    saturation = (link_rate * (len(hosts) - 1) / max_load
                  if max_load > 0 else 0.0)
    diameter = max(
        max(switch_distances(topo, s).values()) for s in topo.switches()
    )

    dynamic: Optional[ScaleDynamicPoint] = None
    if target <= dynamic_max:
        net = build_load_network(topo, routing, timings=timings, build=build)
        stats = drive_traffic(
            net, rate_bytes_per_ns_per_host=rate, packet_size=packet_size,
            duration_ns=duration_ns, warmup_ns=warmup_ns, seed=traffic_seed,
        )
        dynamic = ScaleDynamicPoint(
            offered=rate,
            accepted=stats.accepted_bytes_per_ns_per_host,
            mean_latency_ns=stats.mean_latency_ns,
            delivered_fraction=stats.delivered_fraction,
        )

    return ScaleStudyRow(
        family=family,
        target=target,
        n_switches=len(topo.switches()),
        n_hosts=len(hosts),
        n_links=len(topo.links),
        diameter=diameter,
        root=root,
        routing=routing,
        n_pairs=n_pairs,
        minimal_coverage=minimal / n_pairs if n_pairs else 1.0,
        avg_stretch=stretch_sum / n_pairs if n_pairs else 1.0,
        root_load_fraction=through_root / n_pairs if n_pairs else 0.0,
        max_channel_load=max_load,
        saturation_bytes_per_ns_per_host=saturation,
        itb_pairs_fraction=itb_pairs / n_pairs if n_pairs else 0.0,
        total_itbs=total_itbs,
        max_itbs_per_host=max(itb_host_load.values(), default=0),
        build_s=round(build_s, 3),
        route_s=round(route_s, 3),
        dynamic=dynamic,
    )
