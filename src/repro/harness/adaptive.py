"""EXP-A7: static vs adaptive ITB host selection under hotspot load.

The paper picks in-transit hosts once, at route-build time, with the
static lowest-id policy — and its own Figure 8 occupancy data shows
those hosts become hotspots under load.  This harness measures what
congestion-aware reselection buys: the same ITB routing, the same
fabric, but a :class:`~repro.gm.mapper.ItbReselector` periodically
re-choosing each violation switch's in-transit host with one of the
pluggable :mod:`~repro.routing.selectors` policies, fed by the live
buffer-occupancy view.

Two traffic matrices stress the placement:

* **hotspot** — a fixed fraction of every host's packets target the
  *busiest default in-transit host* (the worst case for the static
  placement: the hotspot's NIC serves its own flood plus every ITB
  re-injection through it),
* **shifting** — the hotspot cycles among the hosts of the busiest
  violation switch, i.e. among the very candidates selection chooses
  between; the static pick is hot for a phase of every cycle while an
  adaptive policy can dodge whichever candidate is currently loaded.

Run through the experiment pipeline as ``repro run adaptive-itb``;
results are summarized in ``docs/ADAPTIVE_ITB.md``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.builder import BuiltNetwork, build_network
from repro.core.timings import Timings
from repro.gm.mapper import ItbReselector
from repro.harness.throughput import build_load_network
from repro.harness.workloads import (DestChooser, TrafficStats, drive_traffic,
                                     hotspot_traffic, uniform_traffic)
from repro.routing.selectors import make_selector
from repro.topology.generators import random_irregular

__all__ = [
    "AdaptiveItbResult",
    "AdaptiveItbSample",
    "busiest_default_itb_host",
    "measure_adaptive_point",
    "shifting_hotspot_traffic",
]

#: Traffic matrices the experiment sweeps.
MATRICES = ("hotspot", "shifting")


def busiest_default_itb_host(net: BuiltNetwork) -> Optional[int]:
    """The in-transit host carrying the most stamped ITB routes.

    Counted over every NIC's route table (ties break to the lowest
    host id); ``None`` when no stamped route has an in-transit hop —
    the fabric then offers adaptive selection nothing to move, and the
    caller falls back to a plain hotspot.  This is the principled
    worst-case hotspot: the paper's Figure 8 resource, located from
    the actual mapper output rather than hand-picked.
    """
    counts: Counter = Counter()
    for src in sorted(net.nics):
        table = net.nics[src].route_table
        if table is None:
            continue
        for dst in table.destinations():
            for host in table.entries[dst].itb_hosts:
                counts[host] += 1
    if not counts:
        return None
    return min(counts, key=lambda h: (-counts[h], h))


def shifting_hotspot_traffic(
    hosts: Sequence[int],
    hotspots: Sequence[int],
    period_ns: float,
    now_fn: Callable[[], float],
    fraction: float = 0.3,
) -> DestChooser:
    """A hotspot that cycles through ``hotspots`` every ``period_ns``.

    The active hotspot at simulation time ``t`` is
    ``hotspots[int(t / period_ns) % len(hotspots)]``; a ``fraction``
    of every other host's packets target it, the rest are uniform.
    Deterministic given the injection times, so runs replay exactly.
    """
    if not hotspots:
        raise ValueError("need at least one hotspot host")
    if period_ns <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    uniform = uniform_traffic(hosts)
    spots = list(hotspots)

    def choose(src: int, rng) -> int:
        hot = spots[int(now_fn() / period_ns) % len(spots)]
        if src != hot and rng.random() < fraction:
            return hot
        return uniform(src, rng)

    return choose


@dataclass
class AdaptiveItbSample:
    """One (policy, matrix, fabric size, rate) traffic run."""

    policy: str
    matrix: str
    n_switches: int
    rate: float
    hotspot: int
    stats: TrafficStats
    reselect_runs: int = 0
    reselect_forced: int = 0
    reselect_changed: int = 0
    decisions: int = 0
    engaged: int = 0

    @property
    def p99_latency_ns(self) -> float:
        """99th-percentile packet latency of the measurement window."""
        return self.stats.p99_latency_ns

    @property
    def mean_latency_ns(self) -> float:
        """Mean packet latency of the measurement window."""
        return self.stats.mean_latency_ns

    @property
    def accepted(self) -> float:
        """Accepted throughput (bytes/ns/host)."""
        return self.stats.accepted_bytes_per_ns_per_host


@dataclass
class AdaptiveItbResult:
    """Full static-vs-adaptive sweep over matrices and fabric sizes."""

    packet_size: int
    topo_seed: int
    hosts_per_switch: int
    rows: list[AdaptiveItbSample] = field(default_factory=list)

    def cell(self, matrix: str, n_switches: int) -> list[AdaptiveItbSample]:
        """All samples of one (matrix, fabric size), in run order."""
        return [r for r in self.rows
                if r.matrix == matrix and r.n_switches == n_switches]

    def p99(self, policy: str, matrix: str, n_switches: int) -> float:
        """Worst p99 latency of one policy in one cell (0 when absent)."""
        vals = [r.p99_latency_ns for r in self.cell(matrix, n_switches)
                if r.policy == policy]
        return max(vals) if vals else 0.0

    def best_adaptive(self, matrix: str,
                      n_switches: int) -> Optional[tuple[str, float]]:
        """The non-static policy with the lowest p99 in one cell."""
        best: Optional[tuple[str, float]] = None
        for row in self.cell(matrix, n_switches):
            if row.policy == "static":
                continue
            if best is None or row.p99_latency_ns < best[1]:
                best = (row.policy, row.p99_latency_ns)
        return best

    def adaptive_beats_static(self, matrix: str, n_switches: int) -> bool:
        """True when some adaptive policy improves on static p99."""
        static = self.p99("static", matrix, n_switches)
        best = self.best_adaptive(matrix, n_switches)
        return best is not None and static > 0 and best[1] < static


def measure_adaptive_point(
    policy: str,
    matrix: str,
    rate: float,
    n_switches: int,
    packet_size: int,
    duration_ns: float,
    warmup_ns: float,
    topo_seed: int,
    traffic_seed: int,
    hosts_per_switch: int,
    fraction: float = 0.35,
    interval_ns: float = 10_000.0,
    shift_period_ns: float = 40_000.0,
    view: str = "live",
    selector_seed: int = 2001,
    timings: Optional[Timings] = None,
    build: Callable = build_network,
) -> AdaptiveItbSample:
    """One independent (policy, matrix, rate) sample on a fresh build.

    The network is built with the shared load-experiment configuration
    (ITB firmware + routing, buffer pools, no host noise); a
    :class:`~repro.gm.mapper.ItbReselector` with the named policy then
    re-runs in-transit host selection every ``interval_ns``.  With
    ``view="live"`` the selector reads the obs registry's buffer
    occupancy gauges; ``view="zero"`` detaches the signal — the
    zero-load oracle arm, which must reproduce the static run byte for
    byte regardless of policy.
    """
    topo = random_irregular(
        n_switches, seed=topo_seed, hosts_per_switch=hosts_per_switch
    )
    net = build_load_network(topo, "itb", timings=timings, build=build)
    congestion = None
    if view == "live":
        from repro.obs.attach import attach_congestion_view, instrument_network

        telemetry = instrument_network(net, fabric_usage=False)
        congestion = attach_congestion_view(net, telemetry.registry)
    elif view != "zero":
        raise ValueError(f"unknown congestion view {view!r}")
    selector = make_selector(policy, view=congestion, seed=selector_seed)
    reselector = ItbReselector(net, selector, interval_ns=interval_ns)

    hosts = sorted(net.gm_hosts)
    hotspot = busiest_default_itb_host(net)
    if hotspot is None:
        hotspot = hosts[0]
    if matrix == "hotspot":
        pattern = hotspot_traffic(hosts, hotspot, fraction=fraction)
    elif matrix == "shifting":
        mates = net.topo.hosts_on(net.topo.switch_of(hotspot))
        pattern = shifting_hotspot_traffic(
            hosts,
            hotspots=mates if len(mates) > 1 else [hotspot],
            period_ns=shift_period_ns,
            now_fn=lambda: net.sim.now,
            fraction=fraction,
        )
    else:
        raise ValueError(f"unknown traffic matrix {matrix!r}")

    stats = drive_traffic(
        net,
        rate_bytes_per_ns_per_host=rate,
        packet_size=packet_size,
        duration_ns=duration_ns,
        warmup_ns=warmup_ns,
        pattern=pattern,
        seed=traffic_seed,
    )
    return AdaptiveItbSample(
        policy=policy,
        matrix=matrix,
        n_switches=n_switches,
        rate=rate,
        hotspot=hotspot,
        stats=stats,
        reselect_runs=reselector.runs,
        reselect_forced=reselector.forced,
        reselect_changed=reselector.pairs_changed,
        decisions=reselector.decisions,
        engaged=reselector.engaged,
    )
