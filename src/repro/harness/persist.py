"""Persist experiment results to JSON.

Long experiments (paper-scale Figure 7/8 series, 64-switch throughput
sweeps) are worth keeping: this module serializes the harness result
dataclasses to plain JSON and back, so EXPERIMENTS.md refreshes and
cross-run comparisons do not require re-simulation.

Only the figure results carry schema here; anything else can ride in
the free-form ``extra`` section.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro.harness.fig7 import Fig7Result, Fig7Row
from repro.harness.fig8 import Fig8Result, Fig8Row
from repro.harness.throughput import ThroughputResult

__all__ = ["load_results", "save_results"]

_FORMAT_VERSION = 1


def _fig7_to_dict(r: Fig7Result) -> dict:
    return {
        "kind": "fig7",
        "iterations": r.iterations,
        "rows": [
            {"size": row.size, "original_ns": row.original_ns,
             "modified_ns": row.modified_ns}
            for row in r.rows
        ],
    }


def _fig8_to_dict(r: Fig8Result) -> dict:
    return {
        "kind": "fig8",
        "iterations": r.iterations,
        "rows": [
            {"size": row.size, "ud_ns": row.ud_ns,
             "ud_itb_ns": row.ud_itb_ns}
            for row in r.rows
        ],
    }


def _throughput_to_dict(r: ThroughputResult) -> dict:
    return {
        "kind": "throughput",
        "n_switches": r.n_switches,
        "packet_size": r.packet_size,
        "seed": r.seed,
        "points": [
            {
                "routing": p.routing,
                "offered": p.offered_bytes_per_ns_per_host,
                "accepted": p.accepted,
                "mean_latency_ns": p.mean_latency_ns,
                "delivered": p.stats.delivered_packets,
                "dropped": p.stats.dropped_packets,
            }
            for p in r.points
        ],
    }


_SERIALIZERS = {
    Fig7Result: _fig7_to_dict,
    Fig8Result: _fig8_to_dict,
    ThroughputResult: _throughput_to_dict,
}


def save_results(
    path: Union[str, Path],
    results: dict,
    extra: Optional[dict] = None,
) -> Path:
    """Write named results to JSON.

    ``results`` maps a name (e.g. ``"fig7"``) to a supported result
    object; unsupported values raise.  ``extra`` is stored verbatim
    (must be JSON-serializable).
    """
    payload: dict[str, Any] = {"format_version": _FORMAT_VERSION,
                               "results": {}, "extra": extra or {}}
    for name, result in results.items():
        serializer = _SERIALIZERS.get(type(result))
        if serializer is None:
            raise TypeError(
                f"cannot persist {type(result).__name__};"
                f" supported: {[c.__name__ for c in _SERIALIZERS]}"
            )
        payload["results"][name] = serializer(result)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path]) -> dict:
    """Read results back; figure rows are rehydrated into their
    dataclasses (throughput points come back as plain dicts — their
    TrafficStats are aggregates, not replayable state)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format {payload.get('format_version')!r}")
    out: dict[str, Any] = {"extra": payload.get("extra", {})}
    for name, blob in payload["results"].items():
        kind = blob["kind"]
        if kind == "fig7":
            result = Fig7Result(iterations=blob["iterations"])
            result.rows = [Fig7Row(**row) for row in blob["rows"]]
            out[name] = result
        elif kind == "fig8":
            result8 = Fig8Result(iterations=blob["iterations"])
            result8.rows = [Fig8Row(**row) for row in blob["rows"]]
            out[name] = result8
        elif kind == "throughput":
            out[name] = blob  # summary dict; see docstring
        else:
            raise ValueError(f"unknown result kind {kind!r}")
    return out
