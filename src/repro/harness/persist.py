"""Persist experiment results to JSON.

Long experiments (paper-scale Figure 7/8 series, 64-switch throughput
sweeps) are worth keeping: this module serializes the harness result
dataclasses to plain JSON and back, so EXPERIMENTS.md refreshes and
cross-run comparisons do not require re-simulation.

Serialization is generic: every registered result kind is a dataclass
tree, encoded field-by-field (:func:`to_document`) and rebuilt from
its type hints (:func:`from_document`) — adding a new experiment means
one ``_RESULT_KINDS`` entry, not a hand-written ``_X_to_dict`` pair.
Documents are spec-keyed: when the experiment runner persists a run it
stores the full :class:`~repro.exp.spec.ExperimentSpec` beside the
result, so a saved file is a complete, reproducible description of
what was measured.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from pathlib import Path
from typing import Any, Optional, Union

from repro.harness.ablations import (AblationLoadResult,
                                     BufferPoolStudyResult,
                                     TimingSweepResult)
from repro.harness.adaptive import AdaptiveItbResult
from repro.harness.apps import AppsResult
from repro.harness.faultcamp import FaultCampaignResult
from repro.harness.fig7 import Fig7Result
from repro.harness.fig8 import Fig8Result
from repro.harness.root_study import RootStudyResult
from repro.harness.scale_study import ScaleStudyResult
from repro.harness.storm import StormResult
from repro.harness.throughput import ThroughputResult
from repro.harness.vcstudy import VcStudyResult

__all__ = ["from_document", "load_results", "save_results", "to_document"]

_FORMAT_VERSION = 2

#: kind name -> result dataclass; the single registry the generic
#: codec needs (both directions are derived from it).
_RESULT_KINDS: dict[str, type] = {
    "adaptive-itb": AdaptiveItbResult,
    "fault-campaign": FaultCampaignResult,
    "fig7": Fig7Result,
    "fig8": Fig8Result,
    "throughput": ThroughputResult,
    "apps": AppsResult,
    "root-study": RootStudyResult,
    "ablation-load": AblationLoadResult,
    "ablation-bufpool": BufferPoolStudyResult,
    "ablation-timing": TimingSweepResult,
    "vc-study": VcStudyResult,
    "partition-storm": StormResult,
    "scale-study": ScaleStudyResult,
}

_KIND_BY_TYPE = {cls: kind for kind, cls in _RESULT_KINDS.items()}


def to_document(obj: Any) -> Any:
    """Recursively encode a result dataclass tree as JSON-able values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_document(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, (list, tuple)):
        return [to_document(v) for v in obj]
    if isinstance(obj, dict):
        return {k: to_document(v) for k, v in obj.items()}
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        return obj.item()
    return obj


def _rebuild(hint: Any, value: Any) -> Any:
    """Rebuild one field value according to its type hint."""
    if value is None:
        return None
    origin = typing.get_origin(hint)
    if origin is Union:
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        if len(args) == 1:
            return _rebuild(args[0], value)
        return value
    if origin in (list, tuple) and isinstance(value, list):
        args = typing.get_args(hint)
        item_hint = args[0] if args else Any
        items = [_rebuild(item_hint, v) for v in value]
        return tuple(items) if origin is tuple else items
    if isinstance(hint, type) and dataclasses.is_dataclass(hint):
        return from_document(hint, value)
    return value


def from_document(cls: type, doc: dict) -> Any:
    """Rebuild a dataclass tree encoded by :func:`to_document`.

    Nested dataclasses are reconstructed from ``cls``'s resolved type
    hints, so every registered result kind round-trips losslessly.
    """
    hints = typing.get_type_hints(cls)
    kwargs = {
        f.name: _rebuild(hints.get(f.name, Any), doc[f.name])
        for f in dataclasses.fields(cls)
        if f.name in doc
    }
    return cls(**kwargs)


def save_results(
    path: Union[str, Path],
    results: dict,
    extra: Optional[dict] = None,
    specs: Optional[dict] = None,
) -> Path:
    """Write named results (and optionally their specs) to JSON.

    ``results`` maps a name (e.g. ``"fig7"``) to a registered result
    object; unsupported values raise.  ``specs`` optionally maps the
    same names to the :class:`~repro.exp.spec.ExperimentSpec` that
    produced each result (the experiment runner passes these).
    ``extra`` is stored verbatim (must be JSON-serializable).
    """
    payload: dict[str, Any] = {"format_version": _FORMAT_VERSION,
                               "results": {}, "extra": extra or {}}
    for name, result in results.items():
        kind = _KIND_BY_TYPE.get(type(result))
        if kind is None:
            raise TypeError(
                f"cannot persist {type(result).__name__}; supported:"
                f" {[c.__name__ for c in _KIND_BY_TYPE]}"
            )
        payload["results"][name] = {"kind": kind,
                                    "data": to_document(result)}
    if specs:
        payload["specs"] = {name: spec.to_dict()
                            for name, spec in specs.items()}
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path]) -> dict:
    """Read results back, rehydrating every kind into its dataclass.

    Returns ``{name: result, ..., "extra": {...}}``; when the file
    carries specs, they come back under ``"specs"`` as rebuilt
    :class:`~repro.exp.spec.ExperimentSpec` objects.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format {payload.get('format_version')!r}")
    out: dict[str, Any] = {"extra": payload.get("extra", {})}
    for name, blob in payload["results"].items():
        kind = blob["kind"]
        cls = _RESULT_KINDS.get(kind)
        if cls is None:
            raise ValueError(f"unknown result kind {kind!r}")
        out[name] = from_document(cls, blob["data"])
    if payload.get("specs"):
        from repro.exp.spec import ExperimentSpec

        out["specs"] = {name: ExperimentSpec.from_dict(doc)
                        for name, doc in payload["specs"].items()}
    return out
