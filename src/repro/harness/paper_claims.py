"""The paper's reported numbers, as machine-checkable claims.

Single source of truth for every quantitative statement in the
paper's evaluation (plus the motivation-level claims from the
referenced studies [2,3]).  The benchmark suite and EXPERIMENTS.md
both draw from here, and tests cross-check the timing model's derived
constants against these claims so calibration drift gets caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Claim", "CLAIMS", "claim"]


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper.

    Attributes
    ----------
    key:
        Machine id, e.g. ``"f7.mean_overhead_ns"``.
    statement:
        The claim in the paper's own terms.
    source:
        Where in the paper it appears.
    value / low / high:
        Nominal value and the acceptance band used by the benchmark
        assertions (bands encode "shape must hold", not measurement
        error bars).
    unit:
        Unit of ``value``.
    """

    key: str
    statement: str
    source: str
    value: float
    low: float
    high: float
    unit: str

    def holds(self, measured: float) -> bool:
        """Whether a measured value lands inside the acceptance band."""
        return self.low <= measured <= self.high

    def describe(self, measured: Optional[float] = None) -> str:
        """One-line rendering, optionally with a measured verdict."""
        s = f"{self.key}: paper {self.value:g} {self.unit} ({self.source})"
        if measured is not None:
            verdict = "OK" if self.holds(measured) else "VIOLATED"
            s += f"; measured {measured:g} {self.unit} [{verdict}]"
        return s


_ALL = [
    # ---- Figure 7 (Section 5, first test) -----------------------------
    Claim(
        key="f7.mean_overhead_ns",
        statement="difference in measured latencies ... on average, is"
                  " equal to 125 ns",
        source="Section 5, Figure 7 discussion",
        value=125.0, low=100.0, high=160.0, unit="ns",
    ),
    Claim(
        key="f7.max_overhead_ns",
        statement="difference in measured latencies does not exceed 300 ns",
        source="Section 5, Figure 7 discussion",
        value=300.0, low=0.0, high=300.0, unit="ns",
    ),
    Claim(
        key="f7.relative_short_pct",
        statement="relative overhead ... 1% for very short packets",
        source="Section 5, Figure 7 discussion",
        value=1.0, low=0.5, high=2.5, unit="%",
    ),
    Claim(
        key="f7.relative_long_pct",
        statement="relative overhead ... 0.4% for long packets",
        source="Section 5, Figure 7 discussion",
        value=0.4, low=0.0, high=0.7, unit="%",
    ),
    # ---- Figure 8 (Section 5, second test) ----------------------------
    Claim(
        key="f8.overhead_ns",
        statement="the cost of detecting an ITB packet and handling its"
                  " re-injection is around 1.3 us",
        source="Section 5, Figure 8 discussion",
        value=1300.0, low=1100.0, high=1600.0, unit="ns",
    ),
    Claim(
        key="f8.prior_estimate_ns",
        statement="this value is higher than our estimations used in"
                  " previous studies (around 0.5 us) [2,3]",
        source="Section 5, Figure 8 discussion",
        value=500.0, low=400.0, high=650.0, unit="ns",
    ),
    Claim(
        key="f8.relative_short_pct",
        statement="relative overhead ... ranges from 10% for short packets",
        source="Section 5, Figure 8 discussion",
        value=10.0, low=5.0, high=16.0, unit="%",
    ),
    Claim(
        key="f8.relative_long_pct",
        statement="... to 3% for long packets",
        source="Section 5, Figure 8 discussion",
        value=3.0, low=0.0, high=4.5, unit="%",
    ),
    # ---- motivation (Section 2, summarizing [2,3]) ---------------------
    Claim(
        key="m1.throughput_ratio_64sw",
        statement="network throughput can be easily doubled and, in some"
                  " cases, tripled",
        source="Section 2 (results of [2,3])",
        value=2.0, low=1.5, high=3.5, unit="x",
    ),
    # ---- methodology constants -----------------------------------------
    Claim(
        key="method.early_recv_bytes",
        statement="triggered by the LANai hardware when the first four"
                  " bytes of a packet are received",
        source="Section 4",
        value=4.0, low=4.0, high=4.0, unit="bytes",
    ),
    Claim(
        key="method.mcp_buffers",
        statement="the length of both sending and receiving queues ..."
                  " two buffers each",
        source="Section 4",
        value=2.0, low=2.0, high=2.0, unit="buffers",
    ),
    Claim(
        key="method.fig8_switch_crossings",
        statement="both paths cross the same number of switches (5)",
        source="Section 5",
        value=5.0, low=5.0, high=5.0, unit="switches",
    ),
    Claim(
        key="method.fig7_avg_crossings",
        statement="packets traversing 2.5 switches (on average)",
        source="Section 5",
        value=2.5, low=2.5, high=2.5, unit="switches",
    ),
    Claim(
        key="method.iterations",
        statement="latencies have been obtained by averaging 100"
                  " iterations for each message size",
        source="Section 5",
        value=100.0, low=100.0, high=100.0, unit="iterations",
    ),
]

CLAIMS: dict[str, Claim] = {c.key: c for c in _ALL}


def claim(key: str) -> Claim:
    """Lookup with a helpful error."""
    try:
        return CLAIMS[key]
    except KeyError:
        raise KeyError(
            f"no paper claim {key!r}; known: {sorted(CLAIMS)}"
        ) from None
