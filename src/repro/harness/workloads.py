"""Synthetic traffic generators for the network-level experiments.

These implement the workloads the authors' simulation studies [2,3]
use to motivate the ITB mechanism: open-loop packet injection at a
controlled per-host rate with uniform, hotspot, or fixed-permutation
destination patterns.

Injection is open-loop **at the firmware boundary** (descriptors
handed straight to the NIC): offered load is then exactly the
configured rate, independent of host-software costs, which is what a
latency-vs-offered-load curve requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.builder import BuiltNetwork
from repro.mcp.firmware import TransitPacket
from repro.sim.engine import Simulator, Timeout

__all__ = [
    "TrafficStats",
    "hotspot_traffic",
    "permutation_traffic",
    "uniform_traffic",
    "drive_traffic",
]

DestChooser = Callable[[int, np.random.Generator], int]


@dataclass
class TrafficStats:
    """Aggregate results of one traffic run."""

    offered_packets: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0
    offered_bytes: int = 0
    delivered_bytes: int = 0
    #: Network latency (injection -> last byte at destination), ns.
    latencies_ns: list = field(default_factory=list)
    duration_ns: float = 0.0
    n_hosts: int = 0

    @property
    def delivered_fraction(self) -> float:
        return self.delivered_packets / max(1, self.offered_packets)

    @property
    def accepted_bytes_per_ns_per_host(self) -> float:
        """Accepted throughput per host (bytes/ns)."""
        if self.duration_ns <= 0 or self.n_hosts == 0:
            return 0.0
        return self.delivered_bytes / self.duration_ns / self.n_hosts

    @property
    def mean_latency_ns(self) -> float:
        return float(np.mean(self.latencies_ns)) if self.latencies_ns else 0.0

    @property
    def p99_latency_ns(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return float(np.percentile(self.latencies_ns, 99))


def uniform_traffic(hosts: Sequence[int]) -> DestChooser:
    """Each packet targets a uniformly random other host."""
    hosts = list(hosts)

    def choose(src: int, rng: np.random.Generator) -> int:
        while True:
            dst = hosts[int(rng.integers(len(hosts)))]
            if dst != src:
                return dst

    return choose


def hotspot_traffic(
    hosts: Sequence[int], hotspot: int, fraction: float = 0.3
) -> DestChooser:
    """A ``fraction`` of packets target one hotspot host; rest uniform."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    uniform = uniform_traffic(hosts)

    def choose(src: int, rng: np.random.Generator) -> int:
        if src != hotspot and rng.random() < fraction:
            return hotspot
        return uniform(src, rng)

    return choose


def permutation_traffic(hosts: Sequence[int], seed: int = 0) -> DestChooser:
    """A fixed random permutation: every host sends to one partner."""
    hosts = list(hosts)
    rng = np.random.default_rng(seed)
    # Random derangement by rejection (hosts lists are small).
    while True:
        perm = list(rng.permutation(hosts))
        if all(a != b for a, b in zip(hosts, perm)):
            break
    mapping = dict(zip(hosts, perm))

    def choose(src: int, _rng: np.random.Generator) -> int:
        return mapping[src]

    return choose


def drive_traffic(
    net: BuiltNetwork,
    rate_bytes_per_ns_per_host: float,
    packet_size: int,
    duration_ns: float,
    pattern: Optional[DestChooser] = None,
    seed: int = 7,
    warmup_ns: float = 0.0,
    max_events: int = 50_000_000,
) -> TrafficStats:
    """Open-loop injection on every host, steady-state measurement.

    Injection runs continuously for ``warmup_ns + duration_ns``.
    Accounting uses the steady-state window ``[warmup, warmup +
    duration)``: *offered* counts packets whose injection attempt
    falls in the window, *accepted* counts packets whose last byte
    arrives in the window — the standard open-loop saturation
    methodology (a network past saturation delivers fewer bytes per
    unit time than are offered; queued backlog must not be credited).

    Latency samples are taken from packets delivered in the window,
    measured from the ``host_send`` call (so source queueing delay —
    the symptom of saturation — is included).
    """
    sim: Simulator = net.sim
    hosts = sorted(net.gm_hosts)
    if pattern is None:
        pattern = uniform_traffic(hosts)
    stats = TrafficStats(n_hosts=len(hosts), duration_ns=duration_ns)
    if rate_bytes_per_ns_per_host <= 0:
        raise ValueError("rate must be positive")
    mean_gap = packet_size / rate_bytes_per_ns_per_host

    t_start = sim.now
    t_meas = t_start + warmup_ns
    t_end = t_meas + duration_ns

    tracer = net.fabric.tracer

    def on_final(tp: TransitPacket) -> None:
        ctx = tp.trace
        if ctx is not None and ctx.root is not None:
            # Firmware-level workload: no GM host to close the message
            # root, so final disposition closes it here.
            ctx.root.close(
                sim.now,
                "ok" if not tp.dropped else (tp.drop_reason or "dropped"))
        if tp.dropped:
            stats.dropped_packets += 1
            return
        done = tp.t_complete_dst
        if done is None or not (t_meas <= done < t_end):
            return
        stats.delivered_packets += 1
        stats.delivered_bytes += tp.payload_len
        if tp.t_api_send is not None:
            stats.latencies_ns.append(done - tp.t_api_send)

    def injector(host: int):
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(host,))
        )
        nic = net.nics[host]
        while True:
            yield Timeout(float(rng.exponential(mean_gap)))
            if sim.now >= t_end:
                return
            dst = pattern(host, rng)
            if t_meas <= sim.now < t_end:
                stats.offered_packets += 1
                stats.offered_bytes += packet_size
            trace_ctx = None
            if tracer is not None and tracer.sample():
                root = tracer.begin(
                    "message", sim.now, component=f"traffic[{host}]",
                    src=host, dst=dst, length=packet_size)
                attempt = tracer.begin(
                    "attempt", sim.now, parent=root,
                    component=f"traffic[{host}]", seq=0, retry=0, last=True)
                trace_ctx = tracer.packet(root, attempt)
            nic.firmware.host_send(
                dst=dst, payload_len=packet_size,
                gm={"kind": "data", "last": True},
                on_delivered=on_final,
                trace=trace_ctx,
            )

    for host in hosts:
        sim.process(injector(host), name=f"inject[{host}]")
    sim.run(until=t_end, max_events=max_events)
    return stats
