"""Experiment harness: regenerates every figure of the paper.

One module per experiment (see DESIGN.md's experiment index):

* :mod:`repro.harness.fig7` — EXP-F7: per-packet overhead of the
  ITB-support code (paper Figure 7),
* :mod:`repro.harness.fig8` — EXP-F8: per-ITB ejection/re-injection
  overhead (paper Figure 8),
* :mod:`repro.harness.fig1` — EXP-F1: minimal routes enabled by ITBs
  (paper Figure 1),
* :mod:`repro.harness.throughput` — EXP-M1: network-level up*/down*
  vs ITB comparison (the paper's Section 2 motivation, from [2,3]),
* :mod:`repro.harness.ablations` — EXP-A1/A2/A3: design-choice
  ablations called out in DESIGN.md.

All runners return plain dataclasses; :mod:`repro.harness.report`
renders them as ASCII tables with paper-vs-measured columns.
"""

from repro.harness.paths import Fig6Paths, fig6_paths
from repro.harness.fig7 import Fig7Result, measure_fig7_point, run_fig7
from repro.harness.fig8 import Fig8Result, measure_fig8_point, run_fig8
from repro.harness.fig1 import Fig1Result, run_fig1
from repro.harness.throughput import (
    ThroughputPoint,
    ThroughputResult,
    measure_load_point,
    run_throughput,
)
from repro.harness.apps import (
    AppResult,
    AppsResult,
    measure_app_point,
    run_app_comparison,
    run_kernel,
)
from repro.harness.ablations import (
    AblationLoadResult,
    BufferPoolResult,
    BufferPoolStudyResult,
    TimingSweepResult,
    TimingSweepRow,
    run_ablation_buffer_pool,
    run_ablation_load,
    run_ablation_timing,
)
from repro.harness.breakdown import LatencyBreakdown, measure_breakdown
from repro.harness.workloads import (
    TrafficStats,
    drive_traffic,
    hotspot_traffic,
    permutation_traffic,
    uniform_traffic,
)
from repro.harness.metrics import LatencySummary, saturation_point, summarize_latencies
from repro.harness.paper_claims import CLAIMS, Claim, claim
from repro.harness.ascii_plot import line_plot
from repro.harness.report import (
    format_table,
    paper_vs_measured,
    profiler_table,
    registry_table,
)
from repro.harness.sweep import SweepPoint, SweepResult, sweep
from repro.harness.persist import load_results, save_results
from repro.harness.chrome_trace import (
    to_chrome_trace,
    to_counter_events,
    write_chrome_trace,
)
from repro.harness.root_study import (
    RootStudyResult,
    RootStudyRow,
    measure_root_point,
    run_root_study,
)
from repro.harness.timeline import PacketTimeline, packet_timeline
from repro.harness.validation import ValidationReport, validate_claims

__all__ = [
    "AblationLoadResult",
    "AppResult",
    "AppsResult",
    "BufferPoolResult",
    "BufferPoolStudyResult",
    "CLAIMS",
    "Claim",
    "Fig1Result",
    "Fig6Paths",
    "Fig7Result",
    "Fig8Result",
    "LatencyBreakdown",
    "LatencySummary",
    "PacketTimeline",
    "RootStudyResult",
    "RootStudyRow",
    "SweepPoint",
    "SweepResult",
    "ThroughputPoint",
    "ThroughputResult",
    "TimingSweepResult",
    "TimingSweepRow",
    "TrafficStats",
    "ValidationReport",
    "claim",
    "drive_traffic",
    "fig6_paths",
    "format_table",
    "hotspot_traffic",
    "line_plot",
    "load_results",
    "measure_app_point",
    "measure_breakdown",
    "measure_fig7_point",
    "measure_fig8_point",
    "measure_load_point",
    "measure_root_point",
    "packet_timeline",
    "paper_vs_measured",
    "profiler_table",
    "permutation_traffic",
    "run_ablation_buffer_pool",
    "run_ablation_load",
    "run_ablation_timing",
    "run_app_comparison",
    "run_fig1",
    "run_fig7",
    "run_fig8",
    "run_kernel",
    "run_root_study",
    "run_throughput",
    "save_results",
    "saturation_point",
    "summarize_latencies",
    "sweep",
    "registry_table",
    "to_chrome_trace",
    "to_counter_events",
    "uniform_traffic",
    "validate_claims",
    "write_chrome_trace",
]
