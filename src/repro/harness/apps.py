"""EXP-M2: distributed-application completion time (the paper's
future work).

Section 6 closes with: "we definitively will prove the behavior of
our mechanism analyzing the impact of using ITBs in the execution
time of distributed applications."  This module implements that
follow-on experiment: closed-loop communication kernels typical of
message-passing applications, run to completion under up*/down* vs
ITB routing, reporting wall-clock (simulated) execution time.

Kernels:

* **all-to-all exchange** — every host sends one message to every
  other host each iteration, then barriers; the pattern behind
  matrix transposition and FFTs, and the one that hammers the
  spanning-tree root hardest under up*/down*.
* **ring shift** — host *i* sends to host *i+1 (mod n)* each
  iteration; nearest-neighbour pressure, little root traffic.
* **random pairs** — a fresh random permutation each iteration;
  typical of irregular applications.

All kernels are closed-loop (an iteration ends only when every
message of the iteration arrived), so completion time directly
reflects network efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.builder import BuiltNetwork, build_network
from repro.harness.throughput import build_load_network
from repro.sim.engine import Timeout
from repro.topology.generators import random_irregular

__all__ = ["AppResult", "AppsResult", "measure_app_point",
           "run_app_comparison", "run_kernel"]


@dataclass
class AppResult:
    """One (kernel, routing) completion-time measurement."""

    kernel: str
    routing: str
    n_hosts: int
    iterations: int
    message_size: int
    completion_ns: float
    messages: int

    @property
    def completion_us(self) -> float:
        return self.completion_ns / 1000.0


@dataclass
class AppsResult:
    """The full kernel × routing comparison grid."""

    results: list[AppResult] = field(default_factory=list)

    def get(self, kernel: str, routing: str) -> AppResult:
        """The result of one (kernel, routing) cell."""
        for r in self.results:
            if r.kernel == kernel and r.routing == routing:
                return r
        raise KeyError(f"no result for ({kernel!r}, {routing!r})")

    def kernels(self) -> list[str]:
        """The measured kernels, sorted by name."""
        return sorted({r.kernel for r in self.results})

    def speedup(self, kernel: str) -> float:
        """Completion-time ratio UD / ITB for one kernel."""
        return (self.get(kernel, "updown").completion_ns
                / self.get(kernel, "itb").completion_ns)


def _pairs_all_to_all(hosts: Sequence[int], _it: int,
                      _rng: np.random.Generator):
    return [(s, d) for s in hosts for d in hosts if s != d]


def _pairs_ring(hosts: Sequence[int], _it: int, _rng: np.random.Generator):
    n = len(hosts)
    return [(hosts[i], hosts[(i + 1) % n]) for i in range(n)]


def _pairs_random(hosts: Sequence[int], _it: int, rng: np.random.Generator):
    n = len(hosts)
    while True:
        perm = list(rng.permutation(list(hosts)))
        if all(a != b for a, b in zip(hosts, perm)):
            return list(zip(hosts, perm))


KERNELS: dict[str, Callable] = {
    "all-to-all": _pairs_all_to_all,
    "ring": _pairs_ring,
    "random-pairs": _pairs_random,
}


def run_kernel(
    net: BuiltNetwork,
    kernel: str,
    iterations: int = 4,
    message_size: int = 1024,
    seed: int = 13,
) -> AppResult:
    """Run one kernel to completion on an already-built network."""
    if kernel not in KERNELS:
        raise KeyError(f"unknown kernel {kernel!r};"
                       f" have {sorted(KERNELS)}")
    pair_fn = KERNELS[kernel]
    sim = net.sim
    hosts = sorted(net.gm_hosts)
    rng = np.random.default_rng(seed)
    t_start = sim.now
    total_messages = 0
    finished = sim.event("app-finished")

    def driver():
        nonlocal total_messages
        for it in range(iterations):
            pairs = pair_fn(hosts, it, rng)
            total_messages += len(pairs)
            remaining = {"n": len(pairs)}
            barrier = sim.event(f"iter{it}")

            def on_final(tp, remaining=remaining, barrier=barrier):
                if tp.dropped:
                    raise RuntimeError(
                        f"app packet dropped: {tp.drop_reason}")
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    barrier.succeed()

            for s, d in pairs:
                net.nics[s].firmware.host_send(
                    dst=d, payload_len=message_size,
                    gm={"kind": "data", "last": True},
                    on_delivered=on_final,
                )
            yield barrier
            # Tiny compute phase between iterations.
            yield Timeout(1_000.0)
        finished.succeed()

    sim.process(driver(), name=f"app[{kernel}]")
    sim.run_until_event(finished)
    return AppResult(
        kernel=kernel,
        routing=net.config.routing.value,
        n_hosts=len(hosts),
        iterations=iterations,
        message_size=message_size,
        completion_ns=sim.now - t_start,
        messages=total_messages,
    )


def measure_app_point(
    kernel: str,
    routing: str,
    n_switches: int,
    iterations: int,
    message_size: int,
    hosts_per_switch: int,
    topo_seed: int,
    seed: int,
    build: Callable = build_network,
) -> AppResult:
    """One independent (kernel, routing) completion-time run."""
    topo = random_irregular(n_switches, seed=topo_seed,
                            hosts_per_switch=hosts_per_switch)
    net = build_load_network(topo, routing, build=build)
    return run_kernel(net, kernel, iterations=iterations,
                      message_size=message_size, seed=seed)


def run_app_comparison(
    n_switches: int = 16,
    kernels: Sequence[str] = ("all-to-all", "ring", "random-pairs"),
    iterations: int = 3,
    message_size: int = 1024,
    hosts_per_switch: int = 2,
    topo_seed: int = 11,
    seed: int = 13,
) -> list[AppResult]:
    """Run every kernel under both routings on the same topology
    (through the unified experiment pipeline)."""
    from repro.exp import ExperimentSpec, run_experiment

    result: AppsResult = run_experiment(ExperimentSpec(
        experiment="apps",
        n_switches=n_switches,
        kernels=tuple(kernels),
        iterations=iterations,
        message_size=message_size,
        hosts_per_switch=hosts_per_switch,
        topo_seed=topo_seed,
        seed=seed,
    ))
    return result.results
