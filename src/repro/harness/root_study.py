"""EXP-A5: spanning-tree root-placement sensitivity.

up*/down* quality hinges on the BFS root: a central root keeps valid
paths short; a peripheral root lengthens them and worsens the
concentration around itself.  ITB routing restores minimal paths for
*any* root (given in-transit hosts at the violation switches).

Empirically, on random irregular COWs the root *choice* turns out to
be second-order (a few percent either way, not always in the
intuitive direction), while the up*/down* *stretch over minimal* is
first-order (~10-15% regardless of root) — and ITB routing removes
the stretch entirely under every placement.  That is the robustness
property this study pins down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.routing.itb import ItbRouter
from repro.routing.minimal import MinimalRouter, switch_distances
from repro.routing.spanning_tree import build_orientation, choose_root
from repro.routing.updown import UpDownRouter
from repro.topology.generators import random_irregular
from repro.topology.graph import Topology

__all__ = ["RootStudyResult", "RootStudyRow", "measure_root_point",
           "run_root_study", "worst_root"]


def worst_root(topo: Topology) -> int:
    """The switch maximizing BFS eccentricity — the anti-optimal root."""
    def ecc(s: int) -> int:
        return max(switch_distances(topo, s).values())

    return max(topo.switches(), key=lambda s: (ecc(s), s))


@dataclass
class RootStudyRow:
    """Average fabric hops under one root placement."""

    root_label: str
    root: int
    avg_updown_hops: float
    avg_itb_hops: float
    avg_minimal_hops: float
    pairs_with_itbs: int
    n_pairs: int

    @property
    def itb_saving(self) -> float:
        """Average fabric hops ITB routing saves over up*/down*."""
        return self.avg_updown_hops - self.avg_itb_hops

    @property
    def updown_stretch(self) -> float:
        """up*/down* path inflation over minimal (1.0 = minimal)."""
        if self.avg_minimal_hops == 0:
            return 1.0
        return self.avg_updown_hops / self.avg_minimal_hops


@dataclass
class RootStudyResult:
    """All root placements, in spec order."""

    rows: list[RootStudyRow] = field(default_factory=list)


def _avg_hops(route_fn, hosts) -> float:
    total = n = 0
    for s, d in itertools.permutations(hosts, 2):
        total += len(route_fn(s, d).switch_hops())
        n += 1
    return total / n


def measure_root_point(
    label: str,
    which: str,
    n_switches: int,
    topo_seed: int,
    hosts_per_switch: int,
    switch_links: int,
) -> RootStudyRow:
    """Route quality under one root placement (pure routing analysis;
    the topology from ``topo_seed`` is regenerated deterministically,
    so points are independent and fan out cleanly)."""
    topo = random_irregular(n_switches, seed=topo_seed,
                            hosts_per_switch=hosts_per_switch,
                            switch_links=switch_links)
    hosts = topo.hosts()
    minimal = _avg_hops(MinimalRouter(topo).route, hosts)
    if which == "choose":
        root = choose_root(topo)
    elif which == "worst":
        root = worst_root(topo)
    else:
        root = int(which)
    orientation = build_orientation(topo, root=root)
    ud = UpDownRouter(topo, orientation)
    itb = ItbRouter(topo, orientation)
    itb_routes = {p: itb.itb_route(*p)
                  for p in itertools.permutations(hosts, 2)}
    return RootStudyRow(
        root_label=label,
        root=root,
        avg_updown_hops=_avg_hops(ud.route, hosts),
        avg_itb_hops=sum(len(r.switch_hops())
                         for r in itb_routes.values())
        / len(itb_routes),
        avg_minimal_hops=minimal,
        pairs_with_itbs=sum(1 for r in itb_routes.values()
                            if r.n_itbs > 0),
        n_pairs=len(itb_routes),
    )


def run_root_study(
    n_switches: int = 16,
    topo_seed: int = 33,
    hosts_per_switch: int = 1,
    switch_links: int = 3,
    roots: Sequence[tuple[str, str]] = (("optimal", "choose"),
                                        ("anti-optimal", "worst")),
) -> list[RootStudyRow]:
    """Compare route quality under different root placements
    (through the unified experiment pipeline).

    ``roots`` names the placements: ``"choose"`` = the mapper's
    min-eccentricity policy, ``"worst"`` = max-eccentricity, or an
    integer switch id as a string.
    """
    from repro.exp import ExperimentSpec, run_experiment

    result: RootStudyResult = run_experiment(ExperimentSpec(
        experiment="root-study",
        n_switches=n_switches,
        topo_seed=topo_seed,
        hosts_per_switch=hosts_per_switch,
        switch_links=switch_links,
        params={"roots": [list(r) for r in roots]},
    ))
    return result.rows
