"""EXP-FC: the fault campaign — GM reliability under injected faults.

The paper's Section 3 premise is that GM provides "reliable and
ordered packet delivery in presence of network faults"; the in-transit
buffer mechanism must not break that.  This harness measures it: a
bidirectional staggered message workload on the Figure 6 testbed runs
under a grid of probabilistic packet-fault rates crossed with dynamic
fault schedules (cables dying, the in-transit host going down), and
the campaign reports what the reliability layer did about it —
retransmissions, timeouts, route remaps, and whether every message was
either delivered or failed gracefully with ``GmSendError``.

Every point is deterministic: packet fates are keyed by
``(seed, packet id)`` (see :mod:`repro.network.faults`), host noise is
seeded, and the schedule is fixed simulated times — so a campaign run
is byte-reproducible and diffable as a golden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.builder import BuiltNetwork, build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.host import GmSendError
from repro.network.faults import FaultEvent, FaultPlan, install_fault_plan
from repro.sim.engine import Timeout

__all__ = [
    "SCHEDULES",
    "FaultCampaignResult",
    "FaultCampaignRow",
    "measure_fault_point",
]

#: Named dynamic-fault schedules (JSON-able event specs; ``target``
#: and ``between`` entries name fig6 roles, resolved at build time).
SCHEDULES: dict[str, tuple] = {
    # Probabilistic faults only.
    "none": (),
    # The in-transit host dies mid-run and comes back; later one of
    # the parallel inter-switch cables dies and is re-cabled.  Both
    # faults cut in-flight worms and trigger a route remap.
    "campaign": (
        {"kind": "host-down", "target": "itb",
         "at_ns": 150_000.0, "repair_ns": 400_000.0},
        {"kind": "link-down", "between": ["sw1", "sw2"],
         "at_ns": 800_000.0, "repair_ns": 300_000.0},
    ),
    # Switch 1 loses its crossbar state and recovers.
    "switch-reset": (
        {"kind": "switch-reset", "target": "sw1",
         "at_ns": 300_000.0, "repair_ns": 200_000.0},
    ),
}


@dataclass
class FaultCampaignRow:
    """One campaign grid cell: fault configuration and what happened."""

    loss: float
    corrupt: float
    schedule: str
    messages: int           # messages attempted (both directions)
    delivered: int          # received in order by the application
    completed: int          # send-completion events that succeeded
    failed: int             # send-completion events failed (GmSendError)
    retransmissions: int
    timeouts: int
    nacks: int
    packets_lost: int
    packets_corrupted: int
    killed_in_flight: int
    faults_injected: int
    repairs: int
    remap_events: int

    @property
    def accounted(self) -> bool:
        """Every accepted message either completed or failed cleanly."""
        return self.completed + self.failed == self.messages

    @property
    def lost_messages(self) -> int:
        """Messages neither delivered nor failed — must be zero."""
        return self.messages - self.completed - self.failed


@dataclass
class FaultCampaignResult:
    rows: list[FaultCampaignRow] = field(default_factory=list)
    n_messages: int = 0
    message_size: int = 0

    @property
    def all_accounted(self) -> bool:
        """The headline claim: no message is ever silently lost."""
        return all(row.accounted for row in self.rows)

    @property
    def total_retransmissions(self) -> int:
        return sum(row.retransmissions for row in self.rows)


def _resolve_events(net: BuiltNetwork, schedule: tuple) -> tuple:
    """Resolve JSON-able event specs into :class:`FaultEvent`\\ s."""
    events = []
    for ev in schedule:
        target = ev.get("target")
        if isinstance(target, str):
            target = net.roles[target]
        if "between" in ev:
            a, b = (net.roles[x] if isinstance(x, str) else x
                    for x in ev["between"])
            for link in net.topo.links:
                if {link.node_a, link.node_b} == {a, b}:
                    target = link.link_id
                    break
            else:
                raise ValueError(f"no cable between {ev['between']}")
        events.append(FaultEvent(
            kind=ev["kind"], target=target, at_ns=float(ev["at_ns"]),
            repair_ns=ev.get("repair_ns"),
        ))
    return tuple(events)


def measure_fault_point(
    loss: float,
    corrupt: float,
    schedule: str,
    n_messages: int,
    message_size: int,
    seed: int,
    timings: Optional[Timings] = None,
    gap_ns: float = 30_000.0,
    horizon_ns: float = 50_000_000.0,
    build: Callable = build_network,
) -> FaultCampaignRow:
    """Run one campaign grid cell and account for every message.

    ``n_messages`` staggered sends (one every ``gap_ns``) run in each
    direction between hosts 1 and 2 while the named ``schedule``'s
    dynamic faults strike; the run ends at ``horizon_ns``, long after
    quiesce.  Returns the row of reliability counters.
    """
    config = NetworkConfig(firmware="itb", routing="itb", reliable=True,
                           seed=seed)
    if timings is not None:
        config.timings = timings
    net = build("fig6", config=config)
    plan = FaultPlan(
        loss_probability=loss, corrupt_probability=corrupt, seed=seed,
        events=_resolve_events(net, SCHEDULES[schedule]),
    )
    install_fault_plan(net, plan)
    sim = net.sim
    a, b = net.gm("host1"), net.gm("host2")
    delivered = {"n": 0}
    completed = {"n": 0}
    failed = {"n": 0}

    def receiver(gm):
        while True:
            yield gm.receive()
            delivered["n"] += 1

    def waiter(done):
        try:
            yield done
            completed["n"] += 1
        except GmSendError:
            failed["n"] += 1

    def sender(gm, dst):
        for i in range(n_messages):
            sim.process(waiter(gm.send(dst, message_size, tag=i)),
                        name="fc-wait")
            yield Timeout(gap_ns)

    sim.process(receiver(a), name="fc-rx-a")
    sim.process(receiver(b), name="fc-rx-b")
    sim.process(sender(a, b.host), name="fc-tx-a")
    sim.process(sender(b, a.host), name="fc-tx-b")
    sim.run(until=horizon_ns)
    return FaultCampaignRow(
        loss=loss, corrupt=corrupt, schedule=schedule,
        messages=2 * n_messages,
        delivered=delivered["n"],
        completed=completed["n"],
        failed=failed["n"],
        retransmissions=a.retransmissions + b.retransmissions,
        timeouts=a.timeouts + b.timeouts,
        nacks=a.nacks_sent + b.nacks_sent,
        packets_lost=plan.lost,
        packets_corrupted=plan.corrupted,
        killed_in_flight=plan.killed_in_flight,
        faults_injected=plan.faults_injected,
        repairs=plan.repairs,
        remap_events=plan.remap_events,
    )
