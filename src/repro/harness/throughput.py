"""EXP-M1: network-level up*/down* vs ITB comparison.

The paper's Section 2 summarizes the motivation established by the
authors' simulation studies [2,3]: on medium irregular networks, the
ITB mechanism roughly doubles (sometimes triples) network throughput
relative to up*/down*, because it restores minimal paths, balances
traffic away from the spanning-tree root, and breaks wormhole
blocking chains by ejecting packets.

This experiment regenerates that comparison on the simulator: random
irregular COW topologies, open-loop uniform traffic, injection-rate
sweep; for each rate we record accepted throughput and average packet
latency under both routings (both on the ITB firmware — the routing,
not the firmware, is the variable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.builder import BuiltNetwork, build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.workloads import DestChooser, TrafficStats, drive_traffic
from repro.topology.generators import random_irregular
from repro.topology.graph import Topology

__all__ = ["ThroughputPoint", "ThroughputResult", "measure_load_point",
           "run_throughput", "build_load_network"]


@dataclass
class ThroughputPoint:
    """One (routing, offered-rate) sample."""

    routing: str
    offered_bytes_per_ns_per_host: float
    stats: TrafficStats

    @property
    def accepted(self) -> float:
        return self.stats.accepted_bytes_per_ns_per_host

    @property
    def mean_latency_ns(self) -> float:
        return self.stats.mean_latency_ns


@dataclass
class ThroughputResult:
    """Full sweep: points per routing plus summary ratios."""

    n_switches: int
    packet_size: int
    seed: int
    points: list[ThroughputPoint] = field(default_factory=list)

    def series(self, routing: str) -> list[ThroughputPoint]:
        """All points of one routing, in offered-load order."""
        return [p for p in self.points if p.routing == routing]

    def peak_accepted(self, routing: str) -> float:
        """Highest accepted throughput seen under one routing."""
        pts = self.series(routing)
        return max((p.accepted for p in pts), default=0.0)

    @property
    def throughput_ratio(self) -> float:
        """Peak ITB throughput over peak up*/down* throughput."""
        ud = self.peak_accepted("updown")
        return self.peak_accepted("itb") / ud if ud > 0 else float("inf")


def build_load_network(
    topo: Topology,
    routing: str,
    timings: Optional[Timings] = None,
    seed: int = 2001,
    pool_bytes: int = 1024 * 1024,
    build: Callable = build_network,
    lanes: int = 1,
    lane_policy: str = "fixed",
) -> BuiltNetwork:
    """A network configured for load experiments.

    In-transit hosts use the proposed circular buffer pool (per [2,3]
    the load studies assume ejected packets are always accepted, with
    flush-beyond-saturation), and host-noise is disabled so curves are
    smooth.  ``build`` lets the experiment pipeline inject its cached
    build path.  ``lanes`` / ``lane_policy`` configure virtual-channel
    lanes on the fabric (the ``vc-study`` arms); the single-lane
    default is the paper's stock switch.
    """
    t = (timings or Timings()).with_overrides(host_jitter_sigma_ns=0.0)
    config = NetworkConfig(
        firmware="itb",
        routing=routing,
        timings=t,
        reliable=False,
        recv_buffer_kind="pool",
        pool_bytes=pool_bytes,
        seed=seed,
        lanes=lanes,
        lane_policy=lane_policy,
    )
    return build(topo, config=config)


def measure_load_point(
    routing: str,
    rate: float,
    n_switches: int,
    packet_size: int,
    duration_ns: float,
    warmup_ns: float,
    topo_seed: int,
    traffic_seed: int,
    hosts_per_switch: int,
    pattern_factory=None,
    timings: Optional[Timings] = None,
    build: Callable = build_network,
) -> TrafficStats:
    """One independent (routing, offered-rate) sample on a fresh build."""
    topo = random_irregular(
        n_switches, seed=topo_seed, hosts_per_switch=hosts_per_switch
    )
    net = build_load_network(topo, routing, timings=timings, build=build)
    pattern: Optional[DestChooser] = None
    if pattern_factory is not None:
        pattern = pattern_factory(sorted(net.gm_hosts))
    return drive_traffic(
        net,
        rate_bytes_per_ns_per_host=rate,
        packet_size=packet_size,
        duration_ns=duration_ns,
        warmup_ns=warmup_ns,
        pattern=pattern,
        seed=traffic_seed,
    )


def run_throughput(
    n_switches: int = 16,
    packet_size: int = 512,
    rates: Sequence[float] = (0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10),
    duration_ns: float = 300_000.0,
    warmup_ns: float = 30_000.0,
    topo_seed: int = 11,
    traffic_seed: int = 7,
    hosts_per_switch: int = 1,
    routings: Sequence[str] = ("updown", "itb"),
    pattern_factory=None,
    timings: Optional[Timings] = None,
) -> ThroughputResult:
    """Sweep offered load under both routings on one random topology
    (through the unified experiment pipeline).

    ``rates`` are offered loads in bytes/ns/host (link capacity is
    0.16 bytes/ns).  A fresh network is built per point so runs are
    independent.  ``pattern_factory(hosts)`` may supply a non-uniform
    destination pattern (callables ride in ``spec.params``, so such a
    spec is not persistable and fans out only if picklable).
    """
    from repro.exp import ExperimentSpec, run_experiment

    params = {}
    if pattern_factory is not None:
        params["pattern_factory"] = pattern_factory
    return run_experiment(ExperimentSpec(
        experiment="throughput",
        n_switches=n_switches,
        packet_size=packet_size,
        rates=tuple(rates),
        duration_ns=duration_ns,
        warmup_ns=warmup_ns,
        topo_seed=topo_seed,
        traffic_seed=traffic_seed,
        hosts_per_switch=hosts_per_switch,
        routings=tuple(routings),
        timings=timings,
        params=params,
    ))
