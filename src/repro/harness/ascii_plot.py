"""Terminal line plots for the figure series.

The paper's Figures 7 and 8 are latency-vs-size curves; the benchmark
harness prints them as compact ASCII charts so a reproduction run
shows the *shape* at a glance without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["line_plot"]

_MARKERS = "ox+*#@"


def _format_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.1e}"
    return f"{v:.3g}"


def line_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    logx: bool = False,
) -> str:
    """Render one or more y-series over shared x values.

    Each series gets a marker from ``o x + * # @`` (in insertion
    order); collisions print the later series' marker.  Returns the
    chart as a string.
    """
    if not xs:
        raise ValueError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length != xs length")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")

    def xt(x: float) -> float:
        if logx:
            if x <= 0:
                raise ValueError("logx needs positive x values")
            return math.log10(x)
        return float(x)

    tx = [xt(x) for x in xs]
    x_lo, x_hi = min(tx), max(tx)
    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), _MARKERS):
        for x, y in zip(tx, ys):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top, y_bot = _format_tick(y_hi), _format_tick(y_lo)
    label_w = max(len(y_top), len(y_bot))
    for i, row in enumerate(grid):
        if i == 0:
            label = y_top.rjust(label_w)
        elif i == height - 1:
            label = y_bot.rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_left, x_right = _format_tick(min(xs)), _format_tick(max(xs))
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (label_w + 2) + x_left + " " * max(1, pad) + x_right)
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in
        zip(series.items(), _MARKERS)
    )
    footer = []
    if xlabel:
        footer.append(xlabel)
    if ylabel:
        footer.append(f"y: {ylabel}")
    footer.append(legend)
    lines.append(" " * (label_w + 2) + "    ".join(footer))
    return "\n".join(lines)
