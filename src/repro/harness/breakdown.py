"""One-way latency decomposition.

Breaks a message's end-to-end latency into the component budget the
paper's timing arguments reason about: host software, SDMA, send
machine, wire + switches, receive machine + ITB check, RDMA, and —
for in-transit paths — the per-ITB forward cost.  Sourced from the
packet's timestamps plus the structured trace, so the numbers are
*observed*, not re-derived from the timing constants (tests compare
the two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.builder import BuiltNetwork
from repro.mcp.firmware import TransitPacket
from repro.routing.routes import ItbRoute, SourceRoute

__all__ = ["LatencyBreakdown", "measure_breakdown"]


@dataclass
class LatencyBreakdown:
    """Observed one-way component budget, all in nanoseconds."""

    total_ns: float
    host_and_sdma_ns: float     # firmware descriptor -> first byte on wire
    network_ns: float           # injection -> last byte at the final NIC
    recv_and_rdma_ns: float     # reception -> handed to host software
    itb_forward_ns: float       # total time spent inside transit hosts
    n_itbs: int
    payload_len: int

    def rows(self) -> list[tuple[str, float, float]]:
        """(component, ns, percent) rows for reporting."""
        parts = [
            ("host send + SDMA", self.host_and_sdma_ns),
            ("wire + switches", self.network_ns - self.itb_forward_ns),
            ("in-transit forwards", self.itb_forward_ns),
            ("recv + RDMA + host", self.recv_and_rdma_ns),
        ]
        return [(name, ns, 100.0 * ns / self.total_ns)
                for name, ns in parts]


def measure_breakdown(
    net: BuiltNetwork,
    src: Union[str, int],
    dst: Union[str, int],
    size: int,
    route: Optional[Union[SourceRoute, ItbRoute]] = None,
) -> LatencyBreakdown:
    """Send one packet and decompose its one-way latency.

    Requires a network built with ``trace=True`` when per-ITB forward
    times are wanted (they come from the trace); otherwise the ITB
    component is derived from the packet's recorded forward
    timestamps.
    """
    if isinstance(route, SourceRoute):
        route = ItbRoute((route,))
    src_id, dst_id = net.host_id(src), net.host_id(dst)
    done = net.sim.event("breakdown")
    holder: dict[str, TransitPacket] = {}

    def on_final(tp: TransitPacket) -> None:
        holder["tp"] = tp
        done.succeed()

    net.nics[src_id].firmware.host_send(
        dst=dst_id, payload_len=size, gm={"last": True},
        on_delivered=on_final, route=route,
    )
    net.sim.run_until_event(done)
    tp = holder["tp"]
    if tp.dropped:
        raise RuntimeError(f"breakdown packet dropped: {tp.drop_reason}")
    assert tp.t_api_send is not None and tp.t_inject is not None
    assert tp.t_complete_dst is not None and tp.t_deliver is not None

    # Time inside transit hosts: from each segment's arrival at the
    # transit NIC (recorded in itb_times as the Early-Recv instant) to
    # that segment's re-injection.  The trace gives exact re-inject
    # instants; without a trace, approximate with the firmware cost.
    itb_ns = 0.0
    if tp.itb_times:
        reinjects = []
        if net.trace is not None:
            for rec in net.trace.records():
                if (rec.kind in ("reinject_immediate", "reinject_pending")
                        and rec.detail.get("pid") == tp.pid):
                    reinjects.append(rec.time)
        if len(reinjects) == len(tp.itb_times):
            itb_ns = sum(r - s for s, r in zip(tp.itb_times, reinjects))
        else:
            itb_ns = len(tp.itb_times) * net.config.timings.itb_forward_ns

    return LatencyBreakdown(
        total_ns=tp.t_deliver - tp.t_api_send,
        host_and_sdma_ns=tp.t_inject - tp.t_api_send,
        network_ns=tp.t_complete_dst - tp.t_inject,
        recv_and_rdma_ns=tp.t_deliver - tp.t_complete_dst,
        itb_forward_ns=itb_ns,
        n_itbs=len(tp.itb_times),
        payload_len=tp.payload_len,
    )
