"""ASCII reporting: experiment tables and paper-vs-measured rows.

This module is also the *single* rendering path for telemetry: NIC
counters, fabric-usage statistics, and any other component metric all
print through :func:`registry_table` once they are registered in a
:class:`repro.obs.registry.MetricsRegistry` — there are deliberately
no bespoke per-silo summary tables (``NicStats`` and ``FabricUsage``
summaries used to be assembled by hand at every call site; wire the
network with :func:`repro.obs.attach.instrument_network` instead).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.obs.profiler import Profiler
    from repro.obs.registry import MetricsRegistry

__all__ = ["QUANTILE_HEADERS", "format_table", "paper_vs_measured",
           "profiler_table", "quantile_cells", "registry_table"]

#: The standard latency quantiles every table renders, as
#: ``(probability, LatencySummary attribute)`` pairs.
_QUANTILES = ((0.50, "p50"), (0.90, "p90"), (0.99, "p99"), (0.999, "p999"))

#: Column headers matching :func:`quantile_cells` output.
QUANTILE_HEADERS = ("p50 (us)", "p90 (us)", "p99 (us)", "p99.9 (us)")


def quantile_cells(source: Any) -> tuple[str, ...]:
    """Render the standard latency quantiles (µs) of any source.

    The one shared formatting path for quantiles: accepts a
    :class:`~repro.obs.registry.Histogram` (interpolated bucket
    quantiles) or a :class:`~repro.harness.metrics.LatencySummary`
    (exact sample percentiles) and returns the four cells matching
    :data:`QUANTILE_HEADERS`.
    """
    cells = []
    for q, attr in _QUANTILES:
        if hasattr(source, "quantile"):
            value = source.quantile(q)
        else:
            value = getattr(source, attr)
        cells.append(f"{value / 1000.0:.2f}")
    return tuple(cells)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows: list[list[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        str_rows.append(cells)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(
    entries: Sequence[tuple[str, str, str, bool]], title: str = ""
) -> str:
    """Render (quantity, paper value, measured value, shape-holds) rows."""
    rows = [
        (name, paper, measured, "yes" if ok else "NO")
        for (name, paper, measured, ok) in entries
    ]
    return format_table(
        ["quantity", "paper", "measured", "shape holds"], rows, title=title
    )


def registry_table(
    registry: "MetricsRegistry",
    title: str = "telemetry",
    kinds: Sequence[str] = ("counter", "gauge"),
    nonzero_only: bool = True,
    name_prefix: Optional[str] = None,
    limit: Optional[int] = None,
) -> str:
    """Render registered metrics as one ASCII table.

    The shared summary path for every stat silo: ``NicStats``
    counters, buffer gauges, and fabric-usage statistics all print
    here once wired through the registry.  ``nonzero_only`` drops
    all-zero rows (most per-channel metrics are quiet in small runs);
    ``name_prefix`` filters a metric family; ``limit`` truncates to
    the first N rows after sorting by name then labels.

    Histograms render through the shared quantile path
    (:func:`quantile_cells`) in a second table with per-quantile
    columns when ``"histogram"`` is in ``kinds``.
    """
    rows: list[tuple[str, str, float]] = []
    hist_rows: list[tuple] = []
    for metric in registry.collect():
        if metric.kind not in kinds:
            continue
        if name_prefix is not None and not metric.name.startswith(name_prefix):
            continue
        value = float(metric.value)
        if nonzero_only and value == 0.0:
            continue
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(metric.labels.items()))
        if metric.kind == "histogram":
            hist_rows.append((metric.name, labels, int(metric.count),
                              *quantile_cells(metric)))
            continue
        rows.append((metric.name, labels, value))
    if limit is not None:
        rows = rows[:limit]
        hist_rows = hist_rows[:limit]
    parts = []
    if rows or not hist_rows:
        parts.append(
            format_table(["metric", "labels", "value"], rows, title=title))
    if hist_rows:
        parts.append(format_table(
            ["histogram", "labels", "count", *QUANTILE_HEADERS],
            hist_rows, title="" if parts else title))
    return "\n\n".join(parts)


def profiler_table(
    profiler: "Profiler", title: str = "engine profile", limit: int = 12
) -> str:
    """Render a profiler's hottest components as an ASCII table.

    One row per component kind (``send``, ``sdma``, ...), descending
    wall-clock share, with the engine total as the last row.
    """
    total_wall = max(profiler.wall_ns_total, 1e-9)
    rows: list[tuple[str, Any, float, float]] = []
    for kind, entry in list(profiler.by_kind().items())[:limit]:
        rows.append((kind, int(entry["events"]),
                     entry["wall_ns"] / 1e6,
                     100.0 * entry["wall_ns"] / total_wall))
    rows.append(("TOTAL", profiler.events_total,
                 profiler.wall_ns_total / 1e6, 100.0))
    return format_table(
        ["component", "events", "wall (ms)", "wall (%)"], rows, title=title
    )
