"""ASCII reporting: experiment tables and paper-vs-measured rows."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "paper_vs_measured"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows: list[list[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        str_rows.append(cells)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(
    entries: Sequence[tuple[str, str, str, bool]], title: str = ""
) -> str:
    """Render (quantity, paper value, measured value, shape-holds) rows."""
    rows = [
        (name, paper, measured, "yes" if ok else "NO")
        for (name, paper, measured, ok) in entries
    ]
    return format_table(
        ["quantity", "paper", "measured", "shape holds"], rows, title=title
    )
