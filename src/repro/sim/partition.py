"""Conservative space-partitioned parallel simulation core.

The single-process engine (:mod:`repro.sim.engine`) drains one
calendar; this module coordinates *K* independent calendars — one per
fabric partition — under the classic conservative (Chandy-Misra style)
time-window protocol:

* Each :class:`Partition` owns a :class:`~repro.sim.engine.Simulator`
  and a set of named message ports.  Cross-partition interactions go
  exclusively through :meth:`Partition.send`, which stamps the message
  with a delivery time at least ``lookahead`` in the future —
  the cut-link wire latency, the physical guarantee that nothing can
  cross a partition boundary faster.
* The :class:`PartitionedEngine` runs a barrier loop: with ``T`` the
  earliest pending event anywhere, every partition drains its calendar
  strictly below ``T + lookahead`` (``Simulator.run_window``), then
  the collected messages are merged in deterministic
  ``(time, priority, src_partition, seq)`` order and scheduled into
  the destination calendars with ``schedule_at``.  Any message sent
  inside a window lands at or after the window's end, so a delivery
  can never be scheduled below an already-dispatched callback — the
  merged per-partition event stream keeps the engine's exact
  ``(time, priority, seq)`` order.
* Executors: *inline* (partitions drained sequentially in index order
  — the deterministic reference, and what ``jobs=1`` runs) and
  *forked* (partitions spread over ``jobs`` worker processes via the
  same fork-and-pipe machinery the experiment runner's point fan-out
  uses; the built models are inherited copy-on-write, only window
  commands and port messages cross the pipes).  Both executors issue
  the identical window/delivery sequence, so results are independent
  of the worker count — the determinism contract
  (``docs/PARALLEL.md``) and ``tests/test_partition.py`` pin this.

The port payloads must be picklable for the forked executor (plain
tuples of numbers/strings are the intended currency); handlers run
partition-side and may close over arbitrary local state.
"""

from __future__ import annotations

import multiprocessing
import time as _time
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator

__all__ = ["Partition", "PartitionError", "PartitionedEngine"]


class PartitionError(RuntimeError):
    """Raised for partition-protocol misuse (bad delay, unknown port)."""


#: Message tuple layout: (time, priority, src_partition, seq, dst
#: partition, port, payload).  Sorting the first four fields is the
#: deterministic global merge order.
_TIME, _PRIO, _SRC, _SEQ, _DST, _PORT, _PAYLOAD = range(7)


class Partition:
    """One partition: a simulator, its ports, and its outbox.

    ``index`` must equal the partition's position in the engine's
    partition list.  ``finalize`` (optional) is called once after the
    run and must return a *picklable* result — in forked mode it runs
    inside the worker process and the value crosses the pipe.
    """

    def __init__(self, index: int, sim: Simulator,
                 finalize: Optional[Callable[[], Any]] = None) -> None:
        self.index = index
        self.sim = sim
        self.finalize = finalize
        #: Set by the engine at construction; :meth:`send` enforces it.
        self.lookahead: float = 0.0
        self._handlers: dict[str, Callable[[Any], None]] = {}
        self._outbox: list[tuple] = []
        self._seq = 0

    def on_message(self, port: str,
                   handler: Callable[[Any], None]) -> None:
        """Register the handler invoked for deliveries to ``port``."""
        self._handlers[port] = handler

    def send(self, dst: int, port: str, payload: Any,
             delay: Optional[float] = None) -> None:
        """Queue a cross-partition message for the barrier merge.

        Delivered into partition ``dst`` at ``sim.now + delay``;
        ``delay`` defaults to (and may never undercut) the engine's
        lookahead — that bound is what makes the window protocol safe.
        """
        lookahead = self.lookahead
        if delay is None:
            delay = lookahead
        elif delay < lookahead:
            raise PartitionError(
                f"cross-partition delay {delay} undercuts the lookahead"
                f" {lookahead}"
            )
        self._seq += 1
        self._outbox.append(
            (self.sim.now + delay, 0, self.index, self._seq,
             dst, port, payload))

    def deliver(self, time: float, priority: int, port: str,
                payload: Any) -> None:
        """Schedule one merged message into this partition's calendar."""
        try:
            handler = self._handlers[port]
        except KeyError:
            raise PartitionError(
                f"partition {self.index} has no port {port!r}"
            ) from None
        self.sim.schedule_at(time, lambda: handler(payload), priority)

    def drain_outbox(self) -> list[tuple]:
        """Hand the engine every message queued since the last drain
        (in send order) and reset the outbox."""
        out = self._outbox
        self._outbox = []
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Partition {self.index} t={self.sim.now:.1f}ns"
                f" ports={sorted(self._handlers)}>")


class PartitionedEngine:
    """Barrier-synchronized execution of K partition calendars."""

    def __init__(self, partitions: list[Partition], lookahead: float,
                 jobs: int = 1) -> None:
        if not partitions:
            raise PartitionError("need at least one partition")
        if lookahead <= 0.0:
            raise PartitionError(
                f"lookahead must be positive, got {lookahead}")
        for i, part in enumerate(partitions):
            if part.index != i:
                raise PartitionError(
                    f"partition at position {i} carries index {part.index}")
            part.lookahead = lookahead
        self.partitions = partitions
        self.lookahead = lookahead
        self.jobs = max(1, jobs)
        #: windows/messages/dropped are deterministic (identical for
        #: every executor and worker count); stall_s is wall-clock
        #: parent time blocked on worker barriers — telemetry only,
        #: never part of a persisted summary.
        self.stats: dict[str, Any] = {
            "windows": 0, "messages": 0, "dropped": 0,
            "stall_s": 0.0, "mode": "inline", "workers": 1,
        }

    # -- public API -----------------------------------------------------

    def run(self, until: float) -> list[Any]:
        """Run every partition to ``until``; return finalize results.

        Events strictly below ``until`` run under the window protocol;
        the final barrier then lets each partition settle events at
        exactly ``until`` (matching ``Simulator.run(until)``'s
        inclusive bound) and advances every clock to ``until``.
        Messages whose delivery time falls past ``until`` are counted
        in ``stats['dropped']``.
        """
        use_fork = (
            self.jobs > 1
            and len(self.partitions) > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_fork:
            return self._run_forked(until)
        return self._run_inline(until)

    # -- inline executor ------------------------------------------------

    def _run_inline(self, until: float) -> list[Any]:
        parts = self.partitions
        stats = self.stats
        stats["mode"] = "inline"
        stats["workers"] = 1
        while True:
            t_next = None
            for part in parts:
                nt = part.sim.next_time()
                if nt is not None and (t_next is None or nt < t_next):
                    t_next = nt
            if t_next is None or t_next >= until:
                break
            t_end = min(t_next + self.lookahead, until)
            messages: list[tuple] = []
            for part in parts:
                part.sim.run_window(t_end)
                messages.extend(part.drain_outbox())
            self._deliver(messages, until)
            stats["windows"] += 1
        return self._finish_inline(until)

    def _deliver(self, messages: list[tuple], until: float) -> None:
        """Merge-deliver one window's messages (deterministic order)."""
        messages.sort(key=lambda m: m[:_DST])
        parts = self.partitions
        stats = self.stats
        for msg in messages:
            if msg[_TIME] > until:
                stats["dropped"] += 1
                continue
            parts[msg[_DST]].deliver(
                msg[_TIME], msg[_PRIO], msg[_PORT], msg[_PAYLOAD])
            stats["messages"] += 1

    def _finish_inline(self, until: float) -> list[Any]:
        results = []
        stats = self.stats
        for part in self.partitions:
            part.sim.run(until=until)
            stats["dropped"] += len(part.drain_outbox())
            results.append(
                part.finalize() if part.finalize is not None else None)
        return results

    # -- forked executor ------------------------------------------------

    def _run_forked(self, until: float) -> list[Any]:
        parts = self.partitions
        stats = self.stats
        n_workers = min(self.jobs, len(parts))
        stats["mode"] = "forked"
        stats["workers"] = n_workers
        groups = [list(range(w, len(parts), n_workers))
                  for w in range(n_workers)]
        owner = {idx: w for w, group in enumerate(groups) for idx in group}

        ctx = multiprocessing.get_context("fork")
        conns, procs = [], []
        try:
            for group in groups:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, parts, group),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)

            # The parent still holds the pre-fork calendars, so the
            # first window bound needs no probe round.
            next_times = [p.sim.next_time() for p in parts]
            worker_next = [
                min((next_times[i] for i in group
                     if next_times[i] is not None), default=None)
                for group in groups
            ]
            pending: list[tuple] = []
            while True:
                t_next = min(
                    (t for t in worker_next if t is not None),
                    default=None)
                for msg in pending:
                    if t_next is None or msg[_TIME] < t_next:
                        t_next = msg[_TIME]
                if t_next is None or t_next >= until:
                    break
                t_end = min(t_next + self.lookahead, until)
                pending.sort(key=lambda m: m[:_DST])
                deliveries: list[list[tuple]] = [[] for _ in groups]
                for msg in pending:
                    if msg[_TIME] > until:
                        stats["dropped"] += 1
                        continue
                    deliveries[owner[msg[_DST]]].append(msg)
                    stats["messages"] += 1
                pending = []
                for conn, batch in zip(conns, deliveries):
                    conn.send(("window", t_end, batch))
                t0 = _time.perf_counter()
                for w, conn in enumerate(conns):
                    tag, nt, outs = conn.recv()
                    assert tag == "done"
                    worker_next[w] = nt
                    pending.extend(outs)
                stats["stall_s"] += _time.perf_counter() - t0
                stats["windows"] += 1

            stats["dropped"] += len(pending)
            results: list[Any] = [None] * len(parts)
            for conn in conns:
                conn.send(("finish", until))
            t0 = _time.perf_counter()
            for conn in conns:
                tag, worker_results, dropped = conn.recv()
                assert tag == "result"
                for idx, value in worker_results.items():
                    results[idx] = value
                stats["dropped"] += dropped
            stats["stall_s"] += _time.perf_counter() - t0
            return results
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()


def _worker_main(conn, partitions: list[Partition],
                 group: list[int]) -> None:
    """Forked worker: drive ``group``'s partitions window by window.

    The partition objects (and everything they close over) arrived via
    fork inheritance; only commands, port messages, and finalize
    results cross the pipe.
    """
    try:
        while True:
            command = conn.recv()
            if command[0] == "window":
                _tag, t_end, deliveries = command
                for msg in deliveries:
                    partitions[msg[_DST]].deliver(
                        msg[_TIME], msg[_PRIO], msg[_PORT], msg[_PAYLOAD])
                outs: list[tuple] = []
                nt_min = None
                for idx in group:
                    part = partitions[idx]
                    nt = part.sim.run_window(t_end)
                    outs.extend(part.drain_outbox())
                    if nt is not None and (nt_min is None or nt < nt_min):
                        nt_min = nt
                conn.send(("done", nt_min, outs))
            elif command[0] == "finish":
                _tag, until = command
                results = {}
                dropped = 0
                for idx in group:
                    part = partitions[idx]
                    part.sim.run(until=until)
                    dropped += len(part.drain_outbox())
                    results[idx] = (part.finalize()
                                    if part.finalize is not None else None)
                conn.send(("result", results, dropped))
                return
            else:  # pragma: no cover - defensive
                raise PartitionError(f"unknown command {command[0]!r}")
    finally:
        conn.close()
