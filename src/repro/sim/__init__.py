"""Discrete-event simulation kernel.

A compact, deterministic, generator-process discrete-event engine in the
style of SimPy, sized for simulating Myrinet networks at packet
granularity.  Time is a ``float`` in **nanoseconds**.

Public surface
--------------
:class:`Simulator`
    The event loop: schedules callbacks, runs generator processes.
:class:`Process`
    Handle for a running generator process (joinable, interruptible).
:class:`Event`
    One-shot triggerable event that processes can wait on.
:class:`Timeout`
    A delay yielded from inside a process.
:class:`Resource`
    FIFO resource with integer capacity (models physical channels).
:class:`Store`
    FIFO queue of items with optional capacity (models packet buffers).
:class:`Trace`
    Optional structured event trace for debugging and assertions.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "Trace",
    "TraceRecord",
]
