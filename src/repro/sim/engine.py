"""Core discrete-event engine.

Design
------
The engine is an event-calendar loop with two lanes:

* a :mod:`heapq` calendar for *delayed* work — each entry is
  ``(time, priority, seq, callback)``; ``seq`` is a monotonically
  increasing tie-breaker that makes execution order fully
  deterministic for equal timestamps;
* an *immediate lane* — a FIFO :class:`~collections.deque` for
  zero-delay, default-priority work (event fan-out, process start,
  interrupts, the succeed→resume chain).  Entries carry their ``seq``
  so the drain loop can interleave the two lanes in exact global
  ``(time, priority, seq)`` order, but the common case skips the heap
  entirely: a zero-delay callback costs one ``deque.append`` and one
  ``popleft`` instead of a ``heappush``/``heappop`` pair.

Processes are Python generators that yield *waitables*:

* :class:`Timeout` — resume after a simulated delay,
* :class:`Event` — resume when the event is triggered,
* another :class:`Process` — resume when it terminates (join),
* :class:`AllOf` / :class:`AnyOf` — composite conditions.

A process waiting on a :class:`Timeout` is resumed *directly from the
calendar*: no intermediate :class:`Event` is allocated and no callback
trampoline is scheduled — the timer entry steps the generator itself
(see :meth:`Process._wait_timeout`).  Stale timers left behind by an
interrupt are invalidated by a per-process wait token.

The generator protocol means process code reads like straight-line
firmware pseudocode, which is exactly what we need to transliterate the
MCP state machines from the paper.

Profiling: a :class:`repro.obs.profiler.Profiler` may be installed on
a simulator (``profiler.install(sim)``); the drain loop then routes
every dispatch — from either lane — through it, and processes
self-report which one stepped during a dispatch, giving per-component
event counts and wall-clock attribution with zero cost when no
profiler is installed.

See ``docs/ENGINE_FASTPATH.md`` for the fast-path design notes.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes may wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) triggers it exactly once; all waiting processes are
    resumed at the current simulation time, in FIFO order of arrival.
    """

    __slots__ = ("sim", "_value", "_exc", "triggered", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        """True when triggered successfully (not failed)."""
        return self.triggered and self._exc is None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully; waiters resume with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger as failed; waiters get ``exc`` raised into them."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        self._dispatch()
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event triggers.

        If the event has already triggered, ``fn`` is scheduled to run at
        the current time rather than invoked synchronously, preserving
        run-to-completion semantics for the caller.
        """
        if self.triggered:
            self.sim.schedule(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.schedule(0.0, lambda fn=fn: fn(self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout:
    """A pure delay, yielded from inside a process: ``yield Timeout(5.0)``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative Timeout delay: {delay}")
        self.delay = float(delay)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class AllOf:
    """Composite waitable: resumes when *all* child events have triggered.

    The yielded value is the list of child event values, in input order.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = list(events)


class AnyOf:
    """Composite waitable: resumes when *any* child event triggers.

    The yielded value is ``(index, value)`` of the first event to fire.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = list(events)


ProcessGen = Generator[Any, Any, Any]


class Process:
    """Handle to a running generator process.

    A ``Process`` is itself waitable: yielding it from another process
    joins it (resumes the waiter when this process returns), with the
    process's return value delivered as the yield result.
    """

    __slots__ = ("sim", "gen", "name", "_done", "_waiting_on", "_return",
                 "_wait_token")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._done = Event(sim, name=f"done:{self.name}")
        self._waiting_on: Optional[Event] = None
        self._return: Any = None
        self._wait_token = 0

    # -- public API ----------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self._done.triggered

    @property
    def done_event(self) -> Event:
        return self._done

    @property
    def returned(self) -> Any:
        """Return value of the generator (valid once not ``alive``)."""
        return self._return

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting detaches it from whatever it was waiting on.
        """
        if not self.alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        self.sim.schedule(0.0, lambda: self._throw(Interrupt(cause)))

    # -- engine internals ----------------------------------------------

    def _start(self) -> None:
        self._step(None)

    def _throw(self, exc: BaseException) -> None:
        """Throw ``exc`` into the generator (detaching from any wait).

        Safe against late delivery: a no-op once the process has
        terminated.  Also invalidates any pending direct-resume timer.
        """
        if not self.alive:
            return  # terminated between scheduling and delivery
        self._waiting_on = None
        self._wait_token += 1
        if self.sim.profiler is not None:
            self.sim.profiler.attribute(self.name)
        try:
            target = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            self._crash(err)
            return
        self._wait_on(target)

    def _step(self, send_value: Any) -> None:
        if self.sim.profiler is not None:
            self.sim.profiler.attribute(self.name)
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            self._crash(err)
            return
        self._wait_on(target)

    def _resume_from_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (e.g. interrupted while waiting)
        self._waiting_on = None
        if event._exc is not None:
            self._throw(event._exc)
        else:
            self._step(event.value)

    def _wait_on(self, target: Any) -> None:
        """Suspend on ``target`` — type-keyed dispatch, no isinstance chain."""
        self._wait_token += 1
        handler = _WAIT_DISPATCH.get(target.__class__)
        if handler is None:
            handler = _resolve_wait_handler(target)
            if handler is None:
                self._crash(
                    SimulationError(
                        f"process {self.name!r} yielded non-waitable {target!r}"
                    )
                )
                return
        handler(self, target)

    def _wait_timeout(self, target: Timeout) -> None:
        """Direct-resume path: the calendar entry steps the generator.

        No intermediate :class:`Event`, no trampoline — one scheduled
        closure.  ``_wait_token`` guards against a stale timer firing
        after the process was interrupted (or moved on to a new wait).
        """
        token = self._wait_token
        value = target.value
        self.sim.schedule(target.delay,
                          lambda: self._resume_from_timeout(token, value))

    def _resume_from_timeout(self, token: int, value: Any) -> None:
        if token != self._wait_token or self._done.triggered:
            return  # stale timer (interrupted, or wait superseded)
        self._step(value)

    def _wait_event(self, target: Event) -> None:
        self._attach(target)

    def _wait_process(self, target: "Process") -> None:
        self._attach(target._done)

    def _wait_all_of(self, target: AllOf) -> None:
        self._attach(self._make_all_of(target))

    def _wait_any_of(self, target: AnyOf) -> None:
        self._attach(self._make_any_of(target))

    def _attach(self, ev: Event) -> None:
        self._waiting_on = ev
        ev.add_callback(self._resume_from_event)

    def _make_all_of(self, composite: AllOf) -> Event:
        done = Event(self.sim, name="all_of")
        remaining = len(composite.events)
        if remaining == 0:
            self.sim.schedule(0.0, lambda: done.succeed([]))
            return done
        state = {"left": remaining}

        def on_child(_child: Event) -> None:
            state["left"] -= 1
            if state["left"] == 0 and not done.triggered:
                done.succeed([e.value for e in composite.events])

        for child in composite.events:
            child.add_callback(on_child)
        return done

    def _make_any_of(self, composite: AnyOf) -> Event:
        done = Event(self.sim, name="any_of")
        if not composite.events:
            raise SimulationError("AnyOf of zero events can never trigger")

        def make_cb(index: int) -> Callable[[Event], None]:
            def on_child(child: Event) -> None:
                if not done.triggered:
                    done.succeed((index, child.value))

            return on_child

        for i, child in enumerate(composite.events):
            child.add_callback(make_cb(i))
        return done

    def _finish(self, value: Any) -> None:
        self._return = value
        self._done.succeed(value)

    def _crash(self, exc: BaseException) -> None:
        self.sim._record_crash(self, exc)
        self._return = None
        self._done.fail(exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'alive' if self.alive else 'done'}>"


#: Exact-type dispatch table for ``Process._wait_on``.  Subclasses of
#: waitables are resolved once through the isinstance fallback below and
#: then memoized here, so the steady state is a single dict lookup.
_WAIT_DISPATCH: dict[type, Callable[[Process, Any], None]] = {
    Timeout: Process._wait_timeout,
    Event: Process._wait_event,
    Process: Process._wait_process,
    AllOf: Process._wait_all_of,
    AnyOf: Process._wait_any_of,
}


def _resolve_wait_handler(target: Any) -> Optional[Callable[[Process, Any], None]]:
    """Slow path: resolve (and memoize) a handler for waitable subclasses."""
    for base, handler in ((Timeout, Process._wait_timeout),
                          (Event, Process._wait_event),
                          (Process, Process._wait_process),
                          (AllOf, Process._wait_all_of),
                          (AnyOf, Process._wait_any_of)):
        if isinstance(target, base):
            _WAIT_DISPATCH[target.__class__] = handler
            return handler
    return None


class Simulator:
    """The event loop.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.trace.Trace` receiving structured
        records from components that support tracing.

    Attributes
    ----------
    profiler:
        Optional :class:`repro.obs.profiler.Profiler`; when set, every
        dispatch is routed through it (install via
        ``Profiler().install(sim)``).
    """

    def __init__(self, trace: Any = None) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Callable[[], None]]] = []
        #: Immediate lane: zero-delay, priority-0 callbacks at the
        #: current time, drained in FIFO ``seq`` order interleaved with
        #: same-time calendar entries.
        self._immediate: Deque[tuple[int, Callable[[], None]]] = deque()
        self._seq = 0
        self._crashed: list[tuple[Process, BaseException]] = []
        self.trace = trace
        self.profiler: Any = None

    # -- time and scheduling -------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled-but-undispatched callbacks (both lanes)."""
        return len(self._queue) + len(self._immediate)

    def schedule(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> None:
        """Run ``callback`` after ``delay`` ns (FIFO among equal times).

        Zero-delay, default-priority work goes to the immediate lane
        (a deque) instead of the heap; global ``(time, priority, seq)``
        order is preserved either way.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        if delay == 0.0 and priority == 0:
            self._immediate.append((self._seq, callback))
        else:
            heapq.heappush(self._queue,
                           (self._now + delay, priority, self._seq, callback))

    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> None:
        """Run ``callback`` at the absolute simulation ``time``.

        Unlike :meth:`schedule`, the calendar entry carries ``time``
        itself rather than ``self._now + delay`` — the one float
        addition that makes relative scheduling drift by an ulp from a
        precomputed target.  Closed-form trajectories (the express worm
        flight) use this to land events at exactly the timestamps the
        stepped implementation's ``now = now + delay`` chain produces.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (time={time}, now={self._now})"
            )
        self._seq += 1
        if time == self._now and priority == 0:
            self._immediate.append((self._seq, callback))
        else:
            heapq.heappush(self._queue, (time, priority, self._seq, callback))

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event bound to this simulator."""
        return Event(self, name=name)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator as a process at the current time."""
        proc = Process(self, gen, name=name)
        self.schedule(0.0, proc._start)
        return proc

    def process_now(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator as a process, stepping it synchronously.

        Unlike :meth:`process`, the generator's first step runs inside
        this call rather than through a zero-delay calendar entry.
        For use from *within* a calendar callback when the process's
        first action must keep the callback's position in same-time
        FIFO order (e.g. a resource ``request`` racing other entries
        at this timestamp — the express worm lane's demoted-tail
        resume relies on this).
        """
        proc = Process(self, gen, name=name)
        proc._start()
        return proc

    # -- running ---------------------------------------------------------

    def _drain(
        self,
        until: Optional[float],
        max_events: int,
        stop_event: Optional[Event],
    ) -> None:
        """The single dispatch loop behind :meth:`run` and
        :meth:`run_until_event`.

        Pops the globally next callback — immediate lane or calendar,
        whichever holds the lowest ``(time, priority, seq)`` — and runs
        it (through the profiler when installed).  Stops when the
        calendar is exhausted, the next entry is past ``until``, or
        ``stop_event`` has triggered.
        """
        queue = self._queue
        immediate = self._immediate
        dispatched = 0
        while True:
            if stop_event is not None and stop_event.triggered:
                return
            if immediate:
                # All immediate entries sit at (self._now, priority 0);
                # a calendar entry only precedes the lane head when it
                # is due now with higher priority or an earlier seq.
                callback = None
                if queue:
                    t, prio, seq, cb = queue[0]
                    if t <= self._now and (prio < 0 or
                                           (prio == 0 and seq < immediate[0][0])):
                        heapq.heappop(queue)
                        callback = cb
                if callback is None:
                    _seq, callback = immediate.popleft()
            elif queue:
                t, _prio, _seq, callback = queue[0]
                if until is not None and t > until:
                    return
                heapq.heappop(queue)
                self._now = t
            else:
                if stop_event is not None:
                    raise SimulationError(
                        f"deadlock: calendar empty but event"
                        f" {stop_event.name!r} never fired"
                    )
                return
            if self.profiler is None:
                callback()
            else:
                self.profiler.dispatch(callback)
            if self._crashed:
                self._check_crashes()
            dispatched += 1
            if dispatched >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Drain the event calendar.

        Stops when the calendar is empty, or when the next event is past
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` dispatches (raising, as a runaway guard).

        Returns the final simulation time.  If any process died with an
        unhandled exception during the run, the first such exception is
        re-raised so errors are never silently swallowed.
        """
        self._drain(until, max_events, None)
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_event(
        self, event: Event, max_events: int = 50_000_000
    ) -> Any:
        """Run until ``event`` triggers; return its value.

        Raises if the calendar drains without the event triggering.
        """
        self._drain(None, max_events, event)
        if event._exc is not None:
            raise event._exc
        return event.value

    # -- partition-scheduler hooks --------------------------------------

    def next_time(self) -> Optional[float]:
        """Timestamp of the earliest pending callback, or None.

        The partitioned engine (:mod:`repro.sim.partition`) uses this
        to compute the global lower bound of the next synchronization
        window.  Immediate-lane entries sit at the current time by
        construction.
        """
        if self._immediate:
            return self._now
        if self._queue:
            return self._queue[0][0]
        return None

    def run_window(self, t_end: float,
                   max_events: int = 50_000_000) -> Optional[float]:
        """Dispatch every pending callback strictly before ``t_end``.

        Unlike :meth:`run` (whose ``until`` is inclusive), events at
        exactly ``t_end`` stay queued and the clock is *not* advanced
        past the last dispatched event — so a cross-partition message
        delivered at ``t_end`` or later still lands ahead of every
        undispatched local callback, preserving the global
        ``(time, priority, seq)`` order.  Returns :meth:`next_time`
        after the window drains.
        """
        while True:
            nt = self.next_time()
            if nt is None or nt >= t_end:
                return nt
            # Inclusive drain to the next timestamp settles that whole
            # instant (including any same-time work it spawns) before
            # the strict bound is re-checked.
            self._drain(nt, max_events, None)

    # -- crash bookkeeping ----------------------------------------------

    def _record_crash(self, proc: Process, exc: BaseException) -> None:
        self._crashed.append((proc, exc))

    def _check_crashes(self) -> None:
        if self._crashed:
            proc, exc = self._crashed[0]
            raise SimulationError(
                f"process {proc.name!r} died: {exc!r}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator t={self._now:.1f}ns"
                f" pending={len(self._queue) + len(self._immediate)}>")
