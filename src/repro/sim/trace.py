"""Structured event tracing.

Components emit :class:`TraceRecord` entries into a shared
:class:`Trace`.  Tests use the trace to assert ordering invariants
(e.g. "re-injection started before full reception completed" — the
virtual-cut-through property of the ITB implementation); the harness
uses it to compute component-level timing breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulation time in nanoseconds.
    component:
        Emitting component, e.g. ``"mcp[host2]"`` or ``"switch[1]"``.
    kind:
        Short machine-readable tag, e.g. ``"early_recv"``, ``"reinject"``.
    detail:
        Free-form payload (packet id, port number, ...).
    """

    time: float
    component: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only in-memory trace with simple query helpers."""

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None):
        self.enabled = enabled
        self.max_records = max_records
        self._records: list[TraceRecord] = []
        self._dropped = 0

    def emit(
        self, time: float, component: str, kind: str, **detail: Any
    ) -> None:
        """Append one record (no-op when disabled or full)."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self._records) >= self.max_records:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time, component, kind, detail))

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped(self) -> int:
        return self._dropped

    def records(
        self,
        kind: Optional[str] = None,
        component: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Filter records by kind and/or component and/or predicate."""
        out = self._records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if component is not None:
            out = [r for r in out if r.component == component]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return list(out)

    def first(self, kind: str) -> Optional[TraceRecord]:
        """Earliest record of a kind, or None."""
        for r in self._records:
            if r.kind == kind:
                return r
        return None

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Latest record of a kind, or None."""
        for r in reversed(self._records):
            if r.kind == kind:
                return r
        return None

    def clear(self) -> None:
        """Drop all records and reset the dropped counter."""
        self._records.clear()
        self._dropped = 0
