"""Waitable resources and stores for the simulation kernel.

:class:`Resource` models a physical channel or engine with fixed integer
capacity and strict FIFO granting — the arbitration discipline of a
Myrinet switch output port or a DMA engine.

:class:`Store` models a FIFO queue of items (packet buffers, event
queues) with optional bounded capacity.

:class:`PriorityStore` models a prioritized event queue — the MCP's
event handler "giving control to the state machine that handles the
highest priority pending event" (paper Section 3).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["PriorityStore", "Resource", "Store"]


class Resource:
    """FIFO resource with integer capacity.

    Usage inside a process::

        req = resource.request(owner=me)
        yield req                 # resumes when granted
        ...                       # hold the resource
        resource.release(owner=me)

    Grants are strictly FIFO.  ``owner`` is an arbitrary token used for
    bookkeeping and error detection (double release, release without
    hold).
    """

    __slots__ = ("sim", "capacity", "name", "_holders", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._holders: list[Any] = []
        self._waiters: Deque[tuple[Any, Event]] = deque()

    # -- introspection ---------------------------------------------------

    @property
    def in_use(self) -> int:
        return len(self._holders)

    @property
    def free(self) -> bool:
        return len(self._holders) < self.capacity

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def holders(self) -> tuple[Any, ...]:
        """Current holders, in grant order."""
        return tuple(self._holders)

    # -- operations --------------------------------------------------------

    def request(self, owner: Any) -> Event:
        """Return an event that triggers when ``owner`` holds the resource."""
        ev = Event(self.sim, name=f"req:{self.name}")
        if len(self._holders) < self.capacity and not self._waiters:
            self._holders.append(owner)
            ev.succeed(self)
        else:
            self._waiters.append((owner, ev))
        return ev

    def try_acquire(self, owner: Any) -> bool:
        """Acquire immediately if free (no queueing); return success."""
        if len(self._holders) < self.capacity and not self._waiters:
            self._holders.append(owner)
            return True
        return False

    def release(self, owner: Any) -> None:
        """Release one hold by ``owner``; grants the next FIFO waiter."""
        try:
            self._holders.remove(owner)
        except ValueError:
            raise SimulationError(
                f"{owner!r} released {self.name!r} without holding it"
            ) from None
        if self._waiters and len(self._holders) < self.capacity:
            next_owner, ev = self._waiters.popleft()
            self._holders.append(next_owner)
            ev.succeed(self)

    def cancel(self, owner: Any) -> bool:
        """Remove a not-yet-granted request by ``owner``; return found."""
        for i, (who, _ev) in enumerate(self._waiters):
            if who is owner:
                del self._waiters[i]
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Resource {self.name!r} {self.in_use}/{self.capacity}"
            f" queue={self.queue_length}>"
        )


class Store:
    """FIFO store of items with optional bounded capacity.

    ``put`` blocks (returns a pending event) when the store is full;
    ``get`` blocks when it is empty.  ``try_put``/``try_get`` are the
    non-blocking variants used by firmware-style polling code.
    """

    __slots__ = ("sim", "capacity", "name", "_items", "_getters", "_putters")

    def __init__(
        self, sim: Simulator, capacity: Optional[int] = None, name: str = ""
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("Store capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Any, Event]] = deque()

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def peek(self) -> Any:
        """The oldest item without removing it (raises when empty)."""
        if not self._items:
            raise SimulationError(f"peek on empty store {self.name!r}")
        return self._items[0]

    # -- operations --------------------------------------------------------

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event triggers once inserted."""
        ev = Event(self.sim, name=f"put:{self.name}")
        if self._getters:
            # Hand straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(item)
        elif not self.full:
            self._items.append(item)
            ev.succeed(item)
        else:
            self._putters.append((item, ev))
        return ev

    def try_put(self, item: Any) -> bool:
        """Insert without blocking; return False when full."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            return True
        if self.full:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        ev = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Remove without blocking; returns ``(ok, item_or_None)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            item, ev = self._putters.popleft()
            self._items.append(item)
            ev.succeed(item)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"<Store {self.name!r} {len(self._items)}/{cap}>"


class PriorityStore:
    """Priority queue of items with waitable ``get``.

    Lower priority numbers are served first; ties break FIFO by
    insertion order.  Models the MCP event handler: state-machine
    work is posted with a priority and the dispatcher always takes
    the highest-priority pending item.
    """

    __slots__ = ("sim", "name", "_heap", "_seq", "_getters")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any, priority: int = 0) -> None:
        """Post an item; wakes the oldest waiting getter if any."""
        self._seq += 1
        heapq.heappush(self._heap, (priority, self._seq, item))
        if self._getters:
            getter = self._getters.popleft()
            _prio, _seq, popped = heapq.heappop(self._heap)
            getter.succeed(popped)

    def get(self) -> Event:
        """Event yielding the highest-priority pending item."""
        ev = Event(self.sim, name=f"pget:{self.name}")
        if self._heap:
            _prio, _seq, item = heapq.heappop(self._heap)
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop; returns ``(ok, item_or_None)``."""
        if self._heap:
            _prio, _seq, item = heapq.heappop(self._heap)
            return True, item
        return False, None

    def peek_priority(self) -> Optional[int]:
        """Priority of the front item, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PriorityStore {self.name!r} n={len(self._heap)}>"
