"""Network configuration for the builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.timings import Timings

__all__ = ["FirmwareKind", "NetworkConfig", "RoutingKind"]


class FirmwareKind(str, Enum):
    """Which MCP runs on the NICs."""

    ORIGINAL = "original"   # stock GM-1.2pre16
    ITB = "itb"             # the paper's modified MCP


class RoutingKind(str, Enum):
    """Which routes the mapper stamps.

    ``MINIMAL`` stamps unrestricted shortest paths — not deadlock-free
    by itself on cyclic fabrics; pair it with escape lanes
    (``lanes >= 2, lane_policy="escape"``) for the virtual-channel
    alternative the ``vc-study`` experiment measures.
    """

    UPDOWN = "updown"
    ITB = "itb"
    MINIMAL = "minimal"


@dataclass
class NetworkConfig:
    """Everything needed to instantiate a simulated installation.

    Attributes
    ----------
    firmware:
        Firmware on every NIC (per-host overrides via
        ``firmware_overrides``; the paper runs the same MCP everywhere).
    routing:
        Mapper policy for the stamped route tables.
    timings:
        Timing model (derive ablation variants via
        :meth:`Timings.with_overrides`).
    reliable:
        GM reliability layer (acks + retransmit).  Off by default: the
        paper's latency tests measure the data path; turn on for
        buffer-pool flush experiments.
    recv_buffer_kind / pool_bytes:
        ``"fixed"`` = stock two-buffer queues; ``"pool"`` = the
        proposed circular buffer pool of ``pool_bytes``.
    seed:
        Master seed for all host-noise RNGs.
    trace:
        Collect a structured event trace (slower; tests use it).
    lanes / lane_policy:
        Virtual-channel lanes per link direction and the lane-selection
        policy (``"fixed"``, ``"roundrobin"``, ``"escape"`` — see
        :mod:`repro.network.lanes`).  The default single lane is the
        stock Myrinet switch the paper assumes.
    """

    firmware: FirmwareKind = FirmwareKind.ITB
    routing: RoutingKind = RoutingKind.ITB
    timings: Timings = field(default_factory=Timings)
    reliable: bool = False
    recv_buffer_kind: str = "fixed"
    pool_bytes: int = 64 * 1024
    seed: int = 2001
    trace: bool = False
    root: Optional[int] = None
    firmware_overrides: dict = field(default_factory=dict)
    #: Model LANai SRAM arbitration explicitly (paper Figure 2's
    #: priority scheme).  Off by default: the calibrated firmware
    #: cycle counts in :class:`Timings` absorb average contention;
    #: turning it on is the EXP-A4 ablation.
    model_memory_contention: bool = False
    lanes: int = 1
    lane_policy: str = "fixed"

    def __post_init__(self) -> None:
        self.firmware = FirmwareKind(self.firmware)
        self.routing = RoutingKind(self.routing)
        if self.recv_buffer_kind not in ("fixed", "pool"):
            raise ValueError(
                "recv_buffer_kind must be 'fixed' or 'pool',"
                f" got {self.recv_buffer_kind!r}"
            )
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")
        if self.lane_policy not in ("fixed", "roundrobin", "escape"):
            raise ValueError(
                "lane_policy must be 'fixed', 'roundrobin', or"
                f" 'escape', got {self.lane_policy!r}"
            )
