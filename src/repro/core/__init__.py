"""Public facade of the reproduction library.

The quickest way in::

    from repro.core import build_network, Timings

    net = build_network("fig6", firmware="itb")
    result = net.ping_pong("host1", "host2", size=1024, iterations=100)
    print(result.half_rtt_ns)

See :mod:`repro.harness` for the experiment runners that regenerate
the paper's figures.

Implementation note: the builder pulls in the whole stack (GM layer,
firmware, fabric), parts of which import :mod:`repro.core.timings` —
so the heavy names are resolved lazily (PEP 562) to keep the package
import graph acyclic from any entry point.
"""

from repro.core.timings import Timings
from repro.core.config import FirmwareKind, NetworkConfig, RoutingKind

__all__ = [
    "BuiltNetwork",
    "FirmwareKind",
    "NetworkConfig",
    "RoutingKind",
    "Timings",
    "build_network",
]

_LAZY = {"BuiltNetwork", "build_network"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.core import builder

        return getattr(builder, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
