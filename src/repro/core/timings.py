"""Calibrated timing model.

All times in **nanoseconds**.  Every constant is documented with its
provenance: either a hardware datasheet figure for the paper's testbed
components, a value stated in the paper itself, or a calibration note.
We reproduce *shape and deltas* (the paper's 125 ns / 1.3 us
overheads, relative-overhead trends, who-wins comparisons), not the
authors' absolute testbed numbers.

Hardware modeled (paper Section 5):

* LANai-7 based NICs (M2L/M2M-PCI64A-2) with a 66 MHz on-chip RISC,
* Myrinet 1.28 Gbit/s links (160 MB/s),
* M2FM-SW8 8-port switches (4 LAN + 4 SAN ports),
* 64-bit/66 MHz PCI hosts (450 MHz Pentium III, GM-1.2pre16).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.topology.graph import PortKind

__all__ = ["Timings"]


@dataclass(frozen=True)
class Timings:
    """Timing parameters for the simulated testbed.

    Use :meth:`with_overrides` to derive ablation variants.
    """

    # -- LANai on-chip processor ----------------------------------------
    #: One LANai-7 clock cycle at 66 MHz.
    lanai_cycle_ns: float = 15.15

    # -- wire / switch ----------------------------------------------------
    #: Myrinet link: 1.28 Gbit/s = 160 MB/s in each direction.
    link_byte_ns: float = 6.25
    #: Signal propagation per metre of cable (~0.7c copper).
    prop_ns_per_m: float = 4.3
    #: Switch fall-through latency by (input kind, output kind).  SAN
    #: ports are native; LAN ports add encode/decode latency.  Values
    #: bracket Myricom's quoted ~300 ns LAN-port and ~100 ns SAN-port
    #: fall-through.  The paper controls for this: Figure 8 compares
    #: paths crossing *the same kinds of ports*.
    fall_through_ns: dict = field(
        default_factory=lambda: {
            (PortKind.SAN, PortKind.SAN): 100.0,
            (PortKind.SAN, PortKind.LAN): 200.0,
            (PortKind.LAN, PortKind.SAN): 200.0,
            (PortKind.LAN, PortKind.LAN): 300.0,
        }
    )

    # -- host side ---------------------------------------------------------
    #: gm_send() host-side software cost until the NIC sees the send
    #: descriptor (user-level, no syscall — GM's OS-bypass design).
    host_send_sw_ns: float = 3000.0
    #: Host-side cost from RDMA completion to gm_receive() returning.
    host_recv_sw_ns: float = 2500.0
    #: Gaussian sigma of per-message host-side noise (scheduler,
    #: cache effects on the P-III).  Reproduces the scatter that makes
    #: the paper's per-packet overhead range up to ~300 ns around its
    #: 125 ns mean.  Seeded; set 0 for fully deterministic runs.
    host_jitter_sigma_ns: float = 45.0
    #: PCI 64/66: ~528 MB/s burst => ~1.9 ns/byte; 2.0 allows overhead.
    pci_byte_ns: float = 2.0
    #: Host-DMA engine start cost (descriptor fetch + bus grant).
    dma_setup_ns: float = 700.0

    # -- MCP firmware path lengths (in LANai cycles) -----------------------
    #: Send state machine: dispatch, route-table lookup, header stamp,
    #: program the send packet DMA.
    mcp_send_cycles: int = 45
    #: Recv state machine: dispatch, type decode, buffer bookkeeping,
    #: program the recv host DMA.
    mcp_recv_cycles: int = 45
    #: Extra instructions the ITB-modified firmware executes on EVERY
    #: received packet (the new type check + Early-Recv bookkeeping).
    #: 8 instructions x 15.15 ns ~= 121 ns — the paper measures ~125 ns
    #: average (Figure 7).
    itb_check_cycles: int = 8
    #: Early-Recv handler: event dispatch + in-transit detection once
    #: the first 4 bytes have arrived (paper Section 4).
    itb_early_recv_cycles: int = 46
    #: Programming the send DMA for re-injection from the Recv machine.
    itb_program_dma_cycles: int = 40
    #: Number of bytes the LANai must receive before the Early-Recv
    #: event fires (paper: "when the first four bytes are received").
    early_recv_bytes: int = 4

    # -- buffering -----------------------------------------------------------
    #: Send/recv queue depth in the MCP ("two buffers each", Section 4).
    mcp_buffers: int = 2
    #: NIC SRAM (2 MB on the paper's cards; used by the buffer-pool
    #: extension to size its circular queue).
    nic_sram_bytes: int = 2 * 1024 * 1024

    # ------------------------------------------------------------------

    def cycles(self, n: int) -> float:
        """Nanoseconds for ``n`` LANai cycles."""
        return n * self.lanai_cycle_ns

    def fall_through(self, in_kind: PortKind, out_kind: PortKind) -> float:
        """Switch fall-through latency for an (in, out) port-kind pair."""
        return self.fall_through_ns[(in_kind, out_kind)]

    def propagation(self, length_m: float) -> float:
        """Signal propagation delay over ``length_m`` of cable."""
        return self.prop_ns_per_m * length_m

    def wire_time(self, n_bytes: int) -> float:
        """Time to clock ``n_bytes`` onto a link."""
        return n_bytes * self.link_byte_ns

    def pci_time(self, n_bytes: int) -> float:
        """Time to move ``n_bytes`` across the host PCI bus."""
        return n_bytes * self.pci_byte_ns

    # Derived figures used throughout the harness -----------------------

    @property
    def itb_check_ns(self) -> float:
        """Per-packet ITB-support overhead (paper: ~125 ns)."""
        return self.cycles(self.itb_check_cycles)

    @property
    def itb_forward_ns(self) -> float:
        """Detection + re-injection programming at an in-transit host.

        The paper measures the *end-to-end* per-ITB latency increase at
        ~1.3 us, which also includes the extra NIC cable crossings and
        early-recv wait; this constant is only the firmware part.
        """
        return self.cycles(self.itb_early_recv_cycles + self.itb_program_dma_cycles)

    def with_overrides(self, **kw: Any) -> "Timings":
        """Derive a variant (for ablations), e.g.
        ``timings.with_overrides(itb_early_recv_cycles=18)``."""
        return replace(self, **kw)
