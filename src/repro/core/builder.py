"""Assemble a complete simulated installation.

:func:`build_network` wires together simulator, fabric, NICs,
firmware, GM hosts, and the mapper into a :class:`BuiltNetwork` —
the object the examples, tests, and experiment harness all drive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro.core.config import FirmwareKind, NetworkConfig, RoutingKind
from repro.core.timings import Timings
from repro.gm.allsize import PingPongResult, ping_pong
from repro.gm.host import GmHost
from repro.gm.mapper import run_mapper
from repro.mcp.buffers import BufferPool, FixedBuffers
from repro.mcp.firmware import Firmware, ItbFirmware, OriginalFirmware
from repro.network.fabric import Fabric
from repro.nic.lanai import Nic
from repro.routing.routes import ItbRoute, SourceRoute
from repro.routing.spanning_tree import UpDownOrientation
from repro.sim.engine import Simulator
from repro.sim.trace import Trace
from repro.topology.generators import fig1_topology, fig6_testbed
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.routing.cache import RouteCache

__all__ = ["BuiltNetwork", "build_network"]

_FIRMWARES = {
    FirmwareKind.ORIGINAL: OriginalFirmware,
    FirmwareKind.ITB: ItbFirmware,
}

#: Installed by :func:`repro.obs.tracing.configure`: a zero-argument
#: callable returning a fresh span tracer, attached as
#: ``fabric.tracer`` on every build.  Module-level (like the runner's
#: worker cache) so forked pool workers inherit the setting; ``None``
#: keeps tracing disabled with zero overhead.
tracer_factory = None


class BuiltNetwork:
    """A ready-to-run simulated Myrinet installation."""

    def __init__(
        self,
        sim: Simulator,
        topo: Topology,
        fabric: Fabric,
        nics: dict[int, Nic],
        gm_hosts: dict[int, GmHost],
        orientation: UpDownOrientation,
        config: NetworkConfig,
        roles: Optional[dict[str, int]] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        self.sim = sim
        self.topo = topo
        self.fabric = fabric
        self.nics = nics
        self.gm_hosts = gm_hosts
        self.orientation = orientation
        self.config = config
        self.roles = roles or {}
        self.trace = trace

    # -- lookups -----------------------------------------------------------

    def host_id(self, name_or_id: Union[str, int]) -> int:
        """Resolve a role name ('host1'), node name, or raw id."""
        if isinstance(name_or_id, int):
            return name_or_id
        if name_or_id in self.roles:
            return self.roles[name_or_id]
        for h in self.topo.hosts():
            if self.topo.node_name(h) == name_or_id:
                return h
        raise KeyError(f"no host called {name_or_id!r}")

    def gm(self, name_or_id: Union[str, int]) -> GmHost:
        """The GM host endpoint for a host (by role, name, or id)."""
        return self.gm_hosts[self.host_id(name_or_id)]

    def nic(self, name_or_id: Union[str, int]) -> Nic:
        """The NIC model for a host (by role, name, or id)."""
        return self.nics[self.host_id(name_or_id)]

    # -- convenience drivers ---------------------------------------------

    def ping_pong(
        self,
        a: Union[str, int],
        b: Union[str, int],
        size: int,
        iterations: int = 100,
        warmup: int = 2,
        route_ab: Optional[Union[SourceRoute, ItbRoute]] = None,
        route_ba: Optional[Union[SourceRoute, ItbRoute]] = None,
    ) -> PingPongResult:
        """Run a gm_allsize-style ping-pong on this network."""
        if isinstance(route_ab, SourceRoute):
            route_ab = ItbRoute((route_ab,))
        if isinstance(route_ba, SourceRoute):
            route_ba = ItbRoute((route_ba,))
        return ping_pong(
            self.sim, self.gm(a), self.gm(b), size,
            iterations=iterations, warmup=warmup,
            route_ab=route_ab, route_ba=route_ba,
        )

    def total_stats(self) -> dict:
        """Aggregate NIC counters across the installation."""
        agg: dict[str, float] = {}
        for nic in self.nics.values():
            for key, value in vars(nic.stats).items():
                agg[key] = agg.get(key, 0) + value
        return agg


def _named_topology(name: str) -> tuple[Topology, dict[str, int]]:
    if name == "fig6":
        return fig6_testbed()
    if name == "fig1":
        return fig1_topology()
    raise KeyError(f"unknown named topology {name!r}")


def build_network(
    topo: Union[str, Topology],
    config: Optional[NetworkConfig] = None,
    roles: Optional[dict[str, int]] = None,
    route_overrides: Optional[Mapping[tuple[int, int],
                                      Union[SourceRoute, ItbRoute]]] = None,
    firmware: Optional[Union[str, FirmwareKind]] = None,
    routing: Optional[Union[str, RoutingKind]] = None,
    timings: Optional[Timings] = None,
    route_cache: Optional["RouteCache"] = None,
    host_policy=None,
) -> BuiltNetwork:
    """Build a complete simulated installation.

    Parameters
    ----------
    topo:
        A :class:`Topology` or a named one (``"fig6"``, ``"fig1"``).
    config:
        Full configuration; the ``firmware`` / ``routing`` / ``timings``
        keyword shortcuts override individual fields.
    route_overrides:
        Hand-built routes for specific host pairs, stamped over the
        mapper output.
    route_cache:
        Optional :class:`~repro.routing.cache.RouteCache`: the mapper
        serves the all-pairs route tables from it instead of
        recomputing them per build (the experiment runner passes a
        shared cache so repeated points pay the route cost once).
    host_policy:
        Optional in-transit host chooser for ITB routing (a
        :class:`~repro.routing.selectors.Selector` or plain
        :data:`~repro.routing.itb.HostPolicy`); forwarded to the
        mapper, which bypasses the shared route cache for
        policy-dependent tables.
    """
    if config is None:
        config = NetworkConfig()
    if firmware is not None:
        config.firmware = FirmwareKind(firmware)
    if routing is not None:
        config.routing = RoutingKind(routing)
    if timings is not None:
        config.timings = timings

    if isinstance(topo, str):
        topo, auto_roles = _named_topology(topo)
        roles = {**auto_roles, **(roles or {})}
    topo.validate()

    trace = Trace() if config.trace else None
    sim = Simulator(trace=trace)
    fabric = Fabric(sim, topo, config.timings,
                    lanes=config.lanes, lane_policy=config.lane_policy)
    if tracer_factory is not None:
        fabric.tracer = tracer_factory()

    nics: dict[int, Nic] = {}
    gm_hosts: dict[int, GmHost] = {}
    firmware_by_host: dict[int, Firmware] = {}
    for host in topo.hosts():
        if config.recv_buffer_kind == "pool":
            buffers = BufferPool(config.pool_bytes,
                                 name=f"pool[{topo.node_name(host)}]")
        else:
            buffers = FixedBuffers(config.timings.mcp_buffers,
                                   name=f"recvq[{topo.node_name(host)}]")
        nic = Nic(sim, fabric, config.timings, host,
                  recv_buffers=buffers, trace=trace,
                  model_memory_contention=config.model_memory_contention)
        kind = FirmwareKind(config.firmware_overrides.get(host, config.firmware))
        fw = _FIRMWARES[kind](nic)
        nics[host] = nic
        firmware_by_host[host] = fw
        gm_hosts[host] = GmHost(sim, nic, seed=config.seed,
                                reliable=config.reliable)
    fabric.meta["firmware_by_host"] = firmware_by_host

    orientation = run_mapper(
        topo, nics, routing=config.routing.value,
        overrides=route_overrides, root=config.root, cache=route_cache,
        host_policy=host_policy,
    )
    return BuiltNetwork(
        sim=sim, topo=topo, fabric=fabric, nics=nics, gm_hosts=gm_hosts,
        orientation=orientation, config=config, roles=roles, trace=trace,
    )
