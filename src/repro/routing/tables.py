"""Per-host route tables.

The Myrinet mapper computes routes among all hosts and stores them in
each NIC's SRAM; the MCP stamps the path into the packet header at
send time.  :class:`RouteTable` is that per-NIC table.  For the ITB
routing, the entry for a destination is the *first segment* of the ITB
route plus the pre-encoded remainder (the in-transit host re-injects
using bytes already carried in the packet, not its own table — paper
Section 4 / Figure 3b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Protocol, Union

from repro.routing.routes import ItbRoute, RouteError, SourceRoute

__all__ = ["RouteTable", "build_route_tables"]


class _Router(Protocol):  # either UpDownRouter or ItbRouter
    def itb_route(self, src_host: int, dst_host: int) -> ItbRoute: ...


@dataclass
class RouteTable:
    """Routes stored in one host's NIC SRAM, keyed by destination host."""

    host: int
    entries: dict[int, ItbRoute] = field(default_factory=dict)

    def lookup(self, dst_host: int) -> ItbRoute:
        """The stamped route toward a destination host."""
        try:
            return self.entries[dst_host]
        except KeyError:
            raise RouteError(
                f"host {self.host} has no route to {dst_host}"
            ) from None

    def install(self, dst_host: int, route: Union[SourceRoute, ItbRoute]) -> None:
        """Stamp (or overwrite) the route toward ``dst_host``."""
        if isinstance(route, SourceRoute):
            route = ItbRoute((route,))
        if route.src != self.host or route.dst != dst_host:
            raise RouteError(
                f"route {route.src}->{route.dst} does not belong in table"
                f" of host {self.host} for destination {dst_host}"
            )
        self.entries[dst_host] = route

    def destinations(self) -> list[int]:
        """Destination host ids with a stamped route."""
        return sorted(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def build_route_tables(
    hosts: list[int],
    router: _Router,
    pairs: Optional[Mapping[tuple[int, int], ItbRoute]] = None,
) -> dict[int, RouteTable]:
    """Compute the full set of tables the mapper would distribute.

    ``pairs`` may supply precomputed routes (e.g. hand-built test
    routes); anything missing is computed via the router's batched
    per-source ``routes_from`` when it offers one (the repo routers all
    do — one BFS tree per source instead of a search per pair), falling
    back to per-pair ``itb_route`` for minimal protocol implementations.
    The router sees destinations in the same order either way, so
    stateful host policies produce identical tables.
    """
    tables = {h: RouteTable(host=h) for h in hosts}
    batch = getattr(router, "routes_from", None)
    for s in hosts:
        missing = [d for d in hosts
                   if d != s and (pairs is None or pairs.get((s, d)) is None)]
        computed: Mapping[int, Union[SourceRoute, ItbRoute]] = {}
        if batch is not None and missing:
            computed = batch(s, dests=missing)
        for d in hosts:
            if s == d:
                continue
            route = None if pairs is None else pairs.get((s, d))
            if route is None:
                route = computed.get(d)
            if route is None:
                route = router.itb_route(s, d)
            tables[s].install(d, route)
    return tables
