"""In-Transit Buffer routing: the paper's core contribution.

An invalid minimal path — one containing a down->up transition — is
legalized by *ejecting* the packet at a host attached to the switch
where the violation occurs and re-injecting it from there, splitting
the path into valid up*/down* segments (paper Figure 1).

The router works in two stages:

1. Enumerate minimal switch paths between the endpoints and pick one
   whose violation switches all carry at least one attached host
   (candidate in-transit hosts).
2. Split the chosen path at those switches, producing an
   :class:`~repro.routing.routes.ItbRoute` whose every segment passes
   the up*/down* validity check.

When no minimal path can be legalized (some violating switch has no
host), the router either falls back to the plain up*/down* route or —
with ``allow_longer=True`` — searches for the shortest *legalizable*
path of any length.

In-transit host selection within a switch is pluggable (policy
callable), since the paper's follow-ups study load-aware placement.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.routing.minimal import _switch_adjacency, all_shortest_switch_paths
from repro.routing.routes import Direction, ItbRoute, RouteError, SourceRoute
from repro.routing.spanning_tree import UpDownOrientation, build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.graph import Topology

__all__ = ["ItbRouter", "first_host_policy", "round_robin_policy"]


HostPolicy = Callable[[Topology, int, int, int], int]
"""(topo, switch, src_host, dst_host) -> chosen in-transit host id."""


def first_host_policy(topo: Topology, switch: int, _src: int, _dst: int) -> int:
    """Pick the lowest-id host on the switch (deterministic default)."""
    hosts = topo.hosts_on(switch)
    if not hosts:
        raise RouteError(f"switch {switch} has no attached host for an ITB")
    return hosts[0]


class round_robin_policy:
    """Rotate in-transit duty over a switch's hosts.

    Spreads the ejection/re-injection load over all hosts of a switch —
    the simplest of the load-aware placements the paper's future work
    motivates.  Stateful: each router owns one instance.
    """

    def __init__(self) -> None:
        self._counters: dict[int, int] = {}

    def __call__(self, topo: Topology, switch: int, _src: int, _dst: int) -> int:
        hosts = topo.hosts_on(switch)
        if not hosts:
            raise RouteError(f"switch {switch} has no attached host for an ITB")
        k = self._counters.get(switch, 0)
        self._counters[switch] = k + 1
        return hosts[k % len(hosts)]


class ItbRouter:
    """Minimal routing legalized with in-transit buffers.

    Parameters
    ----------
    topo:
        The network.
    orientation:
        Up*/down* orientation shared with the baseline router (so both
        routings agree on link directions, as on a real mapper).
    host_policy:
        In-transit host chooser per violation switch.
    max_paths:
        Cap on enumerated minimal paths per pair before giving up on
        the minimal length.
    allow_longer:
        When the minimal length cannot be legalized, search longer
        paths (still preferring fewest switch hops, then fewest ITBs)
        instead of falling back to plain up*/down*.
    """

    name = "itb"

    def __init__(
        self,
        topo: Topology,
        orientation: Optional[UpDownOrientation] = None,
        host_policy: HostPolicy = first_host_policy,
        max_paths: int = 64,
        allow_longer: bool = True,
    ) -> None:
        self.topo = topo
        self.orientation = orientation or build_orientation(topo)
        self.host_policy = host_policy
        self.max_paths = max_paths
        self.allow_longer = allow_longer
        self._updown = UpDownRouter(topo, self.orientation)
        # (s_src, s_dst) -> (path, splits) | None.  Plans never invoke
        # host_policy (only _build does), so memoizing them is invisible
        # to stateful policies and lets every host pair on the same
        # switch pair share one path search.
        self._plans: dict[tuple[int, int],
                          Optional[tuple[list[int], list[int]]]] = {}
        # s_src -> (parent, goal) full legalization-Dijkstra tree.
        self._legal_trees: dict[int, tuple[dict, dict]] = {}

    # ------------------------------------------------------------------
    # path analysis
    # ------------------------------------------------------------------

    def split_points(self, switch_path: Sequence[int]) -> list[int]:
        """Indices of switches where the path must be split (violations)."""
        return self.orientation.violations(self.topo, list(switch_path))

    def can_legalize(self, switch_path: Sequence[int]) -> bool:
        """True when every violation switch carries at least one host."""
        return all(
            bool(self.topo.hosts_on(switch_path[i]))
            for i in self.split_points(switch_path)
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def itb_route(self, src_host: int, dst_host: int) -> ItbRoute:
        """Compute the ITB route between two hosts.

        Preference order: minimal length with fewest ITBs; then (if
        ``allow_longer``) shortest legalizable length; then the plain
        up*/down* route as a single segment.
        """
        topo = self.topo
        if src_host == dst_host:
            raise RouteError("source and destination host are the same")
        s_src, s_dst = topo.switch_of(src_host), topo.switch_of(dst_host)
        plan = self._pair_plan(s_src, s_dst)
        if plan is not None:
            return self._build(src_host, dst_host, plan[0], plan[1])
        # Last resort: the plain up*/down* route (always legal).
        return self._updown.itb_route(src_host, dst_host)

    def _pair_plan(
        self, s_src: int, s_dst: int
    ) -> Optional[tuple[list[int], list[int]]]:
        """Memoized ``(switch_path, splits)`` plan for a switch pair.

        ``None`` means "fall back to plain up*/down*".  Plans are pure
        path analysis — :meth:`_build` applies the (possibly stateful)
        host policy per host pair afterwards.
        """
        key = (s_src, s_dst)
        if key in self._plans:
            return self._plans[key]
        topo = self.topo
        best: Optional[tuple[int, list[int], list[int]]] = None  # (n_itb, path, splits)
        for path in all_shortest_switch_paths(topo, s_src, s_dst,
                                              limit=self.max_paths):
            splits = self.split_points(path)
            if not all(topo.hosts_on(path[i]) for i in splits):
                continue
            if best is None or len(splits) < best[0]:
                best = (len(splits), path, splits)
            if best[0] == 0:
                break
        plan: Optional[tuple[list[int], list[int]]] = None
        if best is not None:
            plan = (best[1], best[2])
        elif self.allow_longer:
            plan = self._shortest_legalizable(s_src, s_dst)
        self._plans[key] = plan
        return plan

    def route(self, src_host: int, dst_host: int) -> ItbRoute:
        """Alias so routers are interchangeable in the harness."""
        return self.itb_route(src_host, dst_host)

    def routes_from(
        self,
        src_host: int,
        dests: Optional[Sequence[int]] = None,
        strict: bool = True,
    ) -> dict[int, ItbRoute]:
        """ITB routes from one host to every destination host.

        Shares the memoized pair plans and per-source legalization tree;
        host_policy is still invoked once per host pair, in destination
        order, so stateful policies see the same call sequence as the
        per-pair loop.  ``strict=False`` skips unroutable destinations
        (fault-remap keep-stale semantics).
        """
        topo = self.topo
        s_src = topo.switch_of(src_host)
        out: dict[int, ItbRoute] = {}
        for d in (topo.hosts() if dests is None else dests):
            if d == src_host:
                continue
            try:
                plan = self._pair_plan(s_src, topo.switch_of(d))
                if plan is not None:
                    route = self._build(src_host, d, plan[0], plan[1])
                else:
                    # Warm the up*/down* tree so the fallback is batched too.
                    self._updown.switch_tree(s_src)
                    route = self._updown.itb_route(src_host, d)
            except (RouteError, KeyError):
                if strict:
                    raise
                continue
            out[d] = route
        return out

    def all_pairs(self) -> dict[tuple[int, int], ItbRoute]:
        """ITB routes for every ordered host pair (the mapper's job).

        Batched over shared pair plans and per-source trees;
        byte-identical to :meth:`all_pairs_pairwise` including the
        host-policy call order.
        """
        hosts = self.topo.hosts()
        out: dict[tuple[int, int], ItbRoute] = {}
        for s in hosts:
            routes = self.routes_from(s)
            for d in hosts:
                if s != d:
                    out[(s, d)] = routes[d]
        return out

    def itb_all_pairs(self) -> dict[tuple[int, int], ItbRoute]:
        """Uniform batch interface shared by every router kind."""
        return self.all_pairs()

    def all_pairs_pairwise(self) -> dict[tuple[int, int], ItbRoute]:
        """Legacy per-pair construction — the preserved test oracle."""
        hosts = self.topo.hosts()
        return {
            (s, d): self.itb_route_pairwise(s, d)
            for s in hosts
            for d in hosts
            if s != d
        }

    def itb_route_pairwise(self, src_host: int, dst_host: int) -> ItbRoute:
        """Per-pair ITB route with no shared state — the legacy path.

        Re-runs path enumeration and the legalization search for every
        pair (no plan memo, no source trees); used as the oracle that
        the batched construction must match byte for byte.
        """
        topo = self.topo
        if src_host == dst_host:
            raise RouteError("source and destination host are the same")
        s_src, s_dst = topo.switch_of(src_host), topo.switch_of(dst_host)

        best: Optional[tuple[int, list[int], list[int]]] = None
        for path in all_shortest_switch_paths(topo, s_src, s_dst,
                                              limit=self.max_paths):
            splits = self.split_points(path)
            if not all(topo.hosts_on(path[i]) for i in splits):
                continue
            if best is None or len(splits) < best[0]:
                best = (len(splits), path, splits)
            if best[0] == 0:
                break
        if best is not None:
            return self._build(src_host, dst_host, best[1], best[2])

        if self.allow_longer:
            found = self._shortest_legalizable_pairwise(s_src, s_dst)
            if found is not None:
                path, splits = found
                return self._build(src_host, dst_host, path, splits)

        return ItbRoute((self._updown.route_pairwise(src_host, dst_host),))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _build(
        self,
        src_host: int,
        dst_host: int,
        switch_path: list[int],
        splits: list[int],
    ) -> ItbRoute:
        """Cut ``switch_path`` at the violation switches and emit segments."""
        topo = self.topo
        segments: list[SourceRoute] = []
        seg_entry_host = src_host
        start = 0
        cut_points = list(splits) + [len(switch_path) - 1]
        for j, cut in enumerate(cut_points):
            last = j == len(cut_points) - 1
            sub_path = switch_path[start:cut + 1]
            if last:
                exit_host = dst_host
            else:
                exit_host = self.host_policy(
                    topo, switch_path[cut], src_host, dst_host
                )
            ports = [topo.port_toward(a, b)
                     for a, b in zip(sub_path, sub_path[1:])]
            ports.append(topo.port_toward(sub_path[-1], exit_host))
            segment = SourceRoute(
                src=seg_entry_host,
                dst=exit_host,
                ports=tuple(ports),
                switch_path=tuple(sub_path),
            )
            if not self.orientation.is_valid_updown_path(topo, list(sub_path)):
                raise RouteError(
                    f"internal error: segment {sub_path} still invalid"
                )
            segments.append(segment)
            seg_entry_host = exit_host
            start = cut  # next segment re-enters at the violation switch
        return ItbRoute(tuple(segments))

    def _legal_tree_for(self, s_src: int) -> tuple[dict, dict]:
        """Full legalization Dijkstra from one source switch, memoized.

        Runs the same (hops, itbs)-lexicographic expansion as the
        per-pair search but to exhaustion, recording the first finalized
        state popped at every switch.  Edge costs are strictly positive
        and relaxation is strictly ``<``, so every predecessor on a
        goal's parent chain is finalized before the goal pops — the
        reconstructed (path, splits) is byte-identical to the early-exit
        per-pair search for every destination at once.
        """
        cached = self._legal_trees.get(s_src)
        if cached is not None:
            return cached
        import heapq

        topo = self.topo
        adj = _switch_adjacency(topo)
        table = self.orientation.pair_direction_table(topo)
        inf = (1 << 30, 1 << 30)
        start = (s_src, 0)
        dist: dict[tuple[int, int], tuple[int, int]] = {start: (0, 0)}
        parent: dict[tuple[int, int], tuple[tuple[int, int], bool]] = {}
        heap: list[tuple[int, int, tuple[int, int]]] = [(0, 0, start)]
        goal: dict[int, tuple[int, int]] = {}
        while heap:
            hops, itbs, state = heapq.heappop(heap)
            if dist.get(state, inf) < (hops, itbs):
                continue
            u, phase = state
            if u not in goal:
                goal[u] = state
            if phase == 1 and topo.hosts_on(u):
                nstate = (u, 0)
                ncost = (hops, itbs + 1)
                if ncost < dist.get(nstate, inf):
                    dist[nstate] = ncost
                    parent[nstate] = (state, True)
                    heapq.heappush(heap, (hops, itbs + 1, nstate))
            for v in adj[u]:
                d = table[(u, v)]
                if phase == 1 and d is Direction.UP:
                    continue
                nphase = 1 if d is Direction.DOWN else phase
                nstate = (v, nphase)
                ncost = (hops + 1, itbs)
                if ncost < dist.get(nstate, inf):
                    dist[nstate] = ncost
                    parent[nstate] = (state, False)
                    heapq.heappush(heap, (hops + 1, itbs, nstate))
        tree = (parent, goal)
        self._legal_trees[s_src] = tree
        return tree

    def _shortest_legalizable(
        self, s_src: int, s_dst: int
    ) -> Optional[tuple[list[int], list[int]]]:
        """Shortest legalizable (path, splits), served off the memoized
        per-source tree; ``None`` when the destination is unreachable."""
        parent, goal = self._legal_tree_for(s_src)
        state = goal.get(s_dst)
        if state is None:
            return None
        start = (s_src, 0)
        rev_states: list[tuple[tuple[int, int], bool]] = []
        while state != start:
            prev, was_reset = parent[state]
            rev_states.append((state, was_reset))
            state = prev
        path = [s_src]
        splits: list[int] = []
        for (st, was_reset) in reversed(rev_states):
            if was_reset:
                splits.append(len(path) - 1)
            else:
                path.append(st[0])
        return path, splits

    def _shortest_legalizable_pairwise(
        self, s_src: int, s_dst: int
    ) -> Optional[tuple[list[int], list[int]]]:
        """BFS over (switch, direction-phase) with host-reset transitions.

        State space: ``(switch, phase)`` where phase 0 = may still go
        UP, 1 = DOWN taken.  At any switch with a host, the phase may
        reset to 0 at the cost of one ITB; we search by (hops, itbs)
        lexicographic cost with a Dijkstra-like expansion, giving the
        shortest path legalizable with ITBs of any (possibly
        super-minimal) length.  Preserved legacy per-pair search — the
        oracle for the batched tree.
        """
        import heapq

        topo, orient = self.topo, self.orientation
        start = (s_src, 0)
        # cost = (hops, itbs); parent map reconstructs path and splits
        dist: dict[tuple[int, int], tuple[int, int]] = {start: (0, 0)}
        parent: dict[tuple[int, int], tuple[tuple[int, int], bool]] = {}
        heap: list[tuple[int, int, tuple[int, int]]] = [(0, 0, start)]
        goal: Optional[tuple[int, int]] = None
        while heap:
            hops, itbs, state = heapq.heappop(heap)
            if dist.get(state, (1 << 30, 1 << 30)) < (hops, itbs):
                continue
            u, phase = state
            if u == s_dst:
                goal = state
                break
            # ITB reset (no hop cost, +1 itb) when the switch has a host.
            if phase == 1 and topo.hosts_on(u):
                nstate = (u, 0)
                ncost = (hops, itbs + 1)
                if ncost < dist.get(nstate, (1 << 30, 1 << 30)):
                    dist[nstate] = ncost
                    parent[nstate] = (state, True)
                    heapq.heappush(heap, (hops, itbs + 1, nstate))
            for _port, v, link in topo.switch_neighbors(u):
                d = orient.direction(link.link_id, u, v)
                if phase == 1 and d is Direction.UP:
                    continue
                nphase = 1 if d is Direction.DOWN else phase
                nstate = (v, nphase)
                ncost = (hops + 1, itbs)
                if ncost < dist.get(nstate, (1 << 30, 1 << 30)):
                    dist[nstate] = ncost
                    parent[nstate] = (state, False)
                    heapq.heappush(heap, (hops + 1, itbs, nstate))
        if goal is None:
            return None
        # Reconstruct switch path and split indices.
        rev_states: list[tuple[tuple[int, int], bool]] = []
        state = goal
        while state != start:
            prev, was_reset = parent[state]
            rev_states.append((state, was_reset))
            state = prev
        path = [s_src]
        splits: list[int] = []
        for (st, was_reset) in reversed(rev_states):
            if was_reset:
                splits.append(len(path) - 1)
            else:
                path.append(st[0])
        return path, splits
