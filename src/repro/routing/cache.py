"""Process-safe all-pairs route cache.

Every experiment point that builds a network recomputes the same
spanning tree, up*/down* search, and ITB all-pairs legalization —
pure functions of ``(topology, routing kind, spanning-tree root)``.
On a 16-switch COW that is the dominant setup cost of a point, and a
load sweep re-pays it per (routing, rate) sample.

:class:`RouteCache` memoizes the mapper's output keyed by a
structural topology signature, the routing policy name, and the root.
The cached value is the :class:`~repro.routing.spanning_tree.UpDownOrientation`
plus the all-pairs route dict; fresh :class:`~repro.routing.tables.RouteTable`
objects are minted per consumer so NIC-side ``install`` overrides can
never corrupt the shared entry.

Parallel runs share the cache by **fork inheritance**: the experiment
runner warms the cache in the parent process before fanning points
out, so workers find every shared table already present.  The
hit/miss counters live in ``multiprocessing.Value`` shared memory and
therefore stay accurate across workers — the acceptance tests assert
"each shared route table computed at most once" directly on them.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
from collections import OrderedDict
from typing import Optional

from repro.routing.itb import ItbRouter
from repro.routing.minimal import MinimalRouter
from repro.routing.routes import ItbRoute, RouteError
from repro.routing.spanning_tree import UpDownOrientation, build_orientation
from repro.routing.tables import RouteTable
from repro.routing.updown import UpDownRouter
from repro.topology.graph import Topology

__all__ = ["RouteCache", "default_route_cache", "topology_signature"]


def topology_signature(topo: Topology) -> str:
    """A stable structural digest of a topology.

    Two topologies built the same way (same generator, same seed) get
    the same signature even though they are distinct objects — that is
    what lets a cache entry computed in one process serve points that
    rebuild the topology from scratch.
    """
    def digest() -> str:
        parts: list[str] = [topo.name]
        for node in range(topo.n_nodes):
            parts.append(f"n{node}:{topo.kind(node).value}:{topo.n_ports(node)}")
        for link in topo.links:
            (na, pa), (nb, pb) = link.endpoints()
            parts.append(f"l{na}.{pa}-{nb}.{pb}:{link.kind.value}")
        return hashlib.sha1("|".join(parts).encode()).hexdigest()

    # Memoized on the topology (invalidated by node/link growth like
    # every other derived map) so repeated cache lookups on a large
    # fabric don't re-hash tens of thousands of link strings each time.
    return topo.derived("topology_signature", digest)


_ROUTERS = {
    "updown": UpDownRouter,
    "itb": ItbRouter,
    "minimal": MinimalRouter,
}


class RouteCache:
    """Memoizes ``(topology, routing, root) -> (orientation, all-pairs routes)``.

    Hit/miss counters are shared memory (``multiprocessing.Value``),
    so forked worker processes report into the same totals.  The entry
    dict itself is per-process: the runner warms it in the parent, and
    forked children inherit the warmed entries copy-on-write.

    Memory is bounded: the cache holds at most ``max_entries`` entries
    in LRU order (lookups refresh recency, insertion past the bound
    evicts the least recently used entry and bumps the shared
    ``evictions`` counter).  All-pairs route dicts on large fabrics
    are the biggest objects the harness retains, so a long-lived
    process sweeping many topologies (fault campaigns, root studies,
    partition plans — each sub-topology is its own entry) would
    otherwise grow without limit.  ``max_entries=None`` disables the
    bound.
    """

    #: Default bound — far above any single experiment's working set
    #: (a full sweep touches a handful of (topology, routing, root)
    #: combos), so eviction only triggers on topology-churning runs.
    DEFAULT_MAX_ENTRIES = 128

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES
                 ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str, Optional[int]],
                                   tuple[UpDownOrientation,
                                         dict[tuple[int, int], ItbRoute]]] \
            = OrderedDict()
        self._lock = threading.Lock()
        self._hits = multiprocessing.Value("q", 0)
        self._misses = multiprocessing.Value("q", 0)
        self._evictions = multiprocessing.Value("q", 0)
        self._batch_hits = multiprocessing.Value("q", 0)

    # -- stats -------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lookups served from the cache (all processes)."""
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        """Lookups that had to compute routes (all processes)."""
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU bound (all processes)."""
        return int(self._evictions.value)

    @property
    def batch_hits(self) -> int:
        """Per-source tree requests served off a warm all-pairs entry."""
        return int(self._batch_hits.value)

    def stats(self) -> dict:
        """Counters plus the number of distinct entries in *this* process."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "batch_hits": self.batch_hits,
                "entries": len(self._entries)}

    def reset_stats(self) -> None:
        """Zero the shared counters (entries stay cached)."""
        for counter in (self._hits, self._misses, self._evictions,
                        self._batch_hits):
            with counter.get_lock():
                counter.value = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- core --------------------------------------------------------------

    def key_for(self, topo: Topology, routing: str,
                root: Optional[int] = None) -> tuple[str, str, Optional[int]]:
        """The cache key of one ``(topology, routing, root)`` combo."""
        return (topology_signature(topo), routing, root)

    def routes_for(
        self,
        topo: Topology,
        routing: str,
        root: Optional[int] = None,
    ) -> tuple[UpDownOrientation, dict[tuple[int, int], ItbRoute]]:
        """The orientation and all-pairs routes, computed at most once.

        The returned pairs dict is the shared entry — treat it as
        read-only (:meth:`tables_for` mints safe per-consumer tables).
        """
        if routing not in _ROUTERS:
            raise RouteError(f"unknown routing policy {routing!r}")
        key = self.key_for(topo, routing, root)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is not None:
            with self._hits.get_lock():
                self._hits.value += 1
            return entry
        with self._misses.get_lock():
            self._misses.value += 1
        orientation = build_orientation(topo, root=root)
        router = _ROUTERS[routing](topo, orientation)
        # Batch-first construction: one tree per source switch instead
        # of a fresh search per host pair (byte-identical output, same
        # insertion order as the old per-pair loop).
        pairs = router.itb_all_pairs()
        with self._lock:
            self._entries.setdefault(key, (orientation, pairs))
            self._entries.move_to_end(key)
            evicted = 0
            while (self.max_entries is not None
                   and len(self._entries) > self.max_entries):
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            with self._evictions.get_lock():
                self._evictions.value += evicted
        return orientation, pairs

    def routes_from(
        self,
        topo: Topology,
        routing: str,
        src_host: int,
        root: Optional[int] = None,
    ) -> tuple[UpDownOrientation, dict[int, ItbRoute]]:
        """Routes from one source host, served off a warm batch entry.

        A warm all-pairs entry (or a previously computed per-source
        entry) serves the whole tree without any route computation —
        counted in ``batch_hits``.  A cold lookup computes only this
        source's tree via the batched per-source builder and caches it
        under a source-scoped key, so partial consumers (fault remap
        probes, CLI inspection) never pay the full all-pairs cost.
        """
        if routing not in _ROUTERS:
            raise RouteError(f"unknown routing policy {routing!r}")
        full_key = self.key_for(topo, routing, root)
        src_key = full_key + (src_host,)
        sub = None
        with self._lock:
            entry = self._entries.get(full_key)
            if entry is not None:
                self._entries.move_to_end(full_key)
            else:
                sub = self._entries.get(src_key)
                if sub is not None:
                    self._entries.move_to_end(src_key)
        if entry is not None:
            with self._batch_hits.get_lock():
                self._batch_hits.value += 1
            orientation, pairs = entry
            return orientation, {d: r for (s, d), r in pairs.items()
                                 if s == src_host}
        if sub is not None:
            with self._batch_hits.get_lock():
                self._batch_hits.value += 1
            return sub
        with self._misses.get_lock():
            self._misses.value += 1
        orientation = build_orientation(topo, root=root)
        router = _ROUTERS[routing](topo, orientation)
        routes = {
            d: (r if isinstance(r, ItbRoute) else ItbRoute((r,)))
            for d, r in router.routes_from(src_host).items()
        }
        with self._lock:
            self._entries.setdefault(src_key, (orientation, routes))
            self._entries.move_to_end(src_key)
            evicted = 0
            while (self.max_entries is not None
                   and len(self._entries) > self.max_entries):
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            with self._evictions.get_lock():
                self._evictions.value += evicted
        return orientation, routes

    def tables_for(
        self,
        topo: Topology,
        routing: str,
        root: Optional[int] = None,
    ) -> tuple[UpDownOrientation, dict[int, RouteTable]]:
        """Per-host route tables backed by the cached all-pairs routes.

        Tables are fresh objects per call (routes themselves are
        immutable and shared), so a consumer stamping overrides into
        its NICs cannot corrupt the cache.
        """
        orientation, pairs = self.routes_for(topo, routing, root=root)
        tables = {h: RouteTable(host=h) for h in topo.hosts()}
        for (s, d), route in pairs.items():
            tables[s].install(d, route)
        return orientation, tables

    def warm(self, topo: Topology, routing: str,
             root: Optional[int] = None) -> None:
        """Precompute one entry (the runner calls this before forking)."""
        self.routes_for(topo, routing, root=root)


_DEFAULT_CACHE: Optional[RouteCache] = None


def default_route_cache() -> RouteCache:
    """The process-wide shared cache (created on first use)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = RouteCache()
    return _DEFAULT_CACHE
