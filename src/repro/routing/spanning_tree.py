"""BFS spanning tree and up/down link orientation.

Implements the orientation rule from the paper's introduction: compute
a breadth-first spanning tree of the switch fabric, then define the
*up* end of every switch-to-switch link as

1. the end whose switch is closer to the root in the spanning tree, or
2. the end whose switch has the lower id, when both ends sit at the
   same tree level.

Every cycle then contains at least one up link and one down link, and
forbidding down->up transitions breaks all cyclic channel
dependencies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.routing.routes import Direction, RouteError
from repro.topology.graph import Topology

__all__ = ["UpDownOrientation", "build_orientation"]


@dataclass
class UpDownOrientation:
    """Orientation of every switch-to-switch link plus tree metadata."""

    root: int
    level: dict[int, int]
    parent: dict[int, Optional[int]]
    # link_id -> switch id of the *up* end
    up_end: dict[int, int] = field(default_factory=dict)
    # (topology, direction table) built lazily by pair_direction_table();
    # excluded from equality so orientations still compare by structure.
    _dir_cache: Optional[tuple] = field(default=None, repr=False,
                                        compare=False, init=False)

    def direction(self, link_id: int, from_switch: int, to_switch: int) -> Direction:
        """Direction of traversing ``link_id`` from ``from_switch``.

        Moving *toward* the up end is the UP direction.
        """
        up = self.up_end.get(link_id)
        if up is None:
            raise RouteError(f"link {link_id} has no orientation (host link?)")
        if to_switch == up:
            return Direction.UP
        if from_switch == up:
            return Direction.DOWN
        raise RouteError(
            f"link {link_id} does not join switches {from_switch},{to_switch}"
        )

    def is_valid_transition(
        self, prev: Optional[Direction], nxt: Direction
    ) -> bool:
        """up*/down* legality: never UP after DOWN."""
        return not (prev is Direction.DOWN and nxt is Direction.UP)

    def pair_direction_table(self, topo: Topology) -> dict[tuple[int, int], Direction]:
        """Batched direction lookup: ``(from_switch, to_switch) -> Direction``.

        Parallel links between the same pair always orient identically
        (the rule depends only on endpoint levels/ids), so one entry per
        ordered switch pair suffices.  Built once per (orientation,
        topology) and reused by every path scan — this replaces the
        per-hop ``links_between`` rescan that dominated batched route
        construction on large fabrics.
        """
        cached = self._dir_cache
        if cached is not None and cached[0] is topo:
            return cached[1]
        table: dict[tuple[int, int], Direction] = {}
        for link in topo.links:
            up = self.up_end.get(link.link_id)
            if up is None:
                continue
            a, b = link.node_a, link.node_b
            if up == a:
                table[(b, a)] = Direction.UP
                table[(a, b)] = Direction.DOWN
            else:
                table[(a, b)] = Direction.UP
                table[(b, a)] = Direction.DOWN
        self._dir_cache = (topo, table)
        return table

    def path_directions(
        self, topo: Topology, switch_path: list[int] | tuple[int, ...]
    ) -> list[Direction]:
        """Directions of each switch-to-switch hop along a switch path.

        Parallel links between the same pair always orient identically
        (the rule depends only on endpoint levels/ids), so the lowest-id
        link is representative.
        """
        table = self.pair_direction_table(topo)
        dirs: list[Direction] = []
        for a, b in zip(switch_path, switch_path[1:]):
            d = table.get((a, b))
            if d is None:
                raise RouteError(f"switch path broken between {a} and {b}")
            dirs.append(d)
        return dirs

    def is_valid_updown_path(
        self, topo: Topology, switch_path: list[int] | tuple[int, ...]
    ) -> bool:
        """True when a switch path never turns UP after a DOWN hop."""
        prev: Optional[Direction] = None
        for d in self.path_directions(topo, switch_path):
            if not self.is_valid_transition(prev, d):
                return False
            prev = d
        return True

    def violations(
        self, topo: Topology, switch_path: list[int] | tuple[int, ...]
    ) -> list[int]:
        """Indices (into ``switch_path``) of switches where a forbidden
        down->up transition occurs."""
        dirs = self.path_directions(topo, switch_path)
        out = []
        for i in range(1, len(dirs)):
            if dirs[i - 1] is Direction.DOWN and dirs[i] is Direction.UP:
                out.append(i)  # the violation happens AT switch_path[i]
        return out


def choose_root(topo: Topology) -> int:
    """Default root selection: the switch minimizing BFS eccentricity,
    ties broken by lowest id (a common Autonet/Myrinet mapper policy).

    Distance maps come from the per-source memo shared with the minimal
    router (``switch_distances``), so the all-pairs BFS cost is paid at
    most once per topology and only when an orientation or route is
    actually requested — building a topology alone stays O(V + E).
    """
    from repro.routing.minimal import switch_distances

    switches = topo.switches()
    if not switches:
        raise RouteError("topology has no switches")
    n = len(switches)

    def eccentricity(src: int) -> int:
        dist = switch_distances(topo, src)
        if len(dist) != n:
            raise RouteError("switch fabric is not connected")
        return max(dist.values())

    return min(switches, key=lambda s: (eccentricity(s), s))


def build_orientation(
    topo: Topology, root: Optional[int] = None
) -> UpDownOrientation:
    """Compute the BFS spanning tree and orient every fabric link."""
    switches = topo.switches()
    if not switches:
        raise RouteError("topology has no switches")
    if root is None:
        root = choose_root(topo)
    elif root not in switches:
        raise RouteError(f"root {root} is not a switch")

    level: dict[int, int] = {root: 0}
    parent: dict[int, Optional[int]] = {root: None}
    q = deque([root])
    while q:
        u = q.popleft()
        # Deterministic order: by neighbor id.
        for v in sorted({n for (_p, n, _l) in topo.switch_neighbors(u)}):
            if v not in level:
                level[v] = level[u] + 1
                parent[v] = u
                q.append(v)
    if len(level) != len(switches):
        missing = sorted(set(switches) - set(level))
        raise RouteError(f"switch fabric not connected; unreachable: {missing}")

    orientation = UpDownOrientation(root=root, level=level, parent=parent)
    for link in topo.links:
        if not (topo.is_switch(link.node_a) and topo.is_switch(link.node_b)):
            continue
        la, lb = level[link.node_a], level[link.node_b]
        if la < lb:
            up = link.node_a
        elif lb < la:
            up = link.node_b
        else:
            up = min(link.node_a, link.node_b)
        orientation.up_end[link.link_id] = up
    return orientation
