"""Pluggable, congestion-aware in-transit host selection.

The paper computes ITB placements once at route-build time with the
static lowest-id policy, but its own Figure 8 buffer-occupancy data
shows in-transit hosts become hotspots under load.  This module closes
that loop: a :class:`Selector` chooses among the candidate in-transit
hosts of a violation switch (the hosts ``topo.hosts_on(switch)``
enumerates — exactly the candidates :mod:`repro.routing.itb` already
legalizes against), optionally *fed by a read-only congestion view*
over live buffer occupancy.

Selectors are plain :data:`~repro.routing.itb.HostPolicy` callables, so
they plug straight into :class:`~repro.routing.itb.ItbRouter` — the
selection seam is the router's existing pluggable policy, not a new
code path.  The congestion view is duck-typed (anything with a
``host_load(host) -> float`` method), mirroring how the engine treats
``fabric.tracer``: routing never imports the observability package;
:func:`repro.obs.attach.attach_congestion_view` builds a live view over
the registry's occupancy gauges and hands it in.

**The zero-load oracle contract.**  Every policy degrades to the static
lowest-id choice when its congestion signal is all-zero (no view
attached, or every candidate idle).  Adaptive selection only *engages*
on a live signal — which is what makes the static placement the
provable baseline: at occupancy 0 all five policies pick byte-identical
routes, and the equivalence tier in ``tests/test_adaptive_itb.py``
asserts exactly that.

**Determinism across fork-pool workers.**  Stateless policies decide
from global identifiers only; the ``random`` policy draws from a
globally-keyed RNG stream ``SeedSequence(entropy=seed, spawn_key=
(switch, src, dst, epoch))`` — the :mod:`repro.harness.storm` pattern —
so the decision for a pair is a pure function of the key, independent
of worker count, call order, or which pairs were selected before it.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

from repro.routing.routes import RouteError
from repro.topology.graph import Topology

__all__ = [
    "CongestionView",
    "EwmaSelector",
    "LeastLoadedSelector",
    "MapCongestionView",
    "RandomSelector",
    "RoundRobinSelector",
    "SELECTOR_NAMES",
    "Selector",
    "StaticSelector",
    "make_selector",
]


class CongestionView(Protocol):
    """Read-only load signal a selector consults (duck-typed).

    Implementations report the instantaneous congestion of one host's
    receive/ITB buffers as a non-negative float (0.0 = idle).  The
    live implementation reads the obs registry's
    ``nic_recv_buffer_occupancy_bytes`` gauges
    (:func:`repro.obs.attach.attach_congestion_view`); tests use the
    dict-backed :class:`MapCongestionView`.
    """

    def host_load(self, host: int) -> float:
        """Current congestion at ``host`` (0.0 means idle)."""
        ...  # pragma: no cover - protocol


class MapCongestionView:
    """Dict-backed :class:`CongestionView` for tests and simulations.

    Hosts without an explicit entry read 0.0, so a fresh view is the
    zero-load oracle condition by construction.
    """

    def __init__(self, loads: Optional[dict[int, float]] = None) -> None:
        self.loads: dict[int, float] = dict(loads or {})

    def host_load(self, host: int) -> float:
        """Current congestion at ``host`` (0.0 when never set)."""
        return float(self.loads.get(host, 0.0))

    def set_load(self, host: int, load: float) -> None:
        """Set one host's load (negative values are clamped to 0)."""
        self.loads[host] = max(0.0, float(load))


class Selector:
    """Base class: choose an in-transit host among a switch's candidates.

    A selector *is* a :data:`~repro.routing.itb.HostPolicy` — calling
    it with ``(topo, switch, src, dst)`` returns the chosen host — so
    it plugs into :class:`~repro.routing.itb.ItbRouter` unchanged.

    Attributes
    ----------
    view:
        Optional :class:`CongestionView`; ``None`` (or an all-zero
        view) makes every policy behave exactly like ``static``.
    epoch:
        Reselection round counter, bumped by :meth:`begin_epoch` each
        time the mapper re-runs selection.  Policies that vary over
        rounds (``random``, ``roundrobin``) key their decision on it,
        keeping each round deterministic yet distinct.
    decisions / engaged:
        Total choices made, and choices where a live signal diverted
        the pick from the static candidate (telemetry, read by the
        ``itb_reselect_*`` counters).
    """

    name = "base"

    def __init__(self, view: Optional[CongestionView] = None) -> None:
        self.view = view
        self.epoch = 0
        self.decisions = 0
        self.engaged = 0

    def begin_epoch(self) -> int:
        """Start a new reselection round; returns the new epoch."""
        self.epoch += 1
        return self.epoch

    # -- policy hooks ------------------------------------------------------

    def choose(
        self,
        topo: Topology,
        switch: int,
        src: int,
        dst: int,
        candidates: Sequence[int],
        loads: Sequence[float],
    ) -> int:
        """Pick one of ``candidates`` given their (nonzero) loads.

        Only called when at least one candidate reports load; the
        zero-signal case short-circuits to the static choice in
        :meth:`__call__`.
        """
        raise NotImplementedError

    def __call__(self, topo: Topology, switch: int, src: int, dst: int) -> int:
        """The :data:`~repro.routing.itb.HostPolicy` entry point."""
        candidates = topo.hosts_on(switch)
        if not candidates:
            raise RouteError(
                f"switch {switch} has no attached host for an ITB")
        self.decisions += 1
        if self.view is None or len(candidates) == 1:
            return candidates[0]
        loads = [self.view.host_load(h) for h in candidates]
        if not any(loads):
            # Zero-load oracle contract: no signal, static choice.
            return candidates[0]
        chosen = self.choose(topo, switch, src, dst, candidates, loads)
        if chosen not in candidates:
            raise RouteError(
                f"selector {self.name!r} chose host {chosen}, not a"
                f" candidate of switch {switch} ({candidates})")
        if chosen != candidates[0]:
            self.engaged += 1
        return chosen


class StaticSelector(Selector):
    """The paper's placement: lowest-id host, load ignored."""

    name = "static"

    def choose(self, topo, switch, src, dst, candidates, loads):
        """Always the lowest-id candidate."""
        return candidates[0]


class LeastLoadedSelector(Selector):
    """Pick the candidate with the lowest instantaneous load.

    Ties break toward the lowest host id, so an all-equal signal still
    reproduces the static split.
    """

    name = "least-loaded"

    def choose(self, topo, switch, src, dst, candidates, loads):
        """The (load, host-id)-minimal candidate."""
        return min(zip(loads, candidates))[1]


class EwmaSelector(Selector):
    """Least-loaded over an exponentially weighted moving average.

    Each decision folds the candidates' instantaneous loads into
    per-host EWMA state (``ewma = alpha * load + (1 - alpha) * ewma``),
    then picks the EWMA-minimal candidate — the metric-window policy:
    a brief occupancy spike cannot flap the placement the way it can
    under ``least-loaded``.
    """

    name = "ewma"

    def __init__(self, view: Optional[CongestionView] = None,
                 alpha: float = 0.3) -> None:
        super().__init__(view)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._ewma: dict[int, float] = {}

    def choose(self, topo, switch, src, dst, candidates, loads):
        """The candidate with the smallest smoothed load."""
        a = self.alpha
        smoothed = []
        for host, load in zip(candidates, loads):
            prev = self._ewma.get(host, 0.0)
            value = a * load + (1.0 - a) * prev
            self._ewma[host] = value
            smoothed.append(value)
        return min(zip(smoothed, candidates))[1]


class RandomSelector(Selector):
    """Seeded random spread once congestion appears.

    The draw is a globally-keyed RNG stream —
    ``SeedSequence(entropy=seed, spawn_key=(switch, src, dst, epoch))``
    — so the decision for a pair is a pure function of the key:
    identical across fork-pool workers and independent of how many
    other pairs were selected first (the :mod:`repro.harness.storm`
    determinism pattern).
    """

    name = "random"

    def __init__(self, view: Optional[CongestionView] = None,
                 seed: int = 2001) -> None:
        super().__init__(view)
        self.seed = seed

    def choose(self, topo, switch, src, dst, candidates, loads):
        """A seeded draw keyed by (seed, switch, src, dst, epoch)."""
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed, spawn_key=(switch, src, dst, self.epoch)))
        return candidates[int(rng.integers(len(candidates)))]


class RoundRobinSelector(Selector):
    """Stateless rotation of in-transit duty once congestion appears.

    Unlike the legacy stateful
    :class:`~repro.routing.itb.round_robin_policy` (whose counter
    depends on call order and therefore on worker scheduling), the
    rotation index here is ``(src + dst + epoch) % len(candidates)`` —
    a pure function of global identifiers, so different pairs spread
    over the switch's hosts, every epoch advances the rotation, and
    all fork-pool workers agree on every decision.
    """

    name = "roundrobin"

    def choose(self, topo, switch, src, dst, candidates, loads):
        """Globally-keyed rotation over the candidates."""
        return candidates[(src + dst + self.epoch) % len(candidates)]


#: Registered policy names, in documentation order.
SELECTOR_NAMES = ("static", "random", "roundrobin", "least-loaded", "ewma")

_SELECTORS = {
    "static": StaticSelector,
    "random": RandomSelector,
    "roundrobin": RoundRobinSelector,
    "least-loaded": LeastLoadedSelector,
    "ewma": EwmaSelector,
}


def make_selector(
    name: str,
    view: Optional[CongestionView] = None,
    seed: int = 2001,
    alpha: float = 0.3,
) -> Selector:
    """Build a selector by policy name.

    ``seed`` keys the ``random`` policy's RNG streams; ``alpha`` is the
    ``ewma`` smoothing factor; both are ignored by the other policies.
    """
    cls = _SELECTORS.get(name)
    if cls is None:
        raise RouteError(
            f"unknown selector {name!r}; known: {', '.join(SELECTOR_NAMES)}")
    if cls is RandomSelector:
        return cls(view, seed=seed)
    if cls is EwmaSelector:
        return cls(view, alpha=alpha)
    return cls(view)
