"""True minimal (shortest) routes, ignoring up*/down* restrictions.

Used two ways: as the target the ITB router tries to legalize, and as
an oracle in tests (ITB routes must match minimal length whenever an
in-transit host is available at every violation point).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.routing.routes import ItbRoute, RouteError, SourceRoute
from repro.topology.graph import Topology

__all__ = ["MinimalRouter", "all_shortest_switch_paths"]


def _switch_adjacency(topo: Topology) -> dict[int, list[int]]:
    """Switch-to-switch adjacency, memoized on the topology.

    Route computation asks for this once per host pair; the memo turns
    the repeated rebuild into a dictionary hit.  Treat as immutable.
    """
    return topo.derived("switch_adjacency", lambda: {
        s: sorted({n for (_p, n, _l) in topo.switch_neighbors(s)})
        for s in topo.switches()
    })


def switch_distances(topo: Topology, src_switch: int) -> dict[int, int]:
    """BFS hop distances over the switch fabric (memoized per source)."""
    return topo.derived(("switch_distances", src_switch),
                        lambda: _bfs_distances(topo, src_switch))


def _bfs_distances(topo: Topology, src_switch: int) -> dict[int, int]:
    adj = _switch_adjacency(topo)
    dist = {src_switch: 0}
    q = deque([src_switch])
    while q:
        u = q.popleft()
        for v in adj[u]:
            if v not in dist:
                dist[v] = dist[u] + 1
                q.append(v)
    return dist


def all_shortest_switch_paths(
    topo: Topology, src_switch: int, dst_switch: int, limit: Optional[int] = None
) -> Iterator[list[int]]:
    """Yield every shortest switch path, in lexicographic order.

    ``limit`` caps the number of yielded paths (the count can grow
    combinatorially on dense fabrics).
    """
    if src_switch == dst_switch:
        yield [src_switch]
        return
    adj = _switch_adjacency(topo)
    if src_switch not in adj or dst_switch not in adj:
        raise RouteError("endpoints must be switches")
    # Distances *to* the destination let us walk only along shortest DAG
    # edges from the source.
    dist_to_dst = switch_distances(topo, dst_switch)
    if src_switch not in dist_to_dst:
        raise RouteError(f"no path {src_switch} -> {dst_switch}")

    # Shortest-DAG children toward this destination, memoized lazily per
    # visited switch: every source enumerating paths toward ``dst``
    # shares the filtered lists instead of rescanning the (possibly very
    # wide) adjacency per DFS node — the scale-study profile's top
    # offender on leaf-spine fabrics.
    children: dict[int, list[int]] = topo.derived(
        ("shortest_dag_children", dst_switch), dict
    )

    yielded = 0
    stack: list[tuple[int, list[int]]] = [(src_switch, [src_switch])]
    while stack:
        u, path = stack.pop()
        if u == dst_switch:
            yield path
            yielded += 1
            if limit is not None and yielded >= limit:
                return
            continue
        nexts = children.get(u)
        if nexts is None:
            nexts = [
                v for v in adj[u]
                if dist_to_dst.get(v, -1) == dist_to_dst[u] - 1
            ]
            children[u] = nexts
        # Push in reverse id order so pops occur in ascending order.
        for v in reversed(nexts):
            stack.append((v, path + [v]))


class MinimalRouter:
    """Shortest-path routing with no turn restrictions.

    Not deadlock-free by itself on cyclic fabrics — that is exactly the
    problem the ITB mechanism solves.  Provided for analysis and as a
    building block.
    """

    name = "minimal"

    def __init__(self, topo: Topology, orientation=None) -> None:
        # ``orientation`` is accepted (and ignored) so the router slots
        # into the mapper/route-cache interface shared with the up*/down*
        # and ITB routers; minimal routing needs no spanning tree.
        self.topo = topo

    def itb_route(self, src_host: int, dst_host: int) -> ItbRoute:
        """Single-segment wrapper matching the ITB router interface."""
        return ItbRoute((self.route(src_host, dst_host),))

    def switch_route(self, src_switch: int, dst_switch: int) -> list[int]:
        """Lexicographically-first shortest switch path."""
        for path in all_shortest_switch_paths(self.topo, src_switch, dst_switch,
                                              limit=1):
            return path
        raise RouteError(f"no path {src_switch} -> {dst_switch}")

    def route(self, src_host: int, dst_host: int) -> SourceRoute:
        """Shortest source route between two hosts (no restrictions)."""
        topo = self.topo
        if src_host == dst_host:
            raise RouteError("source and destination host are the same")
        s_src, s_dst = topo.switch_of(src_host), topo.switch_of(dst_host)
        switch_path = self.switch_route(s_src, s_dst)
        ports = [topo.port_toward(a, b)
                 for a, b in zip(switch_path, switch_path[1:])]
        ports.append(topo.port_toward(s_dst, dst_host))
        return SourceRoute(
            src=src_host, dst=dst_host,
            ports=tuple(ports), switch_path=tuple(switch_path),
        )

    def distance(self, src_host: int, dst_host: int) -> int:
        """Minimal number of switch traversals between two hosts."""
        s_src = self.topo.switch_of(src_host)
        s_dst = self.topo.switch_of(dst_host)
        dist = switch_distances(self.topo, s_src)
        if s_dst not in dist:
            raise RouteError(f"no path {src_host} -> {dst_host}")
        return dist[s_dst] + 1  # hops between switches + final switch

    def routes_from(
        self,
        src_host: int,
        dests: Optional[list[int]] = None,
        strict: bool = True,
    ) -> dict[int, SourceRoute]:
        """Routes from one host to every destination, sharing the
        per-switch-pair path memo across hosts on the same switch."""
        topo = self.topo
        s_src = topo.switch_of(src_host)
        paths: dict[int, list[int]] = {}
        out: dict[int, SourceRoute] = {}
        for d in (topo.hosts() if dests is None else dests):
            if d == src_host:
                continue
            s_dst = topo.switch_of(d)
            try:
                path = paths.get(s_dst)
                if path is None:
                    path = self.switch_route(s_src, s_dst)
                    paths[s_dst] = path
                ports = [topo.port_toward(a, b)
                         for a, b in zip(path, path[1:])]
                ports.append(topo.port_toward(s_dst, d))
            except (RouteError, KeyError):
                if strict:
                    raise
                continue
            out[d] = SourceRoute(
                src=src_host, dst=d,
                ports=tuple(ports), switch_path=tuple(path),
            )
        return out

    def all_pairs(self) -> dict[tuple[int, int], SourceRoute]:
        """Minimal routes for every ordered host pair (batched)."""
        hosts = self.topo.hosts()
        out: dict[tuple[int, int], SourceRoute] = {}
        for s in hosts:
            routes = self.routes_from(s)
            for d in hosts:
                if s != d:
                    out[(s, d)] = routes[d]
        return out

    def itb_all_pairs(self) -> dict[tuple[int, int], ItbRoute]:
        """Batched all-pairs in the single-segment ITB wrapper."""
        return {pair: ItbRoute((r,))
                for pair, r in self.all_pairs().items()}
