"""Route datatypes.

A Myrinet **source route** is the sequence of output-port bytes the
packet header carries: one byte per switch traversed, consumed by each
switch as the header passes.  :class:`SourceRoute` couples the byte
sequence with the node-level hop list it resolves to (for the
simulator and for validity analysis).

An **ITB route** (:class:`ItbRoute`) is a chain of source-route
segments; the boundary between consecutive segments is an in-transit
host where the packet is ejected and re-injected (paper Figure 3b).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Sequence

__all__ = ["Direction", "ItbRoute", "RouteError", "SourceRoute"]


class RouteError(ValueError):
    """Raised when a requested route cannot be computed or is ill-formed."""


class Direction(Enum):
    """Traversal direction of a link under an up*/down* orientation."""

    UP = "up"
    DOWN = "down"


@dataclass(frozen=True)
class SourceRoute:
    """One deliverable source route from a source host to a dest host.

    Attributes
    ----------
    src, dst:
        Endpoint host node ids (for an ITB segment, ``dst`` may be an
        in-transit host rather than the final destination).
    ports:
        Output-port byte per traversed switch, in order.
    switch_path:
        Node ids of the switches traversed, in order.  Always
        ``len(switch_path) == len(ports)``.
    """

    src: int
    dst: int
    ports: tuple[int, ...]
    switch_path: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.ports) != len(self.switch_path):
            raise RouteError(
                f"ports({len(self.ports)}) and switch_path"
                f"({len(self.switch_path)}) length mismatch"
            )
        if len(self.ports) == 0:
            raise RouteError("a source route traverses at least one switch")

    @property
    def n_switches(self) -> int:
        """Number of switch traversals (= number of routing bytes)."""
        return len(self.ports)

    @property
    def n_links(self) -> int:
        """Physical cables crossed, including both NIC cables."""
        return len(self.ports) + 1

    def switch_hops(self) -> list[tuple[int, int]]:
        """Directed (switch, switch) pairs for switch-to-switch cables."""
        return list(zip(self.switch_path, self.switch_path[1:]))

    def __len__(self) -> int:
        return len(self.ports)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        path = "->".join(str(s) for s in self.switch_path)
        return f"<SourceRoute {self.src}->{self.dst} via [{path}]>"


@dataclass(frozen=True)
class ItbRoute:
    """A route made of one or more segments joined at in-transit hosts.

    ``segments[i].dst == itb_hosts[i]`` for every in-transit host, and
    ``segments[i + 1].src == itb_hosts[i]``.  A plain route (no ITBs)
    is represented as a single-segment :class:`ItbRoute`.
    """

    segments: tuple[SourceRoute, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise RouteError("ItbRoute needs at least one segment")
        for a, b in zip(self.segments, self.segments[1:]):
            if a.dst != b.src:
                raise RouteError(
                    f"segment chain broken: {a.dst} != {b.src}"
                )

    @property
    def src(self) -> int:
        return self.segments[0].src

    @property
    def dst(self) -> int:
        return self.segments[-1].dst

    @property
    def itb_hosts(self) -> tuple[int, ...]:
        """In-transit host ids, in traversal order."""
        return tuple(seg.dst for seg in self.segments[:-1])

    @property
    def n_itbs(self) -> int:
        return len(self.segments) - 1

    @property
    def n_switches(self) -> int:
        """Total switch traversals across all segments."""
        return sum(seg.n_switches for seg in self.segments)

    def switch_hops(self) -> list[tuple[int, int]]:
        """Directed switch-to-switch hops across all segments."""
        out: list[tuple[int, int]] = []
        for seg in self.segments:
            out.extend(seg.switch_hops())
        return out

    def __iter__(self) -> Iterator[SourceRoute]:
        return iter(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ItbRoute {self.src}->{self.dst} itbs={list(self.itb_hosts)}"
            f" switches={self.n_switches}>"
        )


def chain_segments(segments: Sequence[SourceRoute]) -> ItbRoute:
    """Build an :class:`ItbRoute` from already-computed segments."""
    return ItbRoute(tuple(segments))
