"""Shortest *valid* up*/down* source routes.

The router searches the switch fabric with BFS over states
``(switch, phase)`` where ``phase`` records whether a DOWN hop has
already been taken (after which UP hops are forbidden).  This yields
the shortest legal up*/down* path for every pair — the routing the
Myrinet mapper computes, and the baseline the paper compares against.

Route construction is batch-first: :meth:`UpDownRouter.switch_tree`
runs ONE full phase-aware BFS per source switch and records, for every
destination, the first state enqueued at that switch plus the BFS
predecessor pointers.  Because the full traversal enqueues states in
exactly the same order as the per-pair early-exit BFS (``seen`` and
``prev`` are write-once, and the early exit only truncates a shared
prefix), reconstructing a path from the tree is byte-identical to the
per-pair search — kept verbatim as :meth:`switch_route_pairwise`, the
oracle the benchmark gate compares against.  All-pairs construction
drops from O(H²·E) to O(V·E).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.routing.minimal import _switch_adjacency
from repro.routing.routes import Direction, ItbRoute, RouteError, SourceRoute
from repro.routing.spanning_tree import UpDownOrientation, build_orientation
from repro.topology.graph import Topology

__all__ = ["UpDownRouter"]

_PHASE_UP = 0   # still allowed to take UP hops
_PHASE_DOWN = 1  # a DOWN hop was taken; only DOWN hops remain legal

class _SourceTree:
    """Per-source BFS tree: predecessor pointers plus, for every
    reachable switch, the first ``(switch, phase)`` state the BFS
    enqueued there (= the goal state the per-pair search would stop at).
    """

    __slots__ = ("prev", "goal")

    def __init__(self, prev: dict, goal: dict) -> None:
        self.prev = prev
        self.goal = goal


class UpDownRouter:
    """Computes shortest valid up*/down* routes on a topology.

    Parameters
    ----------
    topo:
        The network.
    orientation:
        Optional precomputed :class:`UpDownOrientation`; computed with
        the default root policy when omitted.
    """

    name = "updown"

    def __init__(
        self, topo: Topology, orientation: Optional[UpDownOrientation] = None
    ) -> None:
        self.topo = topo
        self.orientation = orientation or build_orientation(topo)
        # src_switch -> _SourceTree; valid as long as the topology and
        # orientation are unchanged (routers are rebuilt on mutation).
        self._trees: dict[int, _SourceTree] = {}

    # ------------------------------------------------------------------
    # Batched per-source construction (the hot path)

    def switch_tree(self, src_switch: int) -> _SourceTree:
        """Full phase-aware BFS from ``src_switch``, memoized.

        One O(E) traversal serves every destination: the expansion order
        is identical to :meth:`switch_route_pairwise` (same neighbor
        sort, same seen-at-enqueue rule), so the first state enqueued at
        each switch is exactly the goal state the per-pair search would
        return, and the predecessor chain above it is the same prefix.
        """
        tree = self._trees.get(src_switch)
        if tree is not None:
            return tree
        topo = self.topo
        if not topo.is_switch(src_switch):
            raise RouteError("switch_tree source must be a switch")
        adj = _switch_adjacency(topo)
        table = self.orientation.pair_direction_table(topo)

        start = (src_switch, _PHASE_UP)
        prev: dict[tuple[int, int], tuple[int, int]] = {}
        seen = {start}
        goal: dict[int, tuple[int, int]] = {src_switch: start}
        q = deque([start])
        while q:
            state = q.popleft()
            u, phase = state
            steps = []
            for v in adj[u]:
                d = table[(u, v)]
                if phase == _PHASE_DOWN and d is Direction.UP:
                    continue
                nxt_phase = _PHASE_DOWN if d is Direction.DOWN else phase
                steps.append((d is Direction.DOWN, v, nxt_phase))
            # UP hops first, then by neighbor id: deterministic tie-break.
            for _down, v, nxt_phase in sorted(steps):
                nstate = (v, nxt_phase)
                if nstate in seen:
                    continue
                seen.add(nstate)
                prev[nstate] = state
                if v not in goal:
                    goal[v] = nstate
                q.append(nstate)

        tree = _SourceTree(prev, goal)
        self._trees[src_switch] = tree
        return tree

    def _path_from_tree(
        self, tree: _SourceTree, src_switch: int, dst_switch: int
    ) -> list[int]:
        if src_switch == dst_switch:
            return [src_switch]
        state = tree.goal.get(dst_switch)
        if state is None:
            raise RouteError(
                f"no valid up*/down* path {src_switch} -> {dst_switch}"
            )
        start = (src_switch, _PHASE_UP)
        path = [state[0]]
        while state != start:
            state = tree.prev[state]
            path.append(state[0])
        path.reverse()
        return path

    def routes_from(
        self,
        src_host: int,
        dests: Optional[list[int]] = None,
        strict: bool = True,
    ) -> dict[int, SourceRoute]:
        """Routes from one host to every destination host, off one tree.

        With ``strict=False`` unreachable destinations are silently
        skipped (the keep-stale semantics fault remap relies on).
        """
        topo = self.topo
        s_src = topo.switch_of(src_host)
        tree = self.switch_tree(s_src)
        paths: dict[int, list[int]] = {}
        out: dict[int, SourceRoute] = {}
        for d in (topo.hosts() if dests is None else dests):
            if d == src_host:
                continue
            try:
                s_dst = topo.switch_of(d)
                path = paths.get(s_dst)
                if path is None:
                    path = self._path_from_tree(tree, s_src, s_dst)
                    paths[s_dst] = path
                out[d] = self.route_via(src_host, d, path)
            except (RouteError, KeyError):
                if strict:
                    raise
                continue
        return out

    # ------------------------------------------------------------------

    def switch_route(self, src_switch: int, dst_switch: int) -> list[int]:
        """Shortest valid up*/down* switch path (inclusive endpoints).

        Served from a memoized per-source tree when one is already warm;
        otherwise a per-pair early-exit BFS (identical result).
        """
        tree = self._trees.get(src_switch)
        if tree is not None:
            return self._path_from_tree(tree, src_switch, dst_switch)
        return self.switch_route_pairwise(src_switch, dst_switch)

    def switch_route_pairwise(self, src_switch: int, dst_switch: int) -> list[int]:
        """Per-pair early-exit BFS — the preserved legacy oracle.

        Deterministic: among equal-length candidates, BFS explores
        neighbors in ascending id order, preferring UP hops first (the
        classical mapper bias toward climbing early).
        """
        topo, orient = self.topo, self.orientation
        if not topo.is_switch(src_switch) or not topo.is_switch(dst_switch):
            raise RouteError("switch_route endpoints must be switches")
        if src_switch == dst_switch:
            return [src_switch]

        start = (src_switch, _PHASE_UP)
        prev: dict[tuple[int, int], tuple[int, int]] = {}
        seen = {start}
        q = deque([start])
        goal: Optional[tuple[int, int]] = None
        while q and goal is None:
            state = q.popleft()
            u, phase = state
            steps = []
            for _port, v, link in topo.switch_neighbors(u):
                d = orient.direction(link.link_id, u, v)
                if phase == _PHASE_DOWN and d is Direction.UP:
                    continue
                nxt_phase = _PHASE_DOWN if d is Direction.DOWN else phase
                steps.append((d is Direction.DOWN, v, nxt_phase))
            # UP hops first, then by neighbor id: deterministic tie-break.
            for _down, v, nxt_phase in sorted(steps):
                nstate = (v, nxt_phase)
                if nstate in seen:
                    continue
                seen.add(nstate)
                prev[nstate] = state
                if v == dst_switch:
                    goal = nstate
                    break
                q.append(nstate)

        if goal is None:
            raise RouteError(
                f"no valid up*/down* path {src_switch} -> {dst_switch}"
            )
        path = [goal[0]]
        state = goal
        while state != start:
            state = prev[state]
            path.append(state[0])
        path.reverse()
        return path

    def route(self, src_host: int, dst_host: int) -> SourceRoute:
        """Source route between two hosts."""
        return self.route_via(src_host, dst_host, None)

    def route_via(
        self,
        src_host: int,
        dst_host: int,
        switch_path: Optional[list[int]],
    ) -> SourceRoute:
        """Build a :class:`SourceRoute` along an explicit or computed
        switch path, emitting one output-port byte per switch."""
        topo = self.topo
        if src_host == dst_host:
            raise RouteError("source and destination host are the same")
        s_src = topo.switch_of(src_host)
        s_dst = topo.switch_of(dst_host)
        if switch_path is None:
            switch_path = self.switch_route(s_src, s_dst)
        if switch_path[0] != s_src or switch_path[-1] != s_dst:
            raise RouteError("switch_path endpoints do not match hosts")

        ports: list[int] = []
        for a, b in zip(switch_path, switch_path[1:]):
            ports.append(topo.port_toward(a, b))
        # Last byte: exit port of the destination switch toward the host.
        ports.append(topo.port_toward(s_dst, dst_host))
        route = SourceRoute(
            src=src_host,
            dst=dst_host,
            ports=tuple(ports),
            switch_path=tuple(switch_path),
        )
        self._check_deliverable(route)
        return route

    def itb_route(self, src_host: int, dst_host: int) -> ItbRoute:
        """Uniform interface with :class:`ItbRouter`: a single segment."""
        return ItbRoute((self.route(src_host, dst_host),))

    # ------------------------------------------------------------------

    def _check_deliverable(self, route: SourceRoute) -> None:
        reached = self.topo.walk_route(route.src, list(route.ports))
        if reached != route.dst:
            raise RouteError(
                f"route bytes deliver to node {reached}, expected {route.dst}"
            )

    def is_valid(self, route: SourceRoute) -> bool:
        """Check the up*/down* rule over the route's switch path."""
        return self.orientation.is_valid_updown_path(
            self.topo, list(route.switch_path)
        )

    def all_pairs(self) -> dict[tuple[int, int], SourceRoute]:
        """Routes for every ordered host pair (the mapper's job).

        Batched: one BFS tree per source switch, shared across every
        destination.  Byte-identical to :meth:`all_pairs_pairwise`.
        """
        hosts = self.topo.hosts()
        out: dict[tuple[int, int], SourceRoute] = {}
        for s in hosts:
            routes = self.routes_from(s)
            for d in hosts:
                if s != d:
                    out[(s, d)] = routes[d]
        return out

    def all_pairs_pairwise(self) -> dict[tuple[int, int], SourceRoute]:
        """Legacy per-pair construction — the preserved benchmark oracle."""
        hosts = self.topo.hosts()
        out: dict[tuple[int, int], SourceRoute] = {}
        for s in hosts:
            for d in hosts:
                if s != d:
                    out[(s, d)] = self.route_pairwise(s, d)
        return out

    def route_pairwise(self, src_host: int, dst_host: int) -> SourceRoute:
        """Source route built with the per-pair BFS oracle."""
        topo = self.topo
        s_src = topo.switch_of(src_host)
        s_dst = topo.switch_of(dst_host)
        return self.route_via(
            src_host, dst_host, self.switch_route_pairwise(s_src, s_dst)
        )

    def itb_all_pairs(self) -> dict[tuple[int, int], ItbRoute]:
        """Batched all-pairs in the single-segment ITB wrapper."""
        return {pair: ItbRoute((r,))
                for pair, r in self.all_pairs().items()}
