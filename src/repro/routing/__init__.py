"""Routing for source-routed irregular networks.

Implements the routing machinery the paper builds on:

* BFS spanning tree + up/down link orientation
  (:mod:`repro.routing.spanning_tree`),
* up*/down* shortest *valid* source routes (:mod:`repro.routing.updown`),
* true minimal routes (:mod:`repro.routing.minimal`),
* **In-Transit Buffer routes** — minimal routes split into valid
  up*/down* segments at in-transit hosts (:mod:`repro.routing.itb`),
* pluggable, congestion-aware in-transit host selection — static /
  random / round-robin / least-loaded / EWMA policies over a
  duck-typed occupancy view (:mod:`repro.routing.selectors`),
* channel-dependency-graph deadlock checking (:mod:`repro.routing.cdg`),
* per-host route tables as stamped into NIC SRAM by the mapper
  (:mod:`repro.routing.tables`),
* a process-safe all-pairs route cache shared across experiment
  points (:mod:`repro.routing.cache`).
"""

from repro.routing.routes import (
    Direction,
    ItbRoute,
    RouteError,
    SourceRoute,
)
from repro.routing.spanning_tree import UpDownOrientation, build_orientation
from repro.routing.updown import UpDownRouter
from repro.routing.minimal import MinimalRouter, all_shortest_switch_paths
from repro.routing.itb import ItbRouter
from repro.routing.cdg import (
    channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
)
from repro.routing.tables import RouteTable, build_route_tables
from repro.routing.cache import (
    RouteCache,
    default_route_cache,
    topology_signature,
)
from repro.routing.selectors import (
    SELECTOR_NAMES,
    CongestionView,
    MapCongestionView,
    Selector,
    make_selector,
)

__all__ = [
    "CongestionView",
    "Direction",
    "ItbRoute",
    "ItbRouter",
    "MapCongestionView",
    "MinimalRouter",
    "RouteCache",
    "RouteError",
    "RouteTable",
    "SELECTOR_NAMES",
    "Selector",
    "SourceRoute",
    "UpDownOrientation",
    "UpDownRouter",
    "all_shortest_switch_paths",
    "build_orientation",
    "build_route_tables",
    "channel_dependency_graph",
    "default_route_cache",
    "find_dependency_cycle",
    "is_deadlock_free",
    "make_selector",
    "topology_signature",
]
