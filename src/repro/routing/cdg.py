"""Channel dependency graph (CDG) deadlock analysis.

A *channel* is a directed use of a physical cable.  A routing function
is deadlock-free (for wormhole switching without virtual channels) iff
its channel dependency graph is acyclic [Dally & Seitz].  The ITB
mechanism's key property is that **ejection breaks dependencies**: a
packet ejected at an in-transit host releases its channels, so no
dependency edge is added between the last channel of one segment and
the first channel of the next.

This module builds the CDG for a set of routes (plain or ITB) and
checks acyclicity — used by tests to prove both that up*/down* and ITB
routings are deadlock-free and that *unsplit* minimal routing is not.

Virtual-channel lanes
---------------------
With ``n_lanes > 1`` the analysis operates on *lane* nodes
``(link_id, direction, lane)`` — the resource a worm actually blocks
on in a multi-lane fabric (:mod:`repro.network.fabric`).  The lane a
segment uses at each hop depends on the fabric's lane policy:

* ``"escape"`` assigns lanes by the dateline walk shared with
  :class:`repro.network.lanes.EscapeLanePolicy`, so the laned CDG here
  verifies exactly the assignment the simulator will use.  The walk
  is deterministic per segment, so acyclicity of this graph *is* the
  deadlock-freedom proof (provided no route needs more lanes than
  configured — check :func:`lanes_required`).
* ``"fixed"`` and ``"roundrobin"`` pick one lane per channel per
  launch.  Any such static-per-flight assignment is deadlock-free iff
  the *collapsed* channel-level CDG is acyclic: a cycle among lane
  nodes projects onto a closed walk among channel nodes (consecutive
  route channels are always distinct links), which an acyclic channel
  graph cannot contain.  These policies therefore verify on the
  ``n_lanes == 1`` graph.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import networkx as nx

from repro.routing.routes import ItbRoute, SourceRoute
from repro.topology.graph import Topology

__all__ = [
    "channel_dependency_graph",
    "find_dependency_cycle",
    "is_deadlock_free",
    "lanes_required",
]

Channel = tuple[int, int]  # (link_id, direction): direction 0 = a->b end
RouteLike = Union[SourceRoute, ItbRoute]


def _segment_channels(topo: Topology, seg: SourceRoute) -> list[Channel]:
    """Directed channels used by one source-route segment, in order.

    Includes the injection (host -> first switch) and ejection/delivery
    (last switch -> host) channels, since NIC links are real channels
    that the paper's Stop&Go flow control can block on.
    """
    channels: list[Channel] = []
    host_link = topo.host_link(seg.src)
    channels.append((host_link.link_id, host_link.direction_from(seg.src, 0)))
    current = seg.switch_path[0]
    for port in seg.ports:
        link = topo.link_at(current, port)
        if link is None:  # defensive; routes are validated at build time
            raise ValueError(f"route uses uncabled port {port} at {current}")
        channels.append((link.link_id, link.direction_from(current, port)))
        current, _far_port = link.far_end(current, port)
    return channels


def _segment_steps(topo: Topology,
                   seg: SourceRoute) -> list[tuple[int, int, bool]]:
    """Per-channel ``(from_node, to_node, is_switch_to_switch)`` walk,
    aligned with :func:`_segment_channels` — the input the escape-lane
    dateline walk needs (kept identical to the fabric's plan endpoints
    so static analysis and runtime assign the same lanes)."""
    steps: list[tuple[int, int, bool]] = [
        (seg.src, seg.switch_path[0], False)
    ]
    current = seg.switch_path[0]
    for port in seg.ports:
        link = topo.link_at(current, port)
        far, _far_port = link.far_end(current, port)
        steps.append((current, far,
                      topo.is_switch(current) and topo.is_switch(far)))
        current = far
    return steps


def iter_segments(route: RouteLike) -> Iterable[SourceRoute]:
    if isinstance(route, ItbRoute):
        return route.segments
    return (route,)


def lanes_required(topo: Topology, routes: Iterable[RouteLike]) -> int:
    """Lanes the escape policy needs so no segment's walk is clamped.

    1 means every segment is descent-free; the ``vc-study`` experiment
    sizes its VC fabric with this so the static guarantee holds.
    """
    # Imported here (not at module top) to break the import cycle
    # routing -> network -> worm -> mcp -> routing.
    from repro.network.lanes import lanes_needed
    needed = 1
    for route in routes:
        for seg in iter_segments(route):
            needed = max(needed, lanes_needed(_segment_steps(topo, seg)))
    return needed


def channel_dependency_graph(
    topo: Topology, routes: Iterable[RouteLike],
    n_lanes: int = 1, lane_policy: str = "fixed",
) -> "nx.DiGraph":
    """Build the CDG: nodes are channels (lanes when ``n_lanes > 1``
    under the escape policy), edges are held-while-requesting pairs
    within a single segment.

    Segment boundaries (in-transit hosts) contribute **no** edge — the
    formal statement of the ITB mechanism's deadlock-freedom argument.
    Fixed and round-robin lane policies verify on the collapsed
    channel-level graph (see the module docstring for why that is
    sound for any per-launch static assignment).
    """
    laned = n_lanes > 1 and lane_policy == "escape"
    if laned:
        from repro.network.lanes import escape_lane_walk
    g = nx.DiGraph()
    for route in routes:
        for seg in iter_segments(route):
            chans: list = _segment_channels(topo, seg)
            if laned:
                lanes = escape_lane_walk(_segment_steps(topo, seg), n_lanes)
                chans = [(link, direction, lane) for (link, direction), lane
                         in zip(chans, lanes)]
            for ch in chans:
                g.add_node(ch)
            for a, b in zip(chans, chans[1:]):
                g.add_edge(a, b)
    return g


def find_dependency_cycle(
    topo: Topology, routes: Iterable[RouteLike],
    n_lanes: int = 1, lane_policy: str = "fixed",
) -> Optional[list[Channel]]:
    """Return one dependency cycle, or None when the CDG is acyclic."""
    g = channel_dependency_graph(topo, routes, n_lanes=n_lanes,
                                 lane_policy=lane_policy)
    try:
        cycle_edges = nx.find_cycle(g, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def is_deadlock_free(
    topo: Topology, routes: Iterable[RouteLike],
    n_lanes: int = 1, lane_policy: str = "fixed",
) -> bool:
    """True iff the (lane-aware) channel dependency graph is acyclic.

    For the escape policy the answer is only a guarantee when
    ``lanes_required(topo, routes) <= n_lanes`` — a clamped walk
    leaves the dateline scheme, and this function checks the clamped
    assignment that would actually run.
    """
    return find_dependency_cycle(topo, routes, n_lanes=n_lanes,
                                 lane_policy=lane_policy) is None
