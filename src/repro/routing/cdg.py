"""Channel dependency graph (CDG) deadlock analysis.

A *channel* is a directed use of a physical cable.  A routing function
is deadlock-free (for wormhole switching without virtual channels) iff
its channel dependency graph is acyclic [Dally & Seitz].  The ITB
mechanism's key property is that **ejection breaks dependencies**: a
packet ejected at an in-transit host releases its channels, so no
dependency edge is added between the last channel of one segment and
the first channel of the next.

This module builds the CDG for a set of routes (plain or ITB) and
checks acyclicity — used by tests to prove both that up*/down* and ITB
routings are deadlock-free and that *unsplit* minimal routing is not.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import networkx as nx

from repro.routing.routes import ItbRoute, SourceRoute
from repro.topology.graph import Topology

__all__ = [
    "channel_dependency_graph",
    "find_dependency_cycle",
    "is_deadlock_free",
]

Channel = tuple[int, int]  # (link_id, direction): direction 0 = a->b end
RouteLike = Union[SourceRoute, ItbRoute]


def _segment_channels(topo: Topology, seg: SourceRoute) -> list[Channel]:
    """Directed channels used by one source-route segment, in order.

    Includes the injection (host -> first switch) and ejection/delivery
    (last switch -> host) channels, since NIC links are real channels
    that the paper's Stop&Go flow control can block on.
    """
    channels: list[Channel] = []
    host_link = topo.host_link(seg.src)
    channels.append((host_link.link_id, host_link.direction_from(seg.src, 0)))
    current = seg.switch_path[0]
    for port in seg.ports:
        link = topo.link_at(current, port)
        if link is None:  # defensive; routes are validated at build time
            raise ValueError(f"route uses uncabled port {port} at {current}")
        channels.append((link.link_id, link.direction_from(current, port)))
        current, _far_port = link.far_end(current, port)
    return channels


def iter_segments(route: RouteLike) -> Iterable[SourceRoute]:
    if isinstance(route, ItbRoute):
        return route.segments
    return (route,)


def channel_dependency_graph(
    topo: Topology, routes: Iterable[RouteLike]
) -> "nx.DiGraph":
    """Build the CDG: nodes are channels, edges are held-while-requesting
    pairs within a single segment.

    Segment boundaries (in-transit hosts) contribute **no** edge — the
    formal statement of the ITB mechanism's deadlock-freedom argument.
    """
    g = nx.DiGraph()
    for route in routes:
        for seg in iter_segments(route):
            chans = _segment_channels(topo, seg)
            for ch in chans:
                g.add_node(ch)
            for a, b in zip(chans, chans[1:]):
                g.add_edge(a, b)
    return g


def find_dependency_cycle(
    topo: Topology, routes: Iterable[RouteLike]
) -> Optional[list[Channel]]:
    """Return one dependency cycle, or None when the CDG is acyclic."""
    g = channel_dependency_graph(topo, routes)
    try:
        cycle_edges = nx.find_cycle(g, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def is_deadlock_free(topo: Topology, routes: Iterable[RouteLike]) -> bool:
    """True iff the channel dependency graph of ``routes`` is acyclic."""
    return find_dependency_cycle(topo, routes) is None
