"""LANai network-interface-card model.

One :class:`Nic` per host: NIC SRAM packet buffers, the (single) host
DMA engine shared by the send and receive paths, the wire-side send
DMA, and the firmware (MCP) that drives them all.
"""

from repro.nic.lanai import Nic, NicStats

__all__ = ["Nic", "NicStats"]
