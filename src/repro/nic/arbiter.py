"""LANai local-memory arbitration (paper Figure 2 / Section 3).

The LANai's SRAM serves at most **two memory accesses per clock
cycle**, granted by fixed priority: host I/O bus first, then the
packet receive DMA, then the packet send DMA, and the on-chip RISC
processor last.  The processor itself wants up to two accesses per
cycle (instruction + data), so firmware slows down while DMA engines
stream — a second-order effect the paper's calibrated cycle counts
absorb, and which this module makes explicit so its magnitude can be
ablated (see ``benchmarks/test_bench_ablation_arbiter.py``).

Model
-----
Each requester has a demand in accesses/cycle:

* host I/O bus (host DMA active):   1.0
* packet receive DMA active:        1.0
* packet send DMA active:           1.0
* processor:                        2.0 (always, while executing)

Grants fill the 2.0-accesses/cycle budget in priority order; the
processor receives whatever remains.  Firmware code that would take
``n`` cycles uninterfered takes ``n * (2.0 / granted)`` cycles under
contention.  With all three DMAs active the processor is fully
starved; we clamp its grant to a floor (it still wins cycles when a
DMA pauses between bus bursts) — the floor is the one free parameter,
set so the modeled slowdown stays within the envelope Myricom's LANai
documentation describes (roughly 2-4x under full streaming).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryArbiter"]

#: SRAM bandwidth in accesses per clock cycle.
_BUDGET = 2.0
#: Demand of each DMA engine while active (accesses/cycle).
_DMA_DEMAND = 1.0
#: Processor demand (instruction + data fetch).
_CPU_DEMAND = 2.0
#: Fraction of cycles the processor is guaranteed even under full DMA
#: load (bus turnaround / burst gaps).
_CPU_FLOOR = 0.25


@dataclass
class MemoryArbiter:
    """Tracks active engines and scales firmware instruction time.

    One per NIC.  Engines register activity with ``engine_start`` /
    ``engine_stop``; firmware asks :meth:`cpu_scale` for the current
    instruction-time multiplier.

    The model is quasi-static: the multiplier reflects the engines
    active *at the moment the firmware code runs*, which is accurate
    for the sub-microsecond code bursts the MCP executes.
    """

    host_dma_active: int = 0
    recv_dma_active: int = 0
    send_dma_active: int = 0
    enabled: bool = True

    # -- engine bookkeeping ------------------------------------------------

    def engine_start(self, engine: str) -> None:
        """An engine began a transfer burst (host/recv/send DMA)."""
        self._bump(engine, +1)

    def engine_stop(self, engine: str) -> None:
        """An engine finished its burst."""
        self._bump(engine, -1)

    def _bump(self, engine: str, delta: int) -> None:
        attr = f"{engine}_active"
        if not hasattr(self, attr):
            raise ValueError(f"unknown engine {engine!r}")
        value = getattr(self, attr) + delta
        if value < 0:
            raise ValueError(f"engine {engine!r} stopped more than started")
        setattr(self, attr, value)

    # -- the arbitration model ----------------------------------------------

    def granted_to_cpu(self) -> float:
        """Accesses/cycle left for the processor right now."""
        remaining = _BUDGET
        for active in (self.host_dma_active, self.recv_dma_active,
                       self.send_dma_active):
            if active > 0:
                remaining -= _DMA_DEMAND
        remaining = max(remaining, 0.0)
        # Burst gaps guarantee the processor a floor share.
        floor = _CPU_DEMAND * _CPU_FLOOR
        return max(remaining, floor)

    def cpu_scale(self) -> float:
        """Multiplier for firmware instruction time (>= 1.0)."""
        if not self.enabled:
            return 1.0
        granted = min(self.granted_to_cpu(), _CPU_DEMAND)
        return _CPU_DEMAND / granted

    def scaled(self, ns: float) -> float:
        """Firmware time ``ns`` adjusted for current contention."""
        return ns * self.cpu_scale()
