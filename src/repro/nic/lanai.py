"""The LANai NIC: engines, buffers, and per-NIC statistics.

The LANai chip (paper Figure 2) contains a network interface fed by
two packet DMAs (send and receive), one **host DMA** that moves data
across the PCI bus, and a 32-bit RISC processor running the MCP.  The
host DMA is a single engine — send-side (SDMA) and receive-side (RDMA)
transfers contend for it, which this model preserves by giving the NIC
one :class:`~repro.sim.resources.Resource` for both directions.

The firmware object attached to a NIC implements all control flow; the
NIC itself only owns the physical engines, the receive buffers, and
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.core.timings import Timings
from repro.mcp.buffers import BufferPool, FixedBuffers
from repro.network.fabric import Fabric
from repro.nic.arbiter import MemoryArbiter
from repro.routing.tables import RouteTable
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.mcp.firmware import Firmware

__all__ = ["Nic", "NicStats"]


@dataclass
class NicStats:
    """Per-NIC counters accumulated across a run."""

    packets_sent: int = 0
    packets_received: int = 0
    packets_forwarded: int = 0     # in-transit packets re-injected
    packets_dropped_unknown: int = 0  # unknown type (orig fw sees ITB tag)
    packets_flushed: int = 0       # buffer-pool overflow flushes
    bytes_sent: int = 0
    bytes_received: int = 0
    itb_immediate: int = 0         # re-injections started by Recv machine
    itb_pending: int = 0           # re-injections deferred (send busy)
    recv_blocked_ns: float = 0.0   # wire time stalled waiting for a buffer
    packets_lost_in_flight: int = 0  # worms cut by a dynamic link fault


class Nic:
    """One host's network interface card.

    Parameters
    ----------
    sim, fabric, timings:
        Simulation context (fabric provides the host's channels).
    host:
        Host node id in the topology.
    recv_buffers:
        A :class:`FixedBuffers` (stock GM: two slots) or
        :class:`BufferPool` (the paper's proposed extension).
    trace:
        Optional structured trace.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        timings: Timings,
        host: int,
        recv_buffers: Optional[Union[FixedBuffers, BufferPool]] = None,
        trace: Optional[Trace] = None,
        model_memory_contention: bool = False,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.timings = timings
        self.host = host
        self.name = fabric.topo.node_name(host)
        self.recv_buffers = recv_buffers or FixedBuffers(
            n_slots=timings.mcp_buffers, name=f"recvq[{self.name}]"
        )
        self.trace = trace
        self.stats = NicStats()
        # SRAM arbitration model (paper Figure 2).  Disabled by
        # default: the calibrated cycle counts in Timings already
        # absorb average contention; enabling it is an ablation.
        self.arbiter = MemoryArbiter(enabled=model_memory_contention)
        # The single host-DMA engine (shared by SDMA and RDMA paths).
        self.host_dma = Resource(sim, capacity=1, name=f"hostdma[{self.name}]")
        # Route table stamped by the mapper.
        self.route_table: Optional[RouteTable] = None
        # Firmware, attached after construction (it needs the NIC).
        self.firmware: Optional["Firmware"] = None
        # Upward delivery: set by the GM host layer.
        self.deliver_up: Optional[Callable] = None
        # Telemetry registry, attached by repro.obs.instrument_network;
        # when present every emit() also publishes a labeled counter.
        self.metrics = None

    # ------------------------------------------------------------------

    def attach_firmware(self, firmware: "Firmware") -> None:
        """Bind the MCP that drives this NIC (once, at build time)."""
        self.firmware = firmware

    def emit(self, kind: str, **detail) -> None:
        """Emit a structured trace record tagged with this NIC.

        When a metrics registry is attached, the emission is also
        counted as ``nic_mcp_events_total{component=..., kind=...}``
        so firmware events are queryable without trace post-processing.
        """
        if self.trace is not None:
            self.trace.emit(self.sim.now, f"nic[{self.name}]", kind, **detail)
        if self.metrics is not None:
            self.metrics.counter(
                "nic_mcp_events_total", component=f"nic[{self.name}]",
                help="firmware emit() events by kind",
                labels={"kind": kind},
            ).inc()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fw = self.firmware.name if self.firmware else "none"
        return f"<Nic {self.name} fw={fw}>"
