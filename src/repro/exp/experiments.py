"""Built-in experiment definitions.

Each class below maps one of the repo's experiments onto the unified
pipeline: it declares the independent measurement points of a spec,
delegates each point to the picklable ``measure_*`` helper in its
harness module, and reassembles the ordered results into the same
result object the harness has always returned.  The CLI hooks
reproduce the legacy subcommand options and report tables, so
``repro run fig7`` prints exactly what ``repro fig7`` always has.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.exp.registry import CliOption, Experiment, register_experiment
from repro.exp.spec import ExperimentSpec
from repro.topology.graph import Topology

__all__ = [
    "AblationBufpoolExperiment",
    "AblationLoadExperiment",
    "AblationTimingExperiment",
    "AdaptiveItbExperiment",
    "AppsExperiment",
    "FaultCampaignExperiment",
    "Fig7Experiment",
    "Fig8Experiment",
    "PartitionStormExperiment",
    "QUICK_SIZES",
    "RootStudyExperiment",
    "ScaleStudyExperiment",
    "ThroughputExperiment",
    "VcStudyExperiment",
]

#: The abbreviated ladder the CLI uses without ``--full``.
QUICK_SIZES: tuple[int, ...] = (16, 128, 1024, 4096)


def _fig6_topology() -> Topology:
    from repro.topology.generators import fig6_testbed

    topo, _roles = fig6_testbed()
    return topo


def _random_topology(spec: ExperimentSpec) -> Topology:
    from repro.topology.generators import random_irregular

    return random_irregular(
        spec.n_switches, seed=spec.topo_seed,
        hosts_per_switch=spec.hosts_per_switch,
    )


def _sizes_from_args(args: Any) -> tuple[int, ...]:
    from repro.harness.fig7 import DEFAULT_SIZES

    return DEFAULT_SIZES if args.full else QUICK_SIZES


_LADDER_OPTIONS = (
    CliOption.make("--full", action="store_true",
                   help="full gm_allsize size ladder"),
    CliOption.make("--iterations", type=int, default=20),
    CliOption.make("--plot", action="store_true",
                   help="ASCII chart of the series"),
)


@register_experiment("fig7", "Figure 7 code overhead")
class Fig7Experiment(Experiment):
    """Half-RTT ladder, original vs ITB-modified MCP (paper Fig. 7)."""

    cli_options = _LADDER_OPTIONS

    def default_spec(self) -> ExperimentSpec:
        from repro.harness.fig7 import DEFAULT_SIZES

        return ExperimentSpec(experiment="fig7", sizes=DEFAULT_SIZES)

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{"size": size} for size in spec.sizes]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.fig7 import measure_fig7_point

        return measure_fig7_point(point["size"], spec.iterations,
                                  spec.timings, spec.seed, build=ctx.build)

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.fig7 import Fig7Result

        return Fig7Result(rows=list(results), iterations=spec.iterations)

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        yield (_fig6_topology(), "updown", None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            sizes=_sizes_from_args(args), iterations=args.iterations,
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.ascii_plot import line_plot
        from repro.harness.report import format_table

        out = [format_table(
            ["size (B)", "orig (us)", "modified (us)", "overhead (ns)",
             "rel (%)"],
            [(row.size, row.original_ns / 1000, row.modified_ns / 1000,
              row.overhead_ns, row.relative_pct) for row in result.rows],
            title="Figure 7 — overhead of the new GM/MCP code",
        )]
        if getattr(args, "plot", False):
            out.append("")
            out.append(line_plot(
                [row.size for row in result.rows],
                {"original": [row.original_ns / 1000 for row in result.rows],
                 "modified": [row.modified_ns / 1000 for row in result.rows]},
                title="half-RTT (us) vs message size (B)",
                logx=True, xlabel="size (log)",
            ))
        out.append(f"\navg overhead {result.mean_overhead_ns:.0f} ns"
                   f" (paper ~125 ns), max {result.max_overhead_ns:.0f} ns"
                   " (paper <= 300 ns)")
        return "\n".join(out)


@register_experiment("fig8", "Figure 8 per-ITB overhead")
class Fig8Experiment(Experiment):
    """Half-RTT ladder over the 5-switch paths, UD vs UD-ITB (Fig. 8)."""

    cli_options = _LADDER_OPTIONS

    def default_spec(self) -> ExperimentSpec:
        from repro.harness.fig7 import DEFAULT_SIZES

        return ExperimentSpec(experiment="fig8", sizes=DEFAULT_SIZES)

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{"size": size} for size in spec.sizes]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.fig8 import measure_fig8_point

        return measure_fig8_point(point["size"], spec.iterations,
                                  spec.timings, spec.seed, build=ctx.build)

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.fig8 import Fig8Result

        return Fig8Result(rows=list(results), iterations=spec.iterations)

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        yield (_fig6_topology(), "updown", None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            sizes=_sizes_from_args(args), iterations=args.iterations,
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.ascii_plot import line_plot
        from repro.harness.report import format_table

        out = [format_table(
            ["size (B)", "UD (us)", "UD-ITB (us)", "overhead (us)",
             "rel (%)"],
            [(row.size, row.ud_ns / 1000, row.ud_itb_ns / 1000,
              row.overhead_ns / 1000, row.relative_pct)
             for row in result.rows],
            title="Figure 8 — per-ITB overhead",
        )]
        if getattr(args, "plot", False):
            out.append("")
            out.append(line_plot(
                [row.size for row in result.rows],
                {"UD": [row.ud_ns / 1000 for row in result.rows],
                 "UD-ITB": [row.ud_itb_ns / 1000 for row in result.rows]},
                title="half-RTT (us) vs message size (B)",
                logx=True, xlabel="size (log)",
            ))
        out.append(f"\nper-ITB overhead {result.mean_overhead_ns / 1000:.2f}"
                   " us (paper ~1.3 us)")
        return "\n".join(out)


@register_experiment("throughput", "EXP-M1 load sweep")
class ThroughputExperiment(Experiment):
    """Accepted throughput / latency vs offered load, UD vs ITB routing."""

    cli_options = (
        CliOption.make("--switches", type=int, default=16),
        CliOption.make("--packet-size", type=int, default=512),
        CliOption.make("--rates", type=float, nargs="+",
                       default=[0.02, 0.06, 0.12]),
        CliOption.make("--duration", type=float, default=150.0,
                       help="measurement window (us)"),
        CliOption.make("--hosts-per-switch", type=int, default=2),
        CliOption.make("--seed", type=int, default=5),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="throughput",
            rates=(0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10),
        )

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{"routing": routing, "rate": rate}
                for routing in spec.routings for rate in spec.rates]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.throughput import (ThroughputPoint,
                                              measure_load_point)

        stats = measure_load_point(
            routing=point["routing"],
            rate=point["rate"],
            n_switches=spec.n_switches,
            packet_size=spec.packet_size,
            duration_ns=spec.duration_ns,
            warmup_ns=spec.warmup_ns,
            topo_seed=spec.topo_seed,
            traffic_seed=spec.traffic_seed,
            hosts_per_switch=spec.hosts_per_switch,
            pattern_factory=spec.params.get("pattern_factory"),
            timings=spec.timings,
            build=ctx.build,
        )
        return ThroughputPoint(
            routing=point["routing"],
            offered_bytes_per_ns_per_host=point["rate"],
            stats=stats,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.throughput import ThroughputResult

        return ThroughputResult(
            n_switches=spec.n_switches, packet_size=spec.packet_size,
            seed=spec.topo_seed, points=list(results),
        )

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        topo = _random_topology(spec)
        for routing in spec.routings:
            yield (topo, routing, None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            n_switches=args.switches,
            packet_size=args.packet_size,
            rates=tuple(args.rates),
            duration_ns=args.duration * 1000.0,
            warmup_ns=args.duration * 200.0,
            hosts_per_switch=args.hosts_per_switch,
            topo_seed=args.seed,
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        rows = []
        for routing in ("updown", "itb"):
            for p in result.series(routing):
                rows.append((routing, p.offered_bytes_per_ns_per_host,
                             p.accepted, p.mean_latency_ns / 1000))
        table = format_table(
            ["routing", "offered", "accepted", "latency (us)"],
            rows,
            title=f"EXP-M1 — {spec.n_switches} switches",
            float_fmt="{:.4f}",
        )
        return (f"{table}\n\npeak ratio ITB/UD:"
                f" {result.throughput_ratio:.2f}x")


@register_experiment("vc-study", "EXP-VC ITB vs virtual channels")
class VcStudyExperiment(Experiment):
    """ITB vs VC lanes vs both, on latency/throughput/deadlock-freedom.

    The head-to-head the paper motivates but never runs: its Section 1
    rejects virtual channels as requiring new switch hardware, so ITBs
    were evaluated only against up*/down*.  Arms and the modelling
    caveats are documented in :mod:`repro.harness.vcstudy`; the
    ``minimal`` arm is statically deadlocked on the study topology and
    therefore contributes a CDG verdict but no traffic run.
    """

    cli_options = (
        CliOption.make("--switches", type=int, default=8),
        CliOption.make("--packet-size", type=int, default=512),
        CliOption.make("--rates", type=float, nargs="+",
                       default=[0.04, 0.08, 0.12]),
        CliOption.make("--duration", type=float, default=150.0,
                       help="measurement window (us)"),
        CliOption.make("--hosts-per-switch", type=int, default=2),
        CliOption.make("--seed", type=int, default=5,
                       help="topology seed (default deadlocks minimal"
                            " routing at one lane)"),
        CliOption.make("--combined-lanes", type=int, default=2,
                       help="lanes of the itb+vc arm"),
        CliOption.make("--quick", action="store_true",
                       help="single rate, short window (CI smoke)"),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="vc-study", n_switches=8, topo_seed=5,
            hosts_per_switch=2, packet_size=512,
            rates=(0.04, 0.08, 0.12),
            duration_ns=150_000.0, warmup_ns=30_000.0,
            params={"combined_lanes": 2},
        )

    def _arms(self, spec: ExperimentSpec):
        from repro.harness.vcstudy import study_arms, study_topology

        topo = study_topology(spec.n_switches, spec.topo_seed,
                              spec.hosts_per_switch)
        return topo, study_arms(
            topo,
            combined_lanes=int(spec.params.get("combined_lanes", 2)),
        )

    def points(self, spec: ExperimentSpec) -> list[dict]:
        _topo, arms = self._arms(spec)
        return [
            {"mechanism": arm.mechanism, "routing": arm.routing,
             "lanes": arm.lanes, "lane_policy": arm.lane_policy,
             "rate": rate}
            for arm in arms if arm.dynamic
            for rate in spec.rates
        ]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.vcstudy import measure_vc_point

        sample = measure_vc_point(
            routing=point["routing"],
            lanes=point["lanes"],
            lane_policy=point["lane_policy"],
            rate=point["rate"],
            n_switches=spec.n_switches,
            packet_size=spec.packet_size,
            duration_ns=spec.duration_ns,
            warmup_ns=spec.warmup_ns,
            topo_seed=spec.topo_seed,
            traffic_seed=spec.traffic_seed,
            hosts_per_switch=spec.hosts_per_switch,
            timings=spec.timings,
            build=ctx.build,
        )
        return (point["mechanism"], sample)

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.vcstudy import (VcMechanismResult, VcStudyResult,
                                           analyze_arm)

        topo, arms = self._arms(spec)
        rows = []
        for arm in arms:
            free, required = analyze_arm(topo, arm)
            rows.append(VcMechanismResult(
                mechanism=arm.mechanism, routing=arm.routing,
                lanes=arm.lanes, lane_policy=arm.lane_policy,
                deadlock_free=free, lanes_required=required,
                points=[s for mech, s in results
                        if mech == arm.mechanism],
            ))
        return VcStudyResult(
            n_switches=spec.n_switches,
            hosts_per_switch=spec.hosts_per_switch,
            packet_size=spec.packet_size,
            topo_seed=spec.topo_seed,
            rows=rows,
        )

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        topo, arms = self._arms(spec)
        for routing in sorted({arm.routing for arm in arms}):
            yield (topo, routing, None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        spec = self.default_spec().replace(
            n_switches=args.switches,
            packet_size=args.packet_size,
            rates=tuple(args.rates),
            duration_ns=args.duration * 1000.0,
            warmup_ns=args.duration * 200.0,
            hosts_per_switch=args.hosts_per_switch,
            topo_seed=args.seed,
            params={"combined_lanes": args.combined_lanes},
        )
        if args.quick:
            # One saturating rate, short window: every arm is past its
            # knee, so the ITB+VC ordering survives the abbreviation.
            spec = spec.replace(rates=(0.12,), duration_ns=60_000.0,
                                warmup_ns=12_000.0)
        return spec

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        rows = []
        for r in result.rows:
            static_only = not r.points
            rows.append((
                r.mechanism, r.routing, r.lanes, r.lane_policy,
                "yes" if r.deadlock_free else "NO",
                "-" if static_only else f"{r.peak_accepted:.4f}",
                "-" if static_only
                else f"{r.best_mean_latency_ns / 1000:.2f}",
            ))
        table = format_table(
            ["mechanism", "routing", "lanes", "policy", "deadlock-free",
             "peak accepted", "latency (us)"],
            rows,
            title=f"EXP-VC — ITB vs virtual channels,"
                  f" {spec.n_switches} switches",
        )
        verdict = ("ITB+VC out-peaks both ITB alone and VC alone"
                   if result.combined_wins_throughput else
                   "ITB+VC does not dominate on this configuration")
        return (f"{table}\n\n{verdict}; VC lanes sized by escape-walk"
                f" demand ({result.row('vc').lanes} lanes), VC numbers"
                " are a full-rate-per-lane upper bound")


@register_experiment("apps", "EXP-M2 application kernels")
class AppsExperiment(Experiment):
    """Closed-loop kernel completion time, UD vs ITB routing."""

    cli_options = (
        CliOption.make("--switches", type=int, default=16),
        CliOption.make("--iterations", type=int, default=3),
        CliOption.make("--packet-size", type=int, default=1024),
        CliOption.make("--hosts-per-switch", type=int, default=2),
        CliOption.make("--seed", type=int, default=11),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="apps",
            kernels=("all-to-all", "ring", "random-pairs"),
            iterations=3,
            message_size=1024,
            hosts_per_switch=2,
            seed=13,
        )

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{"kernel": kernel, "routing": routing}
                for kernel in spec.kernels
                for routing in ("updown", "itb")]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.apps import measure_app_point

        return measure_app_point(
            kernel=point["kernel"],
            routing=point["routing"],
            n_switches=spec.n_switches,
            iterations=spec.iterations,
            message_size=spec.message_size,
            hosts_per_switch=spec.hosts_per_switch,
            topo_seed=spec.topo_seed,
            seed=spec.seed,
            build=ctx.build,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.apps import AppsResult

        return AppsResult(results=list(results))

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        topo = _random_topology(spec)
        yield (topo, "updown", None)
        yield (topo, "itb", None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            n_switches=args.switches,
            iterations=args.iterations,
            message_size=args.packet_size,
            hosts_per_switch=args.hosts_per_switch,
            topo_seed=args.seed,
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        return format_table(
            ["kernel", "UD (us)", "ITB (us)", "speedup"],
            [(k, result.get(k, "updown").completion_us,
              result.get(k, "itb").completion_us,
              result.speedup(k)) for k in result.kernels()],
            title="EXP-M2 — application kernels,"
                  f" {spec.n_switches} switches",
        )


@register_experiment("root-study", "spanning-tree root sensitivity")
class RootStudyExperiment(Experiment):
    """Route quality under optimal vs anti-optimal BFS roots (EXP-A5)."""

    cli_options = (
        CliOption.make("--switches", type=int, default=16),
        CliOption.make("--seed", type=int, default=33),
        CliOption.make("--hosts-per-switch", type=int, default=1),
        CliOption.make("--switch-links", type=int, default=3),
    )

    DEFAULT_ROOTS = (("optimal", "choose"), ("anti-optimal", "worst"))

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="root-study", topo_seed=33,
            params={"roots": [list(r) for r in self.DEFAULT_ROOTS]},
        )

    def _roots(self, spec: ExperimentSpec) -> list[tuple[str, str]]:
        roots = spec.params.get("roots") or [list(r)
                                             for r in self.DEFAULT_ROOTS]
        return [(label, which) for label, which in roots]

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{"label": label, "which": which}
                for label, which in self._roots(spec)]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.root_study import measure_root_point

        return measure_root_point(
            label=point["label"],
            which=point["which"],
            n_switches=spec.n_switches,
            topo_seed=spec.topo_seed,
            hosts_per_switch=spec.hosts_per_switch,
            switch_links=spec.switch_links,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.root_study import RootStudyResult

        return RootStudyResult(rows=list(results))

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            n_switches=args.switches,
            topo_seed=args.seed,
            hosts_per_switch=args.hosts_per_switch,
            switch_links=args.switch_links,
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        return format_table(
            ["root", "avg UD hops", "avg ITB hops", "avg minimal",
             "UD stretch", "ITB pairs"],
            [(f"{row.root_label} (sw {row.root})", row.avg_updown_hops,
              row.avg_itb_hops, row.avg_minimal_hops, row.updown_stretch,
              f"{row.pairs_with_itbs}/{row.n_pairs}")
             for row in result.rows],
            title=f"EXP-A5 — root placement, {spec.n_switches} switches",
        )


@register_experiment("ablation-load", "marginal ITB overhead under load")
class AblationLoadExperiment(Experiment):
    """Per-ITB overhead with a busy re-injection port (EXP-A1)."""

    cli_options = (
        CliOption.make("--size", type=int, default=256),
        CliOption.make("--iterations", type=int, default=40),
        CliOption.make("--background-gap", type=float, default=9_000.0,
                       help="background inter-packet gap (ns)"),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="ablation-load", sizes=(256,), iterations=40,
            params={"background_gap_ns": 9_000.0},
        )

    def _size(self, spec: ExperimentSpec) -> int:
        return spec.sizes[0] if spec.sizes else 256

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{"mode": "unloaded"},
                {"mode": "loaded", "route": "ud5"},
                {"mode": "loaded", "route": "itb5"}]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.ablations import measure_loaded_half_rtt
        from repro.harness.fig8 import measure_fig8_point

        size = self._size(spec)
        if point["mode"] == "unloaded":
            return measure_fig8_point(size, spec.iterations, spec.timings,
                                      spec.seed, build=ctx.build)
        gap = spec.params.get("background_gap_ns", 9_000.0)
        return measure_loaded_half_rtt(
            point["route"], size, spec.iterations, gap, spec.seed,
            build=ctx.build,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.ablations import AblationLoadResult

        unloaded_row, ud, ud_itb = results
        return AblationLoadResult(
            size=self._size(spec),
            overhead_unloaded_ns=unloaded_row.overhead_ns,
            overhead_loaded_ns=2.0 * (ud_itb - ud),
        )

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        yield (_fig6_topology(), "updown", None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            sizes=(args.size,), iterations=args.iterations,
            params={"background_gap_ns": args.background_gap},
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        return format_table(
            ["quantity", "value"],
            [
                ("message size (B)", result.size),
                ("overhead unloaded (ns)",
                 f"{result.overhead_unloaded_ns:.0f}"),
                ("overhead loaded (ns)",
                 f"{result.overhead_loaded_ns:.0f}"),
                ("marginal fraction",
                 f"{result.marginal_fraction:.2f}"),
            ],
            title="EXP-A1 — marginal ITB overhead under load",
        )


@register_experiment("ablation-bufpool",
                     "fixed buffers vs circular buffer pool")
class AblationBufpoolExperiment(Experiment):
    """Burst behaviour of the in-transit buffering schemes (EXP-A2)."""

    cli_options = (
        CliOption.make("--senders", type=int, default=4),
        CliOption.make("--packets-per-sender", type=int, default=30),
        CliOption.make("--packet-size", type=int, default=1024),
        CliOption.make("--pool-bytes", type=int, default=8 * 1024),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="ablation-bufpool", packet_size=1024,
            params={"n_senders": 4, "packets_per_sender": 30,
                    "pool_bytes": 8 * 1024},
        )

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{"kind": "fixed"}, {"kind": "pool"}]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.ablations import measure_buffer_scheme

        return measure_buffer_scheme(
            kind=point["kind"],
            n_senders=spec.params.get("n_senders", 4),
            packets_per_sender=spec.params.get("packets_per_sender", 30),
            packet_size=spec.packet_size,
            pool_bytes=spec.params.get("pool_bytes", 8 * 1024),
            seed=spec.seed,
            build=ctx.build,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.ablations import BufferPoolStudyResult

        return BufferPoolStudyResult(results=list(results))

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            packet_size=args.packet_size,
            params={"n_senders": args.senders,
                    "packets_per_sender": args.packets_per_sender,
                    "pool_bytes": args.pool_bytes},
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        return format_table(
            ["scheme", "delivered", "offered", "flushed",
             "recv blocked (us)", "mean latency (us)"],
            [(r.kind, r.delivered, r.offered, r.flushed,
              r.recv_blocked_ns / 1000, r.mean_latency_ns / 1000)
             for r in result.results],
            title="EXP-A2 — in-transit buffering schemes",
        )


@register_experiment("ablation-timing", "ITB firmware cost sweep")
class AblationTimingExperiment(Experiment):
    """Per-ITB overhead across firmware cost regimes (EXP-A3)."""

    cli_options = (
        CliOption.make("--size", type=int, default=64),
        CliOption.make("--iterations", type=int, default=30),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="ablation-timing", sizes=(64,), iterations=30,
            params={"regimes": [list(r) for r in self._default_regimes()]},
        )

    @staticmethod
    def _default_regimes() -> tuple[tuple[str, int, int], ...]:
        from repro.core.timings import Timings

        base = Timings()
        return (
            ("simulation-assumption [2,3]", 18, 13),
            ("gm-implementation (paper)", base.itb_early_recv_cycles,
             base.itb_program_dma_cycles),
            ("hardware-assisted", 6, 6),
        )

    def _regimes(self, spec: ExperimentSpec) -> list[tuple[str, int, int]]:
        regimes = (spec.params.get("regimes")
                   or [list(r) for r in self._default_regimes()])
        return [(label, int(early), int(prog))
                for label, early, prog in regimes]

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{"label": label, "early": early, "prog": prog}
                for label, early, prog in self._regimes(spec)]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.ablations import measure_timing_regime

        size = spec.sizes[0] if spec.sizes else 64
        return measure_timing_regime(
            label=point["label"], early=point["early"], prog=point["prog"],
            size=size, iterations=spec.iterations, seed=spec.seed,
            build=ctx.build,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.ablations import TimingSweepResult

        return TimingSweepResult(rows=list(results))

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        yield (_fig6_topology(), "updown", None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            sizes=(args.size,), iterations=args.iterations,
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        return format_table(
            ["regime", "detect cyc", "DMA cyc", "fw cost (ns)",
             "overhead (us)"],
            [(row.label, row.early_recv_cycles, row.program_dma_cycles,
              f"{row.firmware_cost_ns:.0f}",
              row.overhead_ns / 1000) for row in result.rows],
            title="EXP-A3 — firmware cost sweep",
        )


@register_experiment("partition-storm", "partitioned-engine packet storm")
class PartitionStormExperiment(Experiment):
    """Multi-partition storm on the conservative parallel engine.

    One measurement point: a chain-of-switch-groups fabric is cut at
    its trunk links (:mod:`repro.topology.partition`), each partition
    runs its own calendar, and cross-partition packets store-and-
    forward through gateway hosts (:mod:`repro.harness.storm`).  The
    summary is deterministic and identical for every ``--engine-jobs``
    value — the property the parallel-smoke CI job diffs.
    """

    cli_options = (
        CliOption.make("--switches", type=int, default=8),
        CliOption.make("--parts", type=int, default=4,
                       help="partition count (the fabric cut)"),
        CliOption.make("--hosts-per-switch", type=int, default=2),
        CliOption.make("--packet-size", type=int, default=1024),
        CliOption.make("--rate", type=float, default=0.05,
                       help="offered load (bytes/ns/host)"),
        CliOption.make("--duration", type=float, default=100.0,
                       help="injection window (us)"),
        CliOption.make("--cross-fraction", type=float, default=0.25,
                       help="fraction of packets crossing a partition"),
        CliOption.make("--trunk-length", type=float, default=200.0,
                       help="inter-group trunk cable length (m); its"
                            " propagation delay is the lookahead"),
        CliOption.make("--seed", type=int, default=7),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="partition-storm", n_switches=8,
            hosts_per_switch=2, packet_size=1024,
            duration_ns=100_000.0,
            params={"n_parts": 4, "rate": 0.05, "cross_fraction": 0.25,
                    "trunk_length_m": 200.0},
        )

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [{}]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.storm import run_storm

        return run_storm(
            n_switches=spec.n_switches,
            n_parts=int(spec.params.get("n_parts", 4)),
            hosts_per_switch=spec.hosts_per_switch,
            packet_size=spec.packet_size,
            rate=float(spec.params.get("rate", 0.05)),
            duration_ns=spec.duration_ns,
            cross_fraction=float(spec.params.get("cross_fraction", 0.25)),
            trunk_length_m=float(spec.params.get("trunk_length_m", 200.0)),
            seed=spec.traffic_seed,
            build_seed=spec.seed,
            routing=spec.routing,
            engine_jobs=ctx.engine_jobs,
            timings=spec.timings,
            build=ctx.build,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        return results[0]

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            n_switches=args.switches,
            hosts_per_switch=args.hosts_per_switch,
            packet_size=args.packet_size,
            duration_ns=args.duration * 1000.0,
            traffic_seed=args.seed,
            params={"n_parts": args.parts, "rate": args.rate,
                    "cross_fraction": args.cross_fraction,
                    "trunk_length_m": args.trunk_length},
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        rows = [(i, p["offered"], p["delivered"], p["cross_sent"],
                 p["cross_received"], p["cross_delivered"], p["dropped"])
                for i, p in enumerate(result.per_partition)]
        table = format_table(
            ["partition", "offered", "delivered", "cross out", "cross in",
             "cross done", "dropped"],
            rows,
            title=f"partition storm — {result.n_switches} switches /"
                  f" {result.n_parts} partitions",
        )
        eng, exe = result.engine, result.execution
        return (f"{table}\n\nmean latency"
                f" {result.mean_latency_ns / 1000.0:.2f} us;"
                f" {eng['windows']} windows, {eng['messages']} boundary"
                f" messages, {eng['dropped']} dropped past the horizon"
                f" ({exe['mode']}, {exe['workers']} worker(s),"
                f" {exe['stall_s'] * 1000.0:.1f} ms sync stall)")


@register_experiment("fault-campaign", "GM reliability under injected faults")
class FaultCampaignExperiment(Experiment):
    """Loss/corruption grid x dynamic-fault schedules (EXP-FC).

    Every point runs the bidirectional staggered workload of
    :mod:`repro.harness.faultcamp` on the Figure 6 testbed and
    accounts for every message: delivered in order, or failed
    gracefully with ``GmSendError`` — never silently lost.
    """

    cli_options = (
        CliOption.make("--loss", type=float, nargs="+",
                       default=[0.0, 0.02, 0.05],
                       help="packet loss probabilities to sweep"),
        CliOption.make("--corrupt", type=float, nargs="+",
                       default=[0.0, 0.02],
                       help="packet corruption probabilities to sweep"),
        CliOption.make("--schedules", nargs="+",
                       default=["none", "campaign"],
                       help="named dynamic-fault schedules to sweep"),
        CliOption.make("--messages", type=int, default=24,
                       help="messages per direction per point"),
        CliOption.make("--size", type=int, default=1024,
                       help="message size (bytes)"),
        CliOption.make("--seed", type=int, default=13),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="fault-campaign", routing="itb", seed=13,
            message_size=1024,
            params={
                "loss": [0.0, 0.02, 0.05],
                "corrupt": [0.0, 0.02],
                "schedules": ["none", "campaign"],
                "messages": 24,
            },
        )

    def points(self, spec: ExperimentSpec) -> list[dict]:
        p = spec.params
        return [
            {"loss": loss, "corrupt": corrupt, "schedule": schedule}
            for schedule in p["schedules"]
            for loss in p["loss"]
            for corrupt in p["corrupt"]
        ]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.faultcamp import measure_fault_point

        return measure_fault_point(
            loss=point["loss"], corrupt=point["corrupt"],
            schedule=point["schedule"],
            n_messages=int(spec.params["messages"]),
            message_size=spec.message_size,
            seed=spec.seed, timings=spec.timings, build=ctx.build,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.faultcamp import FaultCampaignResult

        return FaultCampaignResult(
            rows=list(results),
            n_messages=int(spec.params["messages"]),
            message_size=spec.message_size,
        )

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        yield (_fig6_topology(), "itb", None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        return self.default_spec().replace(
            seed=args.seed, message_size=args.size,
            params={
                "loss": [float(x) for x in args.loss],
                "corrupt": [float(x) for x in args.corrupt],
                "schedules": list(args.schedules),
                "messages": args.messages,
            },
        )

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        out = [format_table(
            ["schedule", "loss", "corrupt", "msgs", "ok", "failed",
             "retx", "timeouts", "cut", "remaps"],
            [(row.schedule, f"{row.loss:.2f}", f"{row.corrupt:.2f}",
              row.messages, row.completed, row.failed,
              row.retransmissions, row.timeouts, row.killed_in_flight,
              row.remap_events) for row in result.rows],
            title="EXP-FC — reliability under injected faults",
        )]
        verdict = ("every message accounted for"
                   if result.all_accounted else
                   "MESSAGES UNACCOUNTED FOR — reliability breach")
        out.append(f"\n{result.total_retransmissions} retransmissions; "
                   f"{verdict}")
        return "\n".join(out)


@register_experiment("scale-study", "EXP-SCALE 16->512 switch fabric sweep")
class ScaleStudyExperiment(Experiment):
    """ITB vs up*/down* across Clos, fat-tree, and irregular fabrics.

    Static route-quality metrics from full batched all-pairs builds at
    every size rung (the tentpole of the batched route construction),
    plus one simulated offered-load point on fabrics small enough to
    drive through the event simulator.  Methodology and findings are
    documented in :mod:`repro.harness.scale_study` and
    ``docs/SCALE_STUDY.md``.
    """

    cli_options = (
        CliOption.make("--targets", type=int, nargs="+",
                       default=[16, 32, 64, 128, 256, 512],
                       help="switch-count rungs of the sweep"),
        CliOption.make("--families", nargs="+",
                       default=["clos", "fattree", "irregular"],
                       choices=["clos", "fattree", "irregular"]),
        CliOption.make("--dynamic-max", type=int, default=64,
                       help="largest rung that also gets a simulated"
                            " traffic point"),
        CliOption.make("--rate", type=float, default=0.08,
                       help="offered load of the dynamic point"
                            " (bytes/ns/host)"),
        CliOption.make("--duration", type=float, default=120.0,
                       help="dynamic measurement window (us)"),
        CliOption.make("--seed", type=int, default=11,
                       help="irregular-family topology seed"),
        CliOption.make("--quick", action="store_true",
                       help="rungs <= 64, dynamic <= 32 (CI smoke)"),
    )

    def default_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            experiment="scale-study",
            topology="scale",
            topo_seed=11,
            routings=("updown", "itb"),
            packet_size=512,
            duration_ns=120_000.0,
            warmup_ns=24_000.0,
            params={
                "targets": [16, 32, 64, 128, 256, 512],
                "families": ["clos", "fattree", "irregular"],
                "dynamic_max": 64,
                "rate": 0.08,
            },
        )

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [
            {"family": family, "target": target, "routing": routing}
            for family in spec.params["families"]
            for target in spec.params["targets"]
            for routing in spec.routings
        ]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.scale_study import measure_scale_point

        return measure_scale_point(
            family=point["family"],
            target=point["target"],
            routing=point["routing"],
            topo_seed=spec.topo_seed,
            rate=float(spec.params.get("rate", 0.08)),
            dynamic_max=int(spec.params.get("dynamic_max", 64)),
            packet_size=spec.packet_size,
            duration_ns=spec.duration_ns,
            warmup_ns=spec.warmup_ns,
            traffic_seed=spec.traffic_seed,
            timings=spec.timings,
            build=ctx.build,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.scale_study import ScaleStudyResult

        return ScaleStudyResult(
            families=tuple(spec.params["families"]),
            targets=tuple(spec.params["targets"]),
            routings=tuple(spec.routings),
            topo_seed=spec.topo_seed,
            rows=list(results),
        )

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        from repro.harness.scale_study import family_topology

        dynamic_max = int(spec.params.get("dynamic_max", 64))
        for family in spec.params["families"]:
            for target in spec.params["targets"]:
                if target > dynamic_max:
                    continue
                topo = family_topology(family, target, spec.topo_seed)
                for routing in spec.routings:
                    yield (topo, routing, None)

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        spec = self.default_spec().replace(
            topo_seed=args.seed,
            duration_ns=args.duration * 1000.0,
            warmup_ns=args.duration * 200.0,
            params={
                "targets": [int(t) for t in args.targets],
                "families": list(args.families),
                "dynamic_max": args.dynamic_max,
                "rate": args.rate,
            },
        )
        if args.quick:
            params = dict(spec.params)
            params["targets"] = [t for t in params["targets"] if t <= 64]
            params["dynamic_max"] = min(params["dynamic_max"], 32)
            spec = spec.replace(params=params, duration_ns=60_000.0,
                                warmup_ns=12_000.0)
        return spec

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        rows = []
        for r in result.rows:
            rows.append((
                r.family, r.n_switches, r.n_hosts, r.diameter, r.routing,
                f"{100 * r.minimal_coverage:.1f}%",
                f"{r.avg_stretch:.3f}",
                f"{100 * r.root_load_fraction:.1f}%",
                r.max_channel_load,
                f"{r.saturation_bytes_per_ns_per_host:.4f}",
                f"{100 * r.itb_pairs_fraction:.1f}%" if r.routing == "itb"
                else "-",
                f"{r.dynamic.accepted:.4f}" if r.dynamic else "-",
                f"{r.route_s:.2f}",
            ))
        table = format_table(
            ["family", "sw", "hosts", "diam", "routing", "minimal",
             "stretch", "via-root", "max-load", "sat-bound", "itb-pairs",
             "accepted", "route-s"],
            rows,
            title="EXP-SCALE — ITB vs up*/down*, 16->512 switches",
        )
        notes = []
        for family in result.families:
            biggest = max(
                (r.target for r in result.rows if r.family == family),
                default=None,
            )
            if biggest is None:
                continue
            ratio = result.saturation_ratio(family, biggest)
            notes.append(f"{family}@{biggest}: ITB/UD saturation"
                         f" ratio {ratio:.2f}x")
        return (f"{table}\n\n{'; '.join(notes)}\n"
                "sat-bound = analytic uniform-traffic saturation"
                " (bytes/ns/host); route-s = batched all-pairs wall time")


@register_experiment("adaptive-itb",
                     "EXP-A7 static vs adaptive ITB host selection")
class AdaptiveItbExperiment(Experiment):
    """Static vs congestion-aware in-transit host selection.

    Sweeps every :data:`~repro.routing.selectors.SELECTOR_NAMES` policy
    against the static baseline under hotspot and shifting traffic on
    the irregular study fabrics; the harness details (matrices, the
    busiest-default-ITB-host hotspot, the live occupancy view) live in
    :mod:`repro.harness.adaptive`.
    """

    cli_options = (
        CliOption.make("--switches", type=int, nargs="+", default=[8, 32]),
        CliOption.make("--packet-size", type=int, default=512),
        CliOption.make("--rate", type=float, default=0.06,
                       help="offered load (bytes/ns/host)"),
        CliOption.make("--duration", type=float, default=120.0,
                       help="measurement window (us)"),
        CliOption.make("--hosts-per-switch", type=int, default=2),
        CliOption.make("--seed", type=int, default=11),
        CliOption.make("--policies", nargs="+", default=None,
                       help="selector policies (default: all)"),
        CliOption.make("--matrices", nargs="+",
                       default=["hotspot", "shifting"]),
        CliOption.make("--fraction", type=float, default=0.35,
                       help="hotspot traffic fraction"),
        CliOption.make("--interval", type=float, default=10.0,
                       help="reselection interval (us)"),
        CliOption.make("--view", choices=("live", "zero"), default="live",
                       help="congestion signal (zero = oracle arm)"),
        CliOption.make("--quick", action="store_true",
                       help="8 switches only, short window (CI smoke)"),
    )

    def default_spec(self) -> ExperimentSpec:
        from repro.routing.selectors import SELECTOR_NAMES

        return ExperimentSpec(
            experiment="adaptive-itb", n_switches=8, topo_seed=11,
            hosts_per_switch=2, packet_size=512, rates=(0.06,),
            duration_ns=120_000.0, warmup_ns=30_000.0,
            params={
                "switch_list": (8, 32),
                "policies": tuple(SELECTOR_NAMES),
                "matrices": ("hotspot", "shifting"),
                "fraction": 0.35,
                "interval_ns": 10_000.0,
                "shift_period_ns": 40_000.0,
                "view": "live",
                "selector_seed": 2001,
            },
        )

    def points(self, spec: ExperimentSpec) -> list[dict]:
        return [
            {"policy": policy, "matrix": matrix,
             "n_switches": n, "rate": rate}
            for n in spec.params["switch_list"]
            for matrix in spec.params["matrices"]
            for policy in spec.params["policies"]
            for rate in spec.rates
        ]

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        from repro.harness.adaptive import measure_adaptive_point

        return measure_adaptive_point(
            policy=point["policy"],
            matrix=point["matrix"],
            rate=point["rate"],
            n_switches=point["n_switches"],
            packet_size=spec.packet_size,
            duration_ns=spec.duration_ns,
            warmup_ns=spec.warmup_ns,
            topo_seed=spec.topo_seed,
            traffic_seed=spec.traffic_seed,
            hosts_per_switch=spec.hosts_per_switch,
            fraction=float(spec.params["fraction"]),
            interval_ns=float(spec.params["interval_ns"]),
            shift_period_ns=float(spec.params["shift_period_ns"]),
            view=spec.params["view"],
            selector_seed=int(spec.params["selector_seed"]),
            timings=spec.timings,
            build=ctx.build,
        )

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        from repro.harness.adaptive import AdaptiveItbResult

        return AdaptiveItbResult(
            packet_size=spec.packet_size,
            topo_seed=spec.topo_seed,
            hosts_per_switch=spec.hosts_per_switch,
            rows=list(results),
        )

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        for n in spec.params["switch_list"]:
            yield (
                _random_topology(spec.replace(n_switches=n)), "itb", None,
            )

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        from repro.routing.selectors import SELECTOR_NAMES

        policies = tuple(args.policies) if args.policies else SELECTOR_NAMES
        spec = self.default_spec()
        spec = spec.replace(
            packet_size=args.packet_size,
            rates=(args.rate,),
            duration_ns=args.duration * 1000.0,
            warmup_ns=args.duration * 250.0,
            hosts_per_switch=args.hosts_per_switch,
            topo_seed=args.seed,
            params={
                **spec.params,
                "switch_list": tuple(args.switches),
                "policies": policies,
                "matrices": tuple(args.matrices),
                "fraction": args.fraction,
                "interval_ns": args.interval * 1000.0,
                "view": args.view,
            },
        )
        if args.quick:
            # Small fabric, abbreviated window: the hotspot sits on the
            # busiest in-transit host, so the static-vs-adaptive gap is
            # visible well before the full window closes.
            spec = spec.replace(
                duration_ns=60_000.0, warmup_ns=15_000.0,
                params={**spec.params, "switch_list": (8,)},
            )
        return spec

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        from repro.harness.report import format_table

        rows = []
        for r in result.rows:
            rows.append((
                r.n_switches, r.matrix, r.policy,
                f"{r.p99_latency_ns / 1000:.1f}",
                f"{r.mean_latency_ns / 1000:.1f}",
                f"{r.accepted:.4f}",
                r.reselect_changed, r.engaged,
            ))
        table = format_table(
            ["sw", "matrix", "policy", "p99 (us)", "mean (us)",
             "accepted", "moved", "engaged"],
            rows,
            title="EXP-A7 — static vs adaptive ITB host selection",
        )
        verdicts = []
        for n in spec.params["switch_list"]:
            for matrix in spec.params["matrices"]:
                best = result.best_adaptive(matrix, n)
                if best is None:
                    continue
                static = result.p99("static", matrix, n)
                if result.adaptive_beats_static(matrix, n):
                    gain = 100.0 * (1.0 - best[1] / static)
                    verdicts.append(
                        f"{matrix}@{n}sw: {best[0]} beats static p99"
                        f" by {gain:.1f}%")
                else:
                    verdicts.append(
                        f"{matrix}@{n}sw: static holds (best adaptive"
                        f" {best[0]})")
        return (f"{table}\n\n{'; '.join(verdicts)}\n"
                "moved = route installs by reselection; engaged ="
                " selector decisions diverted off the static pick")
