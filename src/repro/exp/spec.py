"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the complete, picklable, JSON-able
description of one experiment run: which registered experiment, on
what topology, with which firmware/routing, which timing model, which
seeds, and the measurement grid (size ladder, load grid, kernel list).
The runner derives everything else — the independent measurement
points, the builds, the summary — from the spec, so a spec plus the
code version fully determines the result (the determinism tests
assert byte-identical persisted documents for identical specs).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.timings import Timings

__all__ = ["ExperimentSpec"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that defines one experiment run.

    Not every experiment consumes every field (a latency ladder has no
    load grid; a load sweep has no size ladder); each registered
    experiment documents which fields it reads.  Free-form extras ride
    in ``params``.

    Attributes
    ----------
    experiment:
        Registered experiment name (``repro list`` shows them).
    topology:
        ``"fig6"``, ``"fig1"``, or ``"random"`` (an irregular COW of
        ``n_switches`` generated from ``topo_seed``).
    firmware / routing:
        Firmware kind on every NIC and mapper routing policy.
    timings:
        Optional :class:`~repro.core.timings.Timings` override.
    seed / topo_seed / traffic_seed:
        Master host-noise seed, topology-generator seed, and workload
        seed.
    sizes / iterations:
        Message-size ladder and per-size iteration count (latency
        experiments).
    rates / routings / duration_ns / warmup_ns / packet_size:
        Offered-load grid, compared routings, and traffic window
        (throughput experiments).
    kernels / message_size:
        Communication kernels and message size (application kernels).
    n_switches / hosts_per_switch / switch_links:
        Random-topology shape.
    root:
        Optional spanning-tree root override.
    observe:
        Attach the unified telemetry registry to every built network
        and report per-point metric totals alongside the result.
    params:
        Free-form experiment-specific extras (JSON-able values only).
    """

    experiment: str
    topology: str = "fig6"
    firmware: str = "itb"
    routing: str = "updown"
    timings: Optional[Timings] = None
    seed: int = 2001
    topo_seed: int = 11
    traffic_seed: int = 7
    sizes: tuple[int, ...] = ()
    iterations: int = 100
    rates: tuple[float, ...] = ()
    routings: tuple[str, ...] = ("updown", "itb")
    duration_ns: float = 300_000.0
    warmup_ns: float = 30_000.0
    packet_size: int = 512
    kernels: tuple[str, ...] = ()
    message_size: int = 1024
    n_switches: int = 16
    hosts_per_switch: int = 1
    switch_links: int = 3
    root: Optional[int] = None
    observe: bool = False
    params: dict = field(default_factory=dict)

    def replace(self, **overrides: Any) -> "ExperimentSpec":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **overrides)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-able document that :meth:`from_dict` round-trips."""
        doc: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "timings":
                value = None if value is None else dataclasses.asdict(value)
            elif isinstance(value, tuple):
                value = list(value)
            doc[f.name] = value
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        kw = dict(doc)
        timings = kw.get("timings")
        if timings is not None:
            kw["timings"] = Timings(**timings)
        for name in ("sizes", "rates", "routings", "kernels"):
            if name in kw and kw[name] is not None:
                kw[name] = tuple(kw[name])
        return cls(**kw)
