"""The one build→observe→measure→summarize→persist path.

Every experiment — paper figures, throughput sweeps, ablations — runs
through :class:`Runner`: it resolves the registered definition,
expands the spec into independent measurement points, executes them
(serially, or fanned out over a ``multiprocessing`` pool with
``jobs > 1``), merges the results **deterministically by point
index**, and summarizes.  A shared
:class:`~repro.routing.cache.RouteCache` is warmed in the parent
before any fork, so structurally identical route tables are computed
at most once per run regardless of worker count.

Parallel execution notes:

* Workers are forked (``fork`` start method), inheriting the warmed
  route cache and the experiment registry; on platforms without
  ``fork`` the runner falls back to serial execution.
* Point results are merged by index, so a parallel run returns
  byte-identical persisted documents to a serial run of the same spec
  (the simulation itself is deterministic).
* ``jobs`` only sets the pool width; scheduling order never affects
  the result.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.core.builder import BuiltNetwork, build_network
from repro.exp.registry import Experiment, get_experiment
from repro.exp.spec import ExperimentSpec
from repro.routing.cache import RouteCache, default_route_cache

__all__ = ["PointContext", "Runner", "RunReport", "run_experiment"]


class PointContext:
    """Per-point services the runner hands to ``measure``.

    ``ctx.build(...)`` is the uniform build path: it forwards to
    :func:`~repro.core.builder.build_network` with the shared route
    cache injected and — when the spec asks for observation — attaches
    the unified telemetry registry to the built network, recording a
    compact metric summary per build in :attr:`observations`.
    """

    def __init__(self, spec: ExperimentSpec,
                 cache: Optional[RouteCache] = None) -> None:
        self.spec = spec
        self.cache = cache
        self.observations: list[dict] = []
        self._instrumented: list = []
        self._fabrics: list = []

    @property
    def engine_jobs(self) -> int:
        """Worker count for the partitioned simulation engine.

        Threaded from ``--engine-jobs`` via ``spec.params``; results
        never depend on it (``docs/PARALLEL.md``), so only
        partition-aware experiments bother reading it.
        """
        return int(self.spec.params.get("engine_jobs", 1))

    def build(self, topo: Any = None, **kwargs: Any) -> BuiltNetwork:
        """Build a network for this point through the single shared path."""
        if topo is None:
            topo = self.spec.topology
        kwargs.setdefault("route_cache", self.cache)
        net = build_network(topo, **kwargs)
        self._fabrics.append(net.fabric)
        if self.spec.observe:
            from repro.obs.attach import instrument_network

            telemetry = instrument_network(net, fabric_usage=False,
                                           route_cache=self.cache)
            self._instrumented.append(telemetry)
        return net

    def express_summary(self) -> dict:
        """Worm express-lane counters summed over this point's builds."""
        totals: dict[str, int] = {}
        for fabric in self._fabrics:
            for key, value in fabric.express_stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def span_dumps(self) -> list[str]:
        """Canonical span dumps of every traced build at this point.

        Empty unless span tracing is on (:func:`repro.obs.tracing.configure`
        installs the tracer factory the builder attaches per fabric).
        One JSON string per traced build, in build order.
        """
        dumps: list[str] = []
        for fabric in self._fabrics:
            tracer = getattr(fabric, "tracer", None)
            if tracer is not None:
                dumps.append(tracer.dump_json())
        return dumps

    def finalize_observations(self) -> None:
        """Snapshot nonzero metric totals of every instrumented build."""
        for telemetry in self._instrumented:
            snapshot: dict[str, float] = {}
            for metric in telemetry.registry.collect():
                value = metric.value
                if value:
                    snapshot[metric.name] = snapshot.get(metric.name, 0.0) + value
            self.observations.append(snapshot)
        self._instrumented.clear()


@dataclass
class RunReport:
    """One executed experiment: spec, result, and execution metadata."""

    spec: ExperimentSpec
    result: Any
    n_points: int
    jobs: int
    elapsed_s: float
    cache_stats: dict = field(default_factory=dict)
    observations: list = field(default_factory=list)
    #: Worm express-lane counters summed across every point (execution
    #: metadata — never part of the persisted result document).
    express: dict = field(default_factory=dict)
    #: Canonical span dumps (one JSON string per traced build), merged
    #: in point order — identical for serial and parallel runs.
    span_dumps: list = field(default_factory=list)
    saved_to: Optional[str] = None


# Module-level worker state, inherited by forked pool workers (shared
# synchronization primitives cannot be passed through Pool arguments).
_worker_cache: Optional[RouteCache] = None


def _measure_point(payload: tuple[ExperimentSpec, int, dict]
                   ) -> tuple[int, Any, list, dict, list]:
    """Evaluate one point (entry point for pool workers and the serial
    path alike, so both execute the exact same code)."""
    spec, index, point = payload
    exp = get_experiment(spec.experiment)
    ctx = PointContext(spec, cache=_worker_cache)
    value = exp.measure(spec, point, ctx)
    ctx.finalize_observations()
    return index, value, ctx.observations, ctx.express_summary(), ctx.span_dumps()


class Runner:
    """Executes :class:`ExperimentSpec`\\ s through the shared pipeline."""

    def __init__(self, cache: Optional[RouteCache] = None,
                 jobs: int = 1) -> None:
        self.cache = cache if cache is not None else default_route_cache()
        self.jobs = jobs

    # ------------------------------------------------------------------

    def run(
        self,
        spec: Union[str, ExperimentSpec],
        jobs: Optional[int] = None,
        save: Optional[str] = None,
        on_point: Optional[Callable[[int, Any], None]] = None,
    ) -> RunReport:
        """Run one experiment end to end.

        Parameters
        ----------
        spec:
            A spec, or a registered experiment name (its default spec).
        jobs:
            Process-pool width; ``1`` (default) runs serially.  Results
            are independent of this value.
        save:
            Optional path; the summarized result is persisted as a
            spec-keyed JSON document via
            :func:`repro.harness.persist.save_results`.
        on_point:
            Progress callback ``(index, value)``, invoked in point
            order (in the parent, after merge, when parallel).
        """
        if isinstance(spec, str):
            spec = get_experiment(spec).default_spec()
        exp = get_experiment(spec.experiment)
        jobs = self.jobs if jobs is None else jobs
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")

        t0 = time.perf_counter()
        points = exp.points(spec)
        self._warm_routes(exp, spec)
        payloads = [(spec, i, p) for i, p in enumerate(points)]

        if jobs > 1 and len(points) > 1:
            outcomes = self._run_parallel(payloads, jobs)
        else:
            outcomes = [_measure_point_with(self.cache, p) for p in payloads]

        # Deterministic merge: results ordered by point index.
        outcomes.sort(key=lambda item: item[0])
        values = [value for _i, value, _obs, _ex, _sp in outcomes]
        observations = [obs for _i, _value, obs, _ex, _sp in outcomes]
        span_dumps = [d for _i, _v, _obs, _ex, dumps in outcomes
                      for d in dumps]
        express = {"hits": 0, "partial": 0, "fallbacks": 0,
                   "stepped_hops": 0}
        for _i, _value, _obs, ex, _sp in outcomes:
            for key, v in ex.items():
                express[key] = express.get(key, 0) + v
        if on_point is not None:
            for i, value in enumerate(values):
                on_point(i, value)

        result = exp.summarize(spec, values)
        report = RunReport(
            spec=spec,
            result=result,
            n_points=len(points),
            jobs=jobs,
            elapsed_s=time.perf_counter() - t0,
            cache_stats=self.cache.stats(),
            observations=observations,
            express=express,
            span_dumps=span_dumps,
        )
        if save:
            from repro.harness.persist import save_results

            path = save_results(save, {spec.experiment: result},
                                specs={spec.experiment: spec})
            report.saved_to = str(path)
        return report

    # ------------------------------------------------------------------

    def _warm_routes(self, exp: Experiment, spec: ExperimentSpec) -> None:
        for topo, routing, root in exp.route_requirements(spec):
            self.cache.warm(topo, routing, root=root)

    def _run_parallel(self, payloads: list, jobs: int) -> list:
        global _worker_cache
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platform
            return [_measure_point_with(self.cache, p) for p in payloads]
        _worker_cache = self.cache
        try:
            with mp.Pool(processes=min(jobs, len(payloads))) as pool:
                return pool.map(_measure_point, payloads)
        finally:
            _worker_cache = None


def _measure_point_with(cache: Optional[RouteCache],
                        payload: tuple) -> tuple[int, Any, list, dict, list]:
    """Serial-path helper: run ``_measure_point`` with a bound cache."""
    global _worker_cache
    _worker_cache = cache
    try:
        return _measure_point(payload)
    finally:
        _worker_cache = None


def run_experiment(
    spec: Union[str, ExperimentSpec],
    jobs: int = 1,
    cache: Optional[RouteCache] = None,
    save: Optional[str] = None,
) -> Any:
    """Convenience wrapper: run a spec, return just the result object."""
    runner = Runner(cache=cache)
    return runner.run(spec, jobs=jobs, save=save).result
