"""The experiment registry.

Every experiment is a subclass of :class:`Experiment` registered with
:func:`register_experiment`.  The registry is what collapses the old
one-module-per-experiment sprawl into a single pipeline: the runner
asks the registered definition for the independent measurement points
of a spec, measures them (serially or across a process pool), and
hands the ordered results back for summarization — and the CLI
generates its experiment subcommands from the same registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.exp.spec import ExperimentSpec
from repro.topology.graph import Topology

__all__ = [
    "CliOption",
    "Experiment",
    "get_experiment",
    "list_experiments",
    "register_experiment",
]


@dataclass(frozen=True)
class CliOption:
    """One argparse option an experiment contributes to its subcommand."""

    flags: tuple[str, ...]
    kwargs: dict

    @classmethod
    def make(cls, *flags: str, **kwargs: Any) -> "CliOption":
        return cls(flags=flags, kwargs=kwargs)


class Experiment:
    """One registered experiment definition.

    Subclasses override the four pipeline hooks:

    * :meth:`default_spec` — the spec a bare ``repro run <name>`` uses,
    * :meth:`points` — the independent measurement points of a spec
      (each point is a small picklable dict; points must not depend on
      each other — the runner may execute them in separate processes),
    * :meth:`measure` — evaluate one point (runs in a worker when
      ``--jobs > 1``; must derive everything from ``spec`` + ``point``),
    * :meth:`summarize` — merge the ordered point results into the
      experiment's result object (always runs in the parent).

    CLI integration hooks (:attr:`cli_options`, :meth:`spec_from_args`,
    :meth:`render`) let the command-line interface generate one
    subcommand per registered experiment from this same definition.
    Route warm-up (:meth:`route_requirements`) tells the runner which
    route tables the points share so the cache can be warmed before
    forking.
    """

    #: Registered name (set by :func:`register_experiment`).
    name: str = ""
    #: One-line description for ``repro list`` / subcommand help.
    title: str = ""

    #: Options the CLI adds to this experiment's subcommand.
    cli_options: tuple[CliOption, ...] = ()

    # -- pipeline hooks ----------------------------------------------------

    def default_spec(self) -> ExperimentSpec:
        """The spec a bare ``repro run <name>`` uses."""
        return ExperimentSpec(experiment=self.name)

    def points(self, spec: ExperimentSpec) -> list[dict]:
        """The independent measurement points of ``spec``, in result
        order (each a small picklable dict)."""
        raise NotImplementedError

    def measure(self, spec: ExperimentSpec, point: dict, ctx: Any) -> Any:
        """Evaluate one point (possibly in a worker process); must
        derive everything from ``spec`` + ``point`` + ``ctx``."""
        raise NotImplementedError

    def summarize(self, spec: ExperimentSpec, results: Sequence[Any]) -> Any:
        """Merge the ordered point results into the experiment's
        result object (always runs in the parent)."""
        raise NotImplementedError

    def route_requirements(
        self, spec: ExperimentSpec
    ) -> Iterable[tuple[Topology, str, Optional[int]]]:
        """``(topology, routing, root)`` combos the points will need.

        The runner warms the shared route cache with these in the
        parent process before fanning points out, so each shared table
        is computed at most once no matter how many workers run.
        """
        return ()

    # -- CLI hooks ---------------------------------------------------------

    def spec_from_args(self, args: Any) -> ExperimentSpec:
        """Build a spec from this experiment's parsed CLI arguments."""
        return self.default_spec()

    def render(self, spec: ExperimentSpec, result: Any, args: Any) -> str:
        """Human-readable report for the CLI (tables, summaries)."""
        return repr(result)


_REGISTRY: dict[str, Experiment] = {}
_definitions_loaded = False


def register_experiment(
    name: str, title: str = ""
) -> Callable[[type], type]:
    """Class decorator registering an :class:`Experiment` subclass."""

    def deco(cls: type) -> type:
        if not issubclass(cls, Experiment):
            raise TypeError(f"{cls.__name__} must subclass Experiment")
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        # Inherit hook docstrings from the base class so every
        # override stays documented without restating the contract.
        for attr, impl in vars(cls).items():
            base = getattr(Experiment, attr, None)
            if (callable(impl) and not impl.__doc__
                    and base is not None and base.__doc__):
                impl.__doc__ = base.__doc__
        instance = cls()
        instance.name = name
        if title:
            instance.title = title
        _REGISTRY[name] = instance
        return cls

    return deco


def _load_definitions() -> None:
    """Import the built-in experiment definitions exactly once."""
    global _definitions_loaded
    if not _definitions_loaded:
        _definitions_loaded = True
        import repro.exp.experiments  # noqa: F401  (registration side effect)


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment by name."""
    _load_definitions()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown experiment {name!r}; registered: {known}"
        ) from None


def list_experiments() -> list[Experiment]:
    """All registered experiments, sorted by name."""
    _load_definitions()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]
