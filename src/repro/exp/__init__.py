"""Unified experiment pipeline.

Declarative :class:`ExperimentSpec`\\ s, a registry of experiment
definitions, and one :class:`Runner` that owns the single
build → observe → measure → summarize → persist path every experiment
takes.  ``Runner`` can fan independent measurement points out over a
``multiprocessing`` pool (``jobs > 1``) while keeping results
byte-identical to a serial run, and warms a shared
:class:`~repro.routing.cache.RouteCache` so structurally identical
route tables are computed at most once per run.
"""

from repro.exp.registry import (CliOption, Experiment, get_experiment,
                                list_experiments, register_experiment)
from repro.exp.runner import PointContext, Runner, RunReport, run_experiment
from repro.exp.spec import ExperimentSpec

__all__ = [
    "CliOption",
    "Experiment",
    "ExperimentSpec",
    "PointContext",
    "Runner",
    "RunReport",
    "get_experiment",
    "list_experiments",
    "register_experiment",
    "run_experiment",
]
