"""Wormhole packet progression ("worm") through the fabric.

One :class:`Worm` carries one packet image along one source-route
segment.  The header advances hop by hop, acquiring the next directed
channel before moving (FIFO arbitration at switch output ports); the
fall-through latency of each switch depends on the input/output port
kinds.  Channels are held until the tail drains at the destination —
the behaviour of Myrinet's Stop&Go flow control, whose slack buffers
are far smaller than a packet, so a blocked packet effectively holds
its whole path.

The destination NIC is notified twice:

* ``on_header(worm, t)`` — when the first :attr:`early_recv_bytes`
  bytes have arrived (this is what triggers the ITB firmware's
  Early-Recv event), and
* ``on_complete(worm, t)`` — when the last byte has arrived.

Cut-through re-injection at an in-transit host is expressed by
starting the next segment's worm before ``on_complete`` fires; the
pipeline constraint (a byte cannot be re-sent before it arrived) is
honoured because both links run at the same byte rate and the
re-injection starts strictly after reception started.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.core.timings import Timings
from repro.mcp.packet_format import PacketImage
from repro.network.fabric import Channel, Fabric
from repro.routing.routes import SourceRoute
from repro.sim.engine import Simulator, Timeout

__all__ = ["Worm", "WormObserver"]

#: Tolerance for accumulated float rounding in head-arrival schedules.
#: ``head_at_input`` is built by summing hop latencies while ``sim.now``
#: advances through the same quantities in a different association
#: order, so their difference can go epsilon-negative on long routes.
TIME_EPS_NS = 1e-6


def _forward_delay(target_ns: float, now_ns: float) -> float:
    """``target_ns - now_ns`` clamped against float rounding.

    Deltas in ``(-TIME_EPS_NS, 0)`` are rounding noise and clamp to
    zero; anything more negative is a real scheduling bug and raises.
    """
    delta = target_ns - now_ns
    if delta >= 0.0:
        return delta
    if delta > -TIME_EPS_NS:
        return 0.0
    raise AssertionError(
        f"worm scheduled into the past: target {target_ns} is"
        f" {-delta} ns before now {now_ns}"
    )


class WormObserver(Protocol):
    """Destination-side hooks (implemented by the NIC firmware).

    ``on_header`` may return an event: the worm then stalls on the
    wire (holding its channels) until it triggers — receive-buffer
    backpressure.
    """

    def on_header(self, worm: "Worm", t: float) -> Optional[object]:
        """First bytes arrived; may return a gate event to stall."""
        ...

    def on_complete(self, worm: "Worm", t: float) -> None:
        """Last byte arrived; channels already released."""
        ...


class Worm:
    """One packet traversing one route segment.

    Parameters
    ----------
    sim, fabric, timings:
        Simulation context.
    segment:
        The source-route segment to follow (src may be a host NIC or an
        in-transit host re-injecting).
    image:
        Packet bytes *as injected for this segment* (route bytes for
        this segment leading).
    observer:
        Destination NIC hooks.
    meta:
        Free-form dict propagated across segments (packet id, timestamps).
    """

    _next_worm_id = 0

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        segment: SourceRoute,
        image: PacketImage,
        observer: WormObserver,
        meta: Optional[dict] = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.timings: Timings = fabric.timings
        self.segment = segment
        self.image = image
        self.observer = observer
        self.meta = meta if meta is not None else {}
        Worm._next_worm_id += 1
        self.worm_id = Worm._next_worm_id
        # Filled in while running:
        self.inject_time: Optional[float] = None
        self.header_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.blocked_ns: float = 0.0
        self._held: list[Channel] = []

    # ------------------------------------------------------------------

    def launch(self) -> None:
        """Start the worm process at the current simulation time."""
        self.sim.process(self._run(), name=f"worm{self.worm_id}")

    def _run(self):
        sim, fabric, t = self.sim, self.fabric, self.timings
        seg = self.segment
        self.inject_time = sim.now
        wire_len = self.image.wire_length

        # Injection channel: host NIC -> first switch.  The NIC's send
        # DMA only starts when the wire is free (Stop&Go at the source).
        out = fabric.host_out(seg.src)
        yield from self._acquire(out)
        # Leading byte reaches the first switch after propagation + one
        # byte time on the wire.
        head_at_input = sim.now + out.prop_ns + t.link_byte_ns
        in_channel = out
        image = self.image

        for hop_index, port in enumerate(seg.ports):
            switch = seg.switch_path[hop_index]
            # The switch decodes the leading route byte and strips it.
            _decoded_port, image = image.strip_route_byte()
            if _decoded_port != port:
                raise AssertionError(
                    f"route byte {_decoded_port} != expected port {port}"
                )
            out = fabric.out_channel(switch, port)
            # Routing decision + crossbar setup happen as the header
            # arrives; the output may be busy (wormhole blocking).
            delay = _forward_delay(head_at_input, sim.now)
            if delay > 0.0:
                yield Timeout(delay)
            block_start = sim.now
            yield from self._acquire(out)
            self.blocked_ns += sim.now - block_start
            fall = fabric.fall_through(in_channel, out)
            head_at_input = sim.now + fall + out.prop_ns
            in_channel = out

        # Head (first byte past all switches) reaches the destination NIC.
        delay = _forward_delay(head_at_input, sim.now)
        if delay > 0.0:
            yield Timeout(delay)
        self.header_time = sim.now
        self.image = image  # route bytes consumed; NIC sees type first

        # The destination NIC's receive packet DMA streams the packet
        # into SRAM from here on (feeds the LANai memory arbiter).
        arbiter = getattr(getattr(self.observer, "nic", None), "arbiter", None)
        if arbiter is not None:
            arbiter.engine_start("recv_dma")
        try:
            # Early-recv notification after the first few bytes land.
            # The observer may return a gate event (no receive buffer
            # free): the packet then stalls on the wire, channels held
            # — Stop&Go backpressure.
            early = t.wire_time(min(t.early_recv_bytes, image.wire_length))
            yield Timeout(early)
            gate = self.observer.on_header(self, sim.now)
            if gate is not None:
                yield gate

            # Remaining bytes stream in at link rate (cut-through
            # pipeline: the body follows the header with no further
            # per-switch cost).
            remaining = t.wire_time(image.wire_length) - early
            if remaining > 0:
                yield Timeout(remaining)
        finally:
            if arbiter is not None:
                arbiter.engine_stop("recv_dma")
        self.complete_time = sim.now
        self._release_all()
        self.observer.on_complete(self, sim.now)
        return self

    # ------------------------------------------------------------------

    def _acquire(self, channel: Channel):
        if channel in self._held:
            # A wormhole packet that routes back onto a directed
            # channel it still occupies waits for itself forever —
            # this deadlocks on real hardware too.  Fail loudly so
            # hand-built test routes get a diagnosis, not a hang.
            raise RuntimeError(
                f"worm {self.worm_id} re-enters channel {channel!r} it"
                " already holds (self-deadlocking route)"
            )
        req = channel.resource.request(owner=self)
        yield req
        self._held.append(channel)

    def _release_all(self) -> None:
        for ch in self._held:
            ch.resource.release(owner=self)
        self._held.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Worm {self.worm_id} seg {self.segment.src}->{self.segment.dst}"
            f" len={self.image.wire_length}B>"
        )
