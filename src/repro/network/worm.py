"""Wormhole packet progression ("worm") through the fabric.

One :class:`Worm` carries one packet image along one source-route
segment.  The header advances hop by hop, acquiring its assigned
*lane* of the next directed channel before moving (FIFO arbitration
at switch output ports, per lane); the fall-through latency of each
switch depends on the input/output port kinds.  Lanes are held until
the tail drains at the destination — the behaviour of Myrinet's
Stop&Go flow control, whose slack buffers are far smaller than a
packet, so a blocked packet effectively holds its whole path.  On the
default single-lane fabric the lane assignment is identically zero
and "lane" reads as "channel"; with virtual-channel lanes configured
the fabric's lane policy picks one lane per channel at launch, fixed
for the flight.

The destination NIC is notified twice:

* ``on_header(worm, t)`` — when the first :attr:`early_recv_bytes`
  bytes have arrived (this is what triggers the ITB firmware's
  Early-Recv event), and
* ``on_complete(worm, t)`` — when the last byte has arrived.

Cut-through re-injection at an in-transit host is expressed by
starting the next segment's worm before ``on_complete`` fires; the
pipeline constraint (a byte cannot be re-sent before it arrived) is
honoured because both links run at the same byte rate and the
re-injection starts strictly after reception started.

Express lane
------------
When the whole route is provably uncontended at injection — every
assigned lane free with an empty queue, and no other in-flight worm's
lane assignment intersecting it (the fabric's lane-claim index) — the worm
skips the hop-by-hop generator entirely: the traversal clock is
replayed in closed form (the exact float-addition sequence the stepped
path performs) and just two calendar entries are scheduled, header
arrival and completion.  The channels are then held only *virtually*;
every later launch first interrupts intersecting express flights
(materialising their holds, and demoting any not-yet-acquired suffix
back to the stepped generator) before it can observe the channels, so
no contender can tell the difference.

A route contended only from some channel onward still flies its clean
prefix closed-form (the *claim horizon*,
``Fabric.claim_horizon``): the clock replays through the request time
of the first conflicted channel, where a single planned-demotion
entry materialises the prefix holds and resumes the stepped generator
— the contended suffix, the destination epilogue, gates, and arbiters
all behave exactly as on the stepped path.  See the "Express worm
flight" section of ``docs/ENGINE_FASTPATH.md`` for the invariants.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.core.timings import Timings
from repro.mcp.packet_format import PacketImage
from repro.network.fabric import Channel, Fabric, FlightPlan
from repro.routing.routes import SourceRoute
from repro.sim.engine import Interrupt, Simulator, Timeout

__all__ = ["Worm", "WormObserver"]


class _LinkDown(Exception):
    """Internal: a worm's head reached a channel whose cable is down.

    The packet is lost on the wire (the switch output port is dead);
    the worm aborts, releases everything it holds, and reports the
    loss through ``fabric.on_worm_lost``.
    """

    def __init__(self, channel: Channel) -> None:
        super().__init__(channel)
        self.channel = channel

#: Tolerance for accumulated float rounding in head-arrival schedules.
#: ``head_at_input`` is built by summing hop latencies while ``sim.now``
#: advances through the same quantities in a different association
#: order, so their difference can go epsilon-negative on long routes.
TIME_EPS_NS = 1e-6


def _forward_delay(target_ns: float, now_ns: float) -> float:
    """``target_ns - now_ns`` clamped against float rounding.

    Deltas in ``(-TIME_EPS_NS, 0)`` are rounding noise and clamp to
    zero; anything more negative is a real scheduling bug and raises.
    """
    delta = target_ns - now_ns
    if delta >= 0.0:
        return delta
    if delta > -TIME_EPS_NS:
        return 0.0
    raise AssertionError(
        f"worm scheduled into the past: target {target_ns} is"
        f" {-delta} ns before now {now_ns}"
    )


#: Minimum clean-channel prefix worth flying closed form.  Two means
#: at least the injection cable plus one switch output — a one-channel
#: prefix saves nothing over going stepped from the start.
_MIN_EXPRESS_PREFIX = 2


class WormObserver(Protocol):
    """Destination-side hooks (implemented by the NIC firmware).

    ``on_header`` may return an event: the worm then stalls on the
    wire (holding its channels) until it triggers — receive-buffer
    backpressure.
    """

    def on_header(self, worm: "Worm", t: float) -> Optional[object]:
        """First bytes arrived; may return a gate event to stall."""
        ...

    def on_complete(self, worm: "Worm", t: float) -> None:
        """Last byte arrived; channels already released."""
        ...


class Worm:
    """One packet traversing one route segment.

    Parameters
    ----------
    sim, fabric, timings:
        Simulation context.
    segment:
        The source-route segment to follow (src may be a host NIC or an
        in-transit host re-injecting).
    image:
        Packet bytes *as injected for this segment* (route bytes for
        this segment leading).
    observer:
        Destination NIC hooks.
    meta:
        Free-form dict propagated across segments (packet id, timestamps).
    """

    __slots__ = (
        "sim", "fabric", "timings", "segment", "image", "observer", "meta",
        "worm_id", "inject_time", "header_time", "complete_time",
        "blocked_ns", "_held", "_held_keys", "_plan", "_lanes",
        "_lane_keys", "_claimed",
        "_express_token", "_express_live", "_express_materialized",
        "_express_hops", "_acq", "_image_out", "_early", "_remaining",
        "_killed", "_active_proc", "_span", "_hop_times",
    )

    _next_worm_id = 0

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        segment: SourceRoute,
        image: PacketImage,
        observer: WormObserver,
        meta: Optional[dict] = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.timings: Timings = fabric.timings
        self.segment = segment
        self.image = image
        self.observer = observer
        self.meta = meta if meta is not None else {}
        Worm._next_worm_id += 1
        self.worm_id = Worm._next_worm_id
        # Filled in while running:
        self.inject_time: Optional[float] = None
        self.header_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.blocked_ns: float = 0.0
        #: Lane resources held (grant order) and their lane keys.
        self._held: list = []
        self._held_keys: set[tuple[int, int, int]] = set()
        self._plan: Optional[FlightPlan] = None
        #: Per-channel lane assignment and lane keys, chosen by the
        #: fabric's lane policy at launch and fixed for the flight.
        self._lanes: tuple[int, ...] = ()
        self._lane_keys: tuple = ()
        self._claimed = False
        # Express-lane state.  ``_express_live`` marks a flight whose
        # channels are held only virtually; bumping ``_express_token``
        # cancels any scheduled express callbacks (they capture the
        # token at schedule time and no-op on mismatch).
        self._express_token = 0
        self._express_live = False
        self._express_materialized = False
        #: Channels held virtually by the current express flight:
        #: ``len(plan.channels)`` for a full flight, the claim-horizon
        #: prefix length for a partial one.  Interrupt handling and the
        #: kill-time trace replay never look past this count.
        self._express_hops = 0
        self._acq: list[float] = []
        self._image_out: Optional[PacketImage] = None
        self._early = 0.0
        self._remaining = 0.0
        self._killed = False
        #: The process currently driving this worm (the launch process,
        #: then a gated or demoted tail if one takes over).  ``kill()``
        #: interrupts it; a fully-virtual express flight has none.
        self._active_proc = None
        # Span tracing: the open "wire" span and the per-channel
        # (request, acquire) times feeding its hop children.  Both stay
        # None unless ``fabric.tracer`` is set at launch.
        self._span = None
        self._hop_times: Optional[list[tuple[float, float]]] = None

    # ------------------------------------------------------------------

    def launch(self) -> None:
        """Start the worm process at the current simulation time."""
        self._active_proc = self.sim.process(
            self._run(), name=f"worm{self.worm_id}")

    def kill(self) -> None:
        """Tear down an in-flight worm (fault injection).

        Cancels any scheduled express callbacks, interrupts whichever
        process is driving the worm, and releases every channel hold,
        queued request, and claim.  Idempotent; a no-op once the worm
        has completed.
        """
        if self._killed or self.complete_time is not None:
            return
        self._killed = True
        self._express_token += 1  # cancels scheduled express callbacks
        self._express_live = False
        proc = self._active_proc
        if proc is not None and proc.alive:
            proc.interrupt("fault")
        else:
            # No generator to unwind (virtual or materialized express
            # flight): settle the channel state synchronously.
            self._abort()

    def _run(self):
        try:
            yield from self._flight()
        except Interrupt:
            self._abort()
        except _LinkDown:
            self._abort()
            self._notify_lost()
        return self

    def _flight(self):
        sim, fabric = self.sim, self.fabric
        t = self.timings
        seg = self.segment
        self.inject_time = sim.now

        plan = fabric.flight_plan(seg)
        self._plan = plan
        lanes = fabric.select_lanes(plan)
        self._lanes = lanes
        self._lane_keys = plan.lane_keys(lanes)
        # One route decode per segment, shared by both paths: the
        # switches' route-byte stripping validated and applied in a
        # single cursor advance.
        self._image_out = self.image.consume_route_bytes(seg.ports)
        wire_len = self._image_out.wire_length
        self._early = t.wire_time(min(t.early_recv_bytes, wire_len))
        self._remaining = t.wire_time(wire_len) - self._early

        tracer = fabric.tracer
        if tracer is not None:
            self._trace_begin(tracer)

        # Interrupt intersecting express flights *before* looking at
        # channel state (their holds must be observable from here on),
        # then claim our own lane assignment.
        horizon = fabric.claim_horizon(self._lane_keys, sim.now)
        fabric.register_claims(self, self._lane_keys)
        self._claimed = True

        if fabric.express_enabled and not plan.has_duplicate:
            n_channels = len(plan.channels)
            if horizon == n_channels and self._express_eligible(plan):
                self._launch_express(plan, n_channels)
                return self
            if fabric.express_horizon:
                prefix = self._express_prefix(plan, horizon)
                if prefix >= _MIN_EXPRESS_PREFIX:
                    self._launch_express(plan, prefix)
                    return self
        fabric.express_stats.fallbacks += 1
        fabric.express_stats.stepped_hops += plan.n_hops
        yield from self._run_stepped(plan)
        return self

    # -- span tracing ---------------------------------------------------

    def _trace_begin(self, tracer) -> None:
        """Open this segment's "wire" span (tracer known non-None).

        Firmware-driven worms parent under the packet's attempt span
        and are skipped entirely for unsampled packets; bare worms
        (tests, microbenchmarks) root their own trace.  Everything
        recorded here is lane-independent: the express and stepped
        paths produce bit-identical span trees for the same flight.
        """
        parent = None
        tp = self.meta.get("tp")
        attrs = {}
        if tp is not None:
            ctx = tp.trace
            if ctx is None:
                return  # unsampled packet
            parent = ctx.attempt
            attrs["seg"] = tp.seg_index
        tag = self.meta.get("tag")
        if tag is not None:
            attrs["tag"] = tag
        seg = self.segment
        self._span = tracer.begin(
            "wire", self.sim.now, parent=parent,
            component=f"wire[{seg.src}->{seg.dst}]",
            src=seg.src, dst=seg.dst,
            bytes=self._image_out.wire_length, **attrs)
        self._hop_times = []

    def _trace_close(self, status: str = "ok") -> None:
        """Close the wire span, emitting its per-hop children.

        Hop spans run from channel request to channel grant; a
        never-interrupted express flight materializes them from its
        closed-form acquire clock (the same floats the stepped
        generator would have recorded).  A killed virtual express
        flight contributes only the holds mature at kill time —
        exactly the channels its stepped twin would have acquired.
        """
        span = self._span
        if span is None:
            return
        self._span = None
        tracer = self.fabric.tracer
        hops = self._hop_times or []
        if not hops and self._acq:
            now = self.sim.now
            hops = [(a, a)
                    for a in self._acq[:self._express_hops] if a <= now]
        if self.fabric.n_lanes > 1:
            # Lane occupancy rides on the hop spans; omitted entirely
            # on single-lane fabrics so their dumps stay byte-stable.
            lanes = self._lanes
            for i, (t_req, t_acq) in enumerate(hops):
                tracer.begin(f"hop{i}", t_req, parent=span,
                             component=span.component,
                             lane=lanes[i]).close(t_acq)
        else:
            for i, (t_req, t_acq) in enumerate(hops):
                tracer.begin(f"hop{i}", t_req, parent=span,
                             component=span.component).close(t_acq)
        if self.header_time is not None:
            span.attrs["header"] = self.header_time
        span.attrs["blocked_ns"] = self.blocked_ns
        span.close(self.sim.now, status)
        if status != "ok":
            tp = self.meta.get("tp")
            if tp is not None and tp.trace is not None:
                tp.trace.attempt.close(self.sim.now, status)

    # -- express lane ---------------------------------------------------

    def _express_eligible(self, plan: FlightPlan) -> bool:
        """Whole-route-free check (claim conflicts already handled)."""
        # A destination NIC with an *enabled* memory arbiter derives
        # engine speeds from live counters; the express lane would
        # start its recv DMA accounting at header time instead of
        # head-arrival time, which that arbiter could observe.
        arbiter = getattr(getattr(self.observer, "nic", None),
                          "arbiter", None)
        if arbiter is not None and arbiter.enabled:
            return False
        down = self.fabric.down_keys
        if down and not down.isdisjoint(plan.keys):
            # A dead cable on the route: take the stepped path so the
            # head is lost at the down channel with exact timing.
            return False
        for ch, lane in zip(plan.channels, self._lanes):
            res = ch.lanes[lane]
            if not res.free or res.queue_length:
                return False
        return True

    def _express_prefix(self, plan: FlightPlan, horizon: int) -> int:
        """Length of the clean channel prefix for a partial flight.

        Channels strictly below the returned index are unclaimed
        (``horizon`` came from the claim index), up, and their assigned
        lanes free with empty queues.  Capped at ``n_hops`` so the
        final channel — and with it the destination epilogue, gates,
        and arbiter accounting — always runs stepped.
        """
        limit = min(horizon, plan.n_hops)
        down = self.fabric.down_keys
        chans = plan.channels
        lanes = self._lanes
        for i in range(limit):
            ch = chans[i]
            if down and ch.key in down:
                return i
            res = ch.lanes[lanes[i]]
            if not res.free or res.queue_length:
                return i
        return limit

    def _launch_express(self, plan: FlightPlan, hold: int) -> None:
        """Fly ``hold`` channels of the segment in closed form.

        ``hold == len(plan.channels)`` is the full express flight: two
        calendar entries (header arrival, completion).  A smaller
        ``hold`` is a claim-horizon prefix flight: the clock replays
        through the request time of ``channels[hold]`` and a single
        planned-demotion entry resumes the stepped generator there —
        the contended suffix then requests lanes hop by hop at the
        exact instants its stepped twin would have.

        The clock replay below performs the *exact* float-addition
        sequence of the stepped generator (``now = now + delay`` per
        hop, never ``now = head``), so every derived timestamp is
        bit-identical to the stepped path's.
        """
        sim, t = self.sim, self.timings
        chans = plan.channels
        full = hold == len(chans)
        now = sim.now
        acq = [now]
        head = now + chans[0].prop_ns + t.link_byte_ns
        for h in range(plan.n_hops if full else hold):
            out = chans[h + 1]
            delay = _forward_delay(head, now)
            if delay > 0.0:
                now = now + delay
            acq.append(now)
            head = now + plan.falls[h] + out.prop_ns

        self._acq = acq
        self._express_hops = hold
        self._express_live = True
        stats = self.fabric.express_stats
        stats.hits += 1
        token = self._express_token
        if not full:
            # acq[hold] is the stepped request time of the first
            # channel past the prefix — the demotion instant.
            stats.partial += 1
            sim.schedule_at(acq[hold],
                            lambda: self._express_demote(token, hold))
            return
        delay = _forward_delay(head, now)
        if delay > 0.0:
            now = now + delay
        arrival = now
        h_time = arrival + self._early
        sim.schedule_at(h_time,
                        lambda: self._express_header(token, arrival))
        if self._remaining > 0:
            c_time = h_time + self._remaining
        else:
            c_time = h_time
        sim.schedule_at(c_time, lambda: self._express_complete(token))

    def _express_demote(self, token: int, hold: int) -> None:
        """Planned demotion of a prefix flight at ``acq[hold]``.

        Reached in two states: still virtual (every prefix acquire
        time has matured — ``acq`` is non-decreasing — so all holds
        materialise here), or already materialised by a contender
        interrupt (the holds are real and are skipped).  Either way
        the stepped continuation starts, via ``process_now``, at the
        exact calendar instant the stepped worm would have requested
        ``channels[hold]``.
        """
        if token != self._express_token or self._killed:
            return
        plan, acq = self._plan, self._acq
        chans = plan.channels
        lanes, keys = self._lanes, self._lane_keys
        self._express_live = False
        for i in range(hold):
            if keys[i] in self._held_keys:
                continue
            res = chans[i].lanes[lanes[i]]
            ok = res.try_acquire(owner=self)
            assert ok, "express-held lane was not free at demotion"
            note = getattr(res, "note_acquired_at", None)
            if note is not None:
                note(self, acq[i])
            self._held.append(res)
            self._held_keys.add(keys[i])
        if self._hop_times is not None:
            # Prefix holds were uncontended: request == grant at the
            # closed-form acquire instants, as the stepped generator
            # would have recorded.
            self._hop_times = [(a, a) for a in acq[:hold]]
        self.fabric.express_stats.stepped_hops += plan.n_hops - (hold - 1)
        self._spawn_demoted(hold - 1)

    def _express_header(self, token: int, arrival: float) -> None:
        """Early-recv notification (stepped path: after the first
        ``early_recv_bytes`` landed)."""
        if token != self._express_token:
            return
        sim = self.sim
        self.header_time = arrival
        self.image = self._image_out
        arbiter = getattr(getattr(self.observer, "nic", None),
                          "arbiter", None)
        if arbiter is not None:
            arbiter.engine_start("recv_dma")
        gate = self.observer.on_header(self, sim.now)
        if gate is None:
            return  # completion entry stays armed
        # Receive-buffer backpressure: the tail demotes to a process
        # that waits out the gate (and the remaining bytes) exactly as
        # the stepped path would.
        self._express_token += 1  # cancel the scheduled completion
        self._active_proc = sim.process(
            self._gated_tail(gate, arbiter),
            name=f"worm{self.worm_id}-gated")

    def _gated_tail(self, gate, arbiter):
        sim = self.sim
        try:
            try:
                yield gate
                if self._remaining > 0:
                    yield Timeout(self._remaining)
            finally:
                if arbiter is not None:
                    arbiter.engine_stop("recv_dma")
        except Interrupt:
            self._abort()
            return
        self.complete_time = sim.now
        self._express_release()
        self._trace_close()
        self.observer.on_complete(self, sim.now)

    def _express_complete(self, token: int) -> None:
        if token != self._express_token:
            return
        sim = self.sim
        arbiter = getattr(getattr(self.observer, "nic", None),
                          "arbiter", None)
        if arbiter is not None:
            arbiter.engine_stop("recv_dma")
        self.complete_time = sim.now
        self._express_release()
        self._trace_close()
        self.observer.on_complete(self, sim.now)

    def _express_release(self) -> None:
        """Tail drained: settle channel holds and drop claims."""
        if self._hop_times is not None and not self._hop_times:
            # Fully virtual flight: replay the closed-form acquire
            # clock into the hop record (uncontended, so request ==
            # grant — bit-identical to the stepped lane).
            self._hop_times = [(a, a) for a in self._acq]
        self._express_live = False
        if self._express_materialized or self._held:
            self._release_all()
            return
        # Fully virtual flight: nothing ever queued on these lanes
        # (any contender would have materialised them), so only the
        # channel-utilisation meters need the hold recorded.
        acq = self._acq
        lanes = self._lanes
        for i, ch in enumerate(self._plan.channels):
            record = getattr(ch.lanes[lanes[i]], "record_hold", None)
            if record is not None:
                record(acq[i], self.complete_time)
        self._release_claims()

    def _express_interrupted(self, t1: float) -> None:
        """A contender is about to look at our channels (time ``t1``).

        Materialise every hold whose closed-form acquire time has
        matured (backdating the meters), and demote any immature
        suffix back to the stepped generator at its natural request
        time.  Full demotion can only happen before header arrival —
        by then every acquire time has matured — so the scheduled
        header/complete entries are kept whenever the whole path
        materialises.
        """
        plan, acq = self._plan, self._acq
        chans = plan.channels
        lanes, keys = self._lanes, self._lane_keys
        limit = self._express_hops
        j = limit
        for i in range(limit):
            if acq[i] > t1:
                j = i
                break
        for i in range(j):
            res = chans[i].lanes[lanes[i]]
            ok = res.try_acquire(owner=self)
            assert ok, "express-held lane was not free at interrupt"
            note = getattr(res, "note_acquired_at", None)
            if note is not None:
                note(self, acq[i])
            self._held.append(res)
            self._held_keys.add(keys[i])
        if self._hop_times is not None:
            # Materialised holds were uncontended, so request == grant
            # at the closed-form acquire instants — exactly what the
            # stepped generator would have recorded.
            self._hop_times = [(a, a) for a in acq[:j]]
        self._express_live = False
        if j == limit:
            # Every virtually-held channel acquired.  A full flight's
            # header/completion entries remain valid; a prefix flight's
            # planned demotion stays armed (token untouched) and will
            # find its holds already real.
            self._express_materialized = True
            return
        # Immature suffix: cancel the express entries and resume the
        # stepped generator at the instant it would have requested the
        # next channel.
        self._express_token += 1
        self.fabric.express_stats.stepped_hops += plan.n_hops - (j - 1)
        hop = j - 1
        sim = self.sim
        # process_now, not process: the continuation's first action is
        # the channel request the stepped worm would have made at this
        # exact calendar position, and it must not lose same-time FIFO
        # races through an extra immediate-lane hop.
        sim.schedule_at(acq[j], lambda: self._spawn_demoted(hop))

    def _spawn_demoted(self, hop: int) -> None:
        if self._killed:
            return
        self._active_proc = self.sim.process_now(
            self._demoted_tail(hop), name=f"worm{self.worm_id}-demoted")

    def _demoted_tail(self, hop: int):
        """Stepped continuation from switch hop ``hop`` onwards.

        Entered at the natural request time of ``channels[hop + 1]``;
        the prefix up to ``channels[hop]`` is already held with exact
        stepped timestamps.
        """
        try:
            yield from self._demoted_tail_body(hop)
        except Interrupt:
            self._abort()
        except _LinkDown:
            self._abort()
            self._notify_lost()

    def _demoted_tail_body(self, hop: int):
        sim = self.sim
        plan = self._plan
        out = plan.channels[hop + 1]
        block_start = sim.now
        yield from self._acquire(out, hop + 1)
        self.blocked_ns += sim.now - block_start
        if self._hop_times is not None:
            self._hop_times.append((block_start, sim.now))
        head_at_input = sim.now + plan.falls[hop] + out.prop_ns

        for h in range(hop + 1, plan.n_hops):
            out = plan.channels[h + 1]
            delay = _forward_delay(head_at_input, sim.now)
            if delay > 0.0:
                yield Timeout(delay)
            block_start = sim.now
            yield from self._acquire(out, h + 1)
            self.blocked_ns += sim.now - block_start
            if self._hop_times is not None:
                self._hop_times.append((block_start, sim.now))
            head_at_input = sim.now + plan.falls[h] + out.prop_ns

        delay = _forward_delay(head_at_input, sim.now)
        if delay > 0.0:
            yield Timeout(delay)
        yield from self._finish_stepped()

    # -- stepped lane ---------------------------------------------------

    def _run_stepped(self, plan: FlightPlan):
        sim = self.sim
        t = self.timings

        # Injection channel: host NIC -> first switch.  The NIC's send
        # DMA only starts when the wire is free (Stop&Go at the source).
        out = plan.channels[0]
        block_start = sim.now
        yield from self._acquire(out, 0)
        if self._hop_times is not None:
            self._hop_times.append((block_start, sim.now))
        # Leading byte reaches the first switch after propagation + one
        # byte time on the wire.
        head_at_input = sim.now + out.prop_ns + t.link_byte_ns

        for h in range(plan.n_hops):
            out = plan.channels[h + 1]
            # Routing decision + crossbar setup happen as the header
            # arrives; the output may be busy (wormhole blocking).
            delay = _forward_delay(head_at_input, sim.now)
            if delay > 0.0:
                yield Timeout(delay)
            block_start = sim.now
            yield from self._acquire(out, h + 1)
            self.blocked_ns += sim.now - block_start
            if self._hop_times is not None:
                self._hop_times.append((block_start, sim.now))
            head_at_input = sim.now + plan.falls[h] + out.prop_ns

        # Head (first byte past all switches) reaches the destination NIC.
        delay = _forward_delay(head_at_input, sim.now)
        if delay > 0.0:
            yield Timeout(delay)
        yield from self._finish_stepped()

    def _finish_stepped(self):
        """Destination-side epilogue shared by every stepped variant."""
        sim = self.sim
        self.header_time = sim.now
        self.image = self._image_out  # route bytes consumed; NIC sees type

        # The destination NIC's receive packet DMA streams the packet
        # into SRAM from here on (feeds the LANai memory arbiter).
        arbiter = getattr(getattr(self.observer, "nic", None),
                          "arbiter", None)
        if arbiter is not None:
            arbiter.engine_start("recv_dma")
        try:
            # Early-recv notification after the first few bytes land.
            # The observer may return a gate event (no receive buffer
            # free): the packet then stalls on the wire, channels held
            # — Stop&Go backpressure.
            yield Timeout(self._early)
            gate = self.observer.on_header(self, sim.now)
            if gate is not None:
                yield gate

            # Remaining bytes stream in at link rate (cut-through
            # pipeline: the body follows the header with no further
            # per-switch cost).
            if self._remaining > 0:
                yield Timeout(self._remaining)
        finally:
            if arbiter is not None:
                arbiter.engine_stop("recv_dma")
        self.complete_time = sim.now
        self._release_all()
        self._trace_close()
        self.observer.on_complete(self, sim.now)

    # ------------------------------------------------------------------

    def _acquire(self, channel: Channel, index: int):
        key = self._lane_keys[index]
        if key in self._held_keys:
            # A wormhole packet that routes back onto a lane it still
            # occupies waits for itself forever — this deadlocks on
            # real hardware too.  Fail loudly so hand-built test
            # routes get a diagnosis, not a hang.
            raise RuntimeError(
                f"worm {self.worm_id} re-enters channel {channel!r} it"
                " already holds (self-deadlocking route)"
            )
        down = self.fabric.down_keys
        if down and channel.key in down:
            # The output port feeding this cable is dead: the head
            # cannot advance and the packet is lost on the wire.
            raise _LinkDown(channel)
        res = channel.lanes[self._lanes[index]]
        req = res.request(owner=self)
        yield req
        self._held.append(res)
        self._held_keys.add(key)

    def _abort(self) -> None:
        """Fault teardown: cancel queued requests, settle stray grants,
        and release every hold and claim.

        A request granted in the same instant the worm was killed (the
        holder released just before the interrupt landed) leaves the
        worm in the resource's holder list without a ``_held`` entry;
        such grants are released here so the channel is not wedged.
        """
        plan = self._plan
        if plan is not None:
            lanes, keys = self._lanes, self._lane_keys
            for i, ch in enumerate(plan.channels):
                if keys[i] in self._held_keys:
                    continue
                res = ch.lanes[lanes[i]]
                if not res.cancel(self) and self in res.holders():
                    res.release(owner=self)
        self._release_all()
        self._trace_close("killed")

    def _notify_lost(self) -> None:
        hook = self.fabric.on_worm_lost
        if hook is not None:
            hook(self)

    def _release_all(self) -> None:
        for res in self._held:
            res.release(owner=self)
        self._held.clear()
        self._held_keys.clear()
        self._release_claims()

    def _release_claims(self) -> None:
        if self._claimed:
            self.fabric.release_claims(self, self._lane_keys)
            self._claimed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Worm {self.worm_id} seg {self.segment.src}->{self.segment.dst}"
            f" len={self.image.wire_length}B>"
        )
