"""Runtime wormhole-deadlock detection.

The CDG analysis (:mod:`repro.routing.cdg`) proves deadlock-freedom
*statically*.  This module closes the loop dynamically: it inspects
the live simulation's **wait-for graph** — worm A waits for a channel
held by worm B, who waits for a channel held by C, ... — and reports
any cycle, which is a true wormhole deadlock (every packet in the
cycle holds a channel another needs; none can ever advance).

Uses:

* a **watchdog** armed on a network under load: for up*/down* and ITB
  routing it must stay silent forever (their CDGs are acyclic); for
  raw minimal routing on a cyclic fabric it catches the deadlock the
  theory predicts — the dynamic counterpart of
  ``tests/test_cdg.py``,
* a post-mortem tool when a simulation stops making progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork

__all__ = ["DeadlockReport", "detect_deadlock", "DeadlockWatchdog"]


@dataclass
class DeadlockReport:
    """Result of one wait-for-graph inspection."""

    cycle: list = field(default_factory=list)  # worms forming the cycle
    n_waiting: int = 0
    n_holding: int = 0

    @property
    def deadlocked(self) -> bool:
        return bool(self.cycle)

    def describe(self) -> str:
        """Human-readable account of the cycle (empty-safe)."""
        if not self.cycle:
            return "no deadlock: wait-for graph is acyclic"
        chain = " -> ".join(
            f"worm{w.worm_id}({w.segment.src}->{w.segment.dst})"
            for w in self.cycle
        )
        return (f"DEADLOCK among {len(self.cycle)} packets: {chain}"
                f" -> worm{self.cycle[0].worm_id}")


def _wait_for_edges(net: "BuiltNetwork") -> dict:
    """worm -> worm edges: A waits on a lane somebody holds.

    Every lane of every channel is inspected — worms on different
    lanes of one physical link never wait on each other, which is
    exactly the independence virtual channels buy.
    """
    edges: dict = {}
    holding = 0
    waiting = 0
    for channel in net.fabric.channels():
        for resource in channel.lanes:
            holders = [h for h in resource.holders()
                       if hasattr(h, "worm_id")]
            holding += len(holders)
            if not holders:
                continue
            # FIFO waiters on this lane wait for every current holder
            # (capacity is 1 on fabric lanes, so exactly one).
            waiters = getattr(resource, "_waiters", ())
            for owner, _ev in list(waiters):
                if hasattr(owner, "worm_id"):
                    waiting += 1
                    edges.setdefault(owner, set()).update(holders)
    return {"edges": edges, "holding": holding, "waiting": waiting}


def detect_deadlock(net: "BuiltNetwork") -> DeadlockReport:
    """Inspect the live wait-for graph once; return any cycle found."""
    info = _wait_for_edges(net)
    edges = info["edges"]
    report = DeadlockReport(n_waiting=info["waiting"],
                            n_holding=info["holding"])

    # Iterative DFS cycle detection over the worm wait-for graph.
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict = {}
    parent: dict = {}

    for start in edges:
        if color.get(start, WHITE) != WHITE:
            continue
        stack = [(start, iter(edges.get(start, ())))]
        color[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                state = color.get(nxt, WHITE)
                if state == GREY:
                    # Found a cycle: unwind it via the parent chain.
                    cycle = [node]
                    cur = node
                    while cur is not nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    report.cycle = cycle
                    return report
                if state == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(edges.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return report


class DeadlockWatchdog:
    """Periodic deadlock inspection during a run.

    Schedules itself every ``period_ns``; on detection it records the
    report and (by default) raises, turning a silent hang into a
    diagnosable failure.
    """

    def __init__(self, net: "BuiltNetwork", period_ns: float = 50_000.0,
                 raise_on_deadlock: bool = True) -> None:
        self.net = net
        self.period_ns = period_ns
        self.raise_on_deadlock = raise_on_deadlock
        self.reports: list[DeadlockReport] = []
        self.detected: Optional[DeadlockReport] = None
        self._armed = True
        net.sim.schedule(period_ns, self._check)

    def disarm(self) -> None:
        """Stop future inspections (pending timers become no-ops)."""
        self._armed = False

    def _check(self) -> None:
        if not self._armed:
            return
        report = detect_deadlock(self.net)
        self.reports.append(report)
        if report.deadlocked:
            self.detected = report
            if self.raise_on_deadlock:
                raise RuntimeError(report.describe())
            return
        self.net.sim.schedule(self.period_ns, self._check)
