"""Byte-level Stop&Go flow control: the reference model.

The main simulator models a wormhole packet at *packet granularity*:
a blocked worm holds every channel between its tail and head, and the
body streams behind the head with no per-byte bookkeeping.  That is an
approximation of Myrinet's real mechanism — **Stop&Go**: each receiver
maintains a small slack buffer; when its occupancy crosses the STOP
threshold it sends a STOP control symbol upstream, and a GO symbol
when it drains below the GO threshold.  The slack absorbs the
round-trip of those symbols, so the sender never overruns the buffer
and no byte is lost.

This module implements the byte-level mechanism for a single channel
(sender -> receiver over a cable with propagation delay), which lets
tests *quantify* the approximation:

* an unblocked transfer finishes in exactly ``bytes x byte_time``
  (identical to the packet-granularity model), and
* when the receiver stalls mid-packet, the sender keeps transmitting
  only for the slack's worth of bytes and then stops — the extra
  "progress" a blocked packet makes versus the whole-path-holding
  approximation is bounded by the slack size (tens of bytes on real
  Myrinet, i.e. well under one packet).

The Myrinet slack-buffer sizing rule also lives here
(:func:`required_slack_bytes`): the buffer must cover the bytes in
flight during one control-symbol round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Event, Simulator, Timeout

__all__ = ["StopGoChannel", "StopGoStats", "required_slack_bytes"]


def required_slack_bytes(
    prop_ns: float, byte_ns: float, hysteresis_bytes: int = 8
) -> int:
    """Minimum slack so Stop&Go never overruns or starves.

    One round trip of control symbols (2 x propagation) of in-flight
    bytes, plus the stop/go hysteresis band.
    """
    in_flight = int(2.0 * prop_ns / byte_ns) + 1
    return in_flight + hysteresis_bytes


@dataclass
class StopGoStats:
    """Counters for one byte-level transfer."""

    bytes_sent: int = 0
    bytes_delivered: int = 0
    stops_sent: int = 0
    gos_sent: int = 0
    sender_stalled_ns: float = 0.0
    max_slack_occupancy: int = 0


class StopGoChannel:
    """One directed cable with byte-level Stop&Go flow control.

    The receiver drains the slack buffer at ``drain_byte_ns`` per byte
    while unblocked; calling :meth:`block_receiver` /
    :meth:`unblock_receiver` models downstream wormhole blocking.

    Bytes move in simulation quanta of one byte time — small-scale by
    design (this is a reference model for validation tests, not the
    engine the experiments run on).
    """

    def __init__(
        self,
        sim: Simulator,
        prop_ns: float,
        byte_ns: float,
        slack_bytes: Optional[int] = None,
        stop_threshold: Optional[int] = None,
        go_threshold: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.prop_ns = prop_ns
        self.byte_ns = byte_ns
        self.slack_bytes = slack_bytes if slack_bytes is not None else \
            required_slack_bytes(prop_ns, byte_ns)
        self.stop_threshold = (stop_threshold if stop_threshold is not None
                               else max(1, self.slack_bytes // 2))
        self.go_threshold = (go_threshold if go_threshold is not None
                             else max(0, self.stop_threshold // 2))
        if not (0 <= self.go_threshold < self.stop_threshold
                <= self.slack_bytes):
            raise ValueError("need 0 <= go < stop <= slack")
        self.stats = StopGoStats()
        self._occupancy = 0
        self._sender_stopped = False
        self._receiver_blocked = False
        self._done: Optional[Event] = None

    # -- receiver-side control ------------------------------------------

    def block_receiver(self) -> None:
        """Model downstream wormhole blocking: stop draining."""
        self._receiver_blocked = True

    def unblock_receiver(self) -> None:
        """Downstream unblocked: resume draining the slack buffer."""
        self._receiver_blocked = False

    @property
    def slack_occupancy(self) -> int:
        return self._occupancy

    # -- the transfer ------------------------------------------------------

    def transfer(self, n_bytes: int) -> Event:
        """Send ``n_bytes``; the event fires when the last byte has
        been *delivered* (drained past the slack buffer)."""
        if self._done is not None:
            raise RuntimeError("one transfer at a time on this channel")
        self._done = Event(self.sim, name="stopgo-done")
        self.sim.process(self._sender(n_bytes), name="stopgo-send")
        self.sim.process(self._receiver(n_bytes), name="stopgo-recv")
        return self._done

    def _sender(self, n_bytes: int):
        stall_started: Optional[float] = None
        while self.stats.bytes_sent < n_bytes:
            if self._sender_stopped:
                if stall_started is None:
                    stall_started = self.sim.now
                yield Timeout(self.byte_ns)
                continue
            if stall_started is not None:
                self.stats.sender_stalled_ns += self.sim.now - stall_started
                stall_started = None
            yield Timeout(self.byte_ns)
            self.stats.bytes_sent += 1
            # The byte lands in the slack buffer one propagation later.
            self.sim.schedule(self.prop_ns, self._byte_arrives)

    def _byte_arrives(self) -> None:
        self._occupancy += 1
        self.stats.max_slack_occupancy = max(
            self.stats.max_slack_occupancy, self._occupancy)
        if self._occupancy > self.slack_bytes:
            raise RuntimeError(
                "slack overrun: Stop&Go failed to protect the buffer"
                f" (occupancy {self._occupancy} > {self.slack_bytes})"
            )
        if self._occupancy >= self.stop_threshold and not self._sender_stopped:
            # STOP symbol travels upstream one propagation delay.
            self.stats.stops_sent += 1
            self.sim.schedule(self.prop_ns, self._set_stop)

    def _set_stop(self) -> None:
        self._sender_stopped = True

    def _set_go(self) -> None:
        self._sender_stopped = False

    def _receiver(self, n_bytes: int):
        while self.stats.bytes_delivered < n_bytes:
            if self._receiver_blocked or self._occupancy == 0:
                yield Timeout(self.byte_ns)
                continue
            yield Timeout(self.byte_ns)
            if self._receiver_blocked or self._occupancy == 0:
                continue
            self._occupancy -= 1
            self.stats.bytes_delivered += 1
            if (self._sender_stopped
                    and self._occupancy <= self.go_threshold):
                self.stats.gos_sent += 1
                self.sim.schedule(self.prop_ns, self._set_go)
        done, self._done = self._done, None
        if done is not None and not done.triggered:
            done.succeed(self.stats)
