"""Byte-level Stop&Go flow control: the reference model.

The main simulator models a wormhole packet at *packet granularity*:
a blocked worm holds every channel between its tail and head, and the
body streams behind the head with no per-byte bookkeeping.  That is an
approximation of Myrinet's real mechanism — **Stop&Go**: each receiver
maintains a small slack buffer; when its occupancy crosses the STOP
threshold it sends a STOP control symbol upstream, and a GO symbol
when it drains below the GO threshold.  The slack absorbs the
round-trip of those symbols, so the sender never overruns the buffer
and no byte is lost.

This module implements the byte-level mechanism for a single channel
(sender -> receiver over a cable with propagation delay), which lets
tests *quantify* the approximation:

* an unblocked transfer finishes in exactly ``bytes x byte_time``
  (identical to the packet-granularity model), and
* when the receiver stalls mid-packet, the sender keeps transmitting
  only for the slack's worth of bytes and then stops — the extra
  "progress" a blocked packet makes versus the whole-path-holding
  approximation is bounded by the slack size (tens of bytes on real
  Myrinet, i.e. well under one packet).

Burst advancement
-----------------
Earlier revisions drove the byte dynamics with two generator processes
waking every byte time on the main event calendar — two engine
dispatches per simulated byte, and an idle (blocked) channel still
burned calendar slots polling.  The model now advances *virtually*:
the per-byte dynamics run on a private micro-calendar
(:class:`_Micro`) that is replayed lazily up to each observation point
(a ``stats`` read, ``block_receiver`` / ``unblock_receiver``), and
long uniform stretches — steady flow, or a fully stalled sender — are
skipped in one closed-form step when a whole byte-time cycle repeats
exactly (guarded by a dyadic float-exactness check, so skipped cycles
produce bit-identical times to stepping them).  The only thing ever
placed on the real calendar is the single projected completion
callback; an idle channel schedules *nothing*.

The micro-calendar replicates the retired generator model event for
event — same wake grid, same (time, seq) FIFO tie-breaking, same
scheduling order within an instant — so every
:class:`StopGoStats` field, including ``sender_stalled_ns`` and
``max_slack_occupancy``, is bit-identical to the per-byte
implementation (``tests/test_stopgo_equivalence.py`` checks this
against a preserved copy of the generator model).

The Myrinet slack-buffer sizing rule also lives here
(:func:`required_slack_bytes`): the buffer must cover the bytes in
flight during one control-symbol round trip.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Optional

from repro.sim.engine import Event, Simulator

__all__ = ["LanedStopGo", "StopGoChannel", "StopGoStats",
           "required_slack_bytes"]


def required_slack_bytes(
    prop_ns: float, byte_ns: float, hysteresis_bytes: int = 8
) -> int:
    """Minimum slack so Stop&Go never overruns or starves.

    One round trip of control symbols (2 x propagation) of in-flight
    bytes, plus the stop/go hysteresis band.
    """
    in_flight = int(2.0 * prop_ns / byte_ns) + 1
    return in_flight + hysteresis_bytes


@dataclass
class StopGoStats:
    """Counters for one byte-level transfer."""

    bytes_sent: int = 0
    bytes_delivered: int = 0
    stops_sent: int = 0
    gos_sent: int = 0
    sender_stalled_ns: float = 0.0
    max_slack_occupancy: int = 0


# Micro-calendar event kinds.  The integer values never enter the heap
# ordering (the key is ``(time, seq)``); they only select a handler.
_SENDER = 0
_RECEIVER = 1
_ARRIVE = 2
_SET_STOP = 3
_SET_GO = 4

#: Minimum number of repeating cycles worth skipping in one jump.
_MIN_JUMP = 4

_STATS_UNCHANGED = (0, 0, 0, 0, 0, 0.0)
_STATS_ONE_BYTE = (1, 1, 0, 0, 0, 0.0)


def _shifted_times(times: list[float], step: float, m: int) -> Optional[list[float]]:
    """``t + m*step`` for each ``t`` — only if provably equal to ``m``
    repeated float additions of ``step``.

    All floats are dyadic rationals; a sum on the common dyadic grid is
    exact whenever the result's numerator fits in 53 bits, and then
    every intermediate partial sum (which is smaller) is exact too.
    Returns ``None`` when exactness cannot be guaranteed — the caller
    falls back to stepping cycle by cycle.
    """
    fstep = Fraction(step)
    out: list[float] = []
    for t in times:
        ft = Fraction(t)
        target = ft + m * fstep
        scale = max(ft.denominator, fstep.denominator)  # both powers of two
        if target * scale >= (1 << 53):
            return None
        out.append(float(target))
    return out


class _Micro:
    """Virtual replay of the per-byte Stop&Go dynamics.

    Replicates the retired generator model exactly: sender and
    receiver wake every ``byte_ns`` on a shared grid; a sent byte
    lands in the slack buffer one propagation later; STOP/GO symbols
    take effect one propagation after being emitted.  Events live on a
    private ``(time, seq)`` heap with the engine's FIFO tie-break, and
    handlers schedule in the same order the generator bodies did, so
    the interleaving — and therefore every stats field — is
    bit-identical.
    """

    __slots__ = (
        "byte_ns", "prop_ns", "slack", "stop_thr", "go_thr", "n_target",
        "heap", "seq", "now", "occ", "stopped", "blocked", "stall_started",
        "sent_pending", "drain_pending", "sender_alive", "receiver_alive",
        "complete_time", "frozen", "stats", "prev_cycle",
    )

    def __init__(
        self,
        start: float,
        byte_ns: float,
        prop_ns: float,
        slack: int,
        stop_thr: int,
        go_thr: int,
        n_target: int,
        occ: int,
        stopped: bool,
        blocked: bool,
        stats: StopGoStats,
    ) -> None:
        self.byte_ns = byte_ns
        self.prop_ns = prop_ns
        self.slack = slack
        self.stop_thr = stop_thr
        self.go_thr = go_thr
        self.n_target = n_target
        self.heap: list[tuple[float, int, int]] = []
        self.seq = 0
        self.now = start
        self.occ = occ
        self.stopped = stopped
        self.blocked = blocked
        self.stall_started: Optional[float] = None
        self.sent_pending = False
        self.drain_pending = False
        self.sender_alive = True
        self.receiver_alive = True
        self.complete_time: Optional[float] = None
        self.frozen: Optional[tuple[float, str]] = None
        self.stats = stats
        self.prev_cycle: Optional[tuple[float, tuple, tuple]] = None
        # Same start order as the old ``sim.process`` pair: sender
        # first, receiver second, both at the transfer instant.
        self._schedule(0.0, _SENDER)
        self._schedule(0.0, _RECEIVER)

    # -- plumbing -------------------------------------------------------

    def _schedule(self, delay: float, kind: int) -> None:
        self.seq += 1
        heapq.heappush(self.heap, (self.now + delay, self.seq, kind))

    def clone(self) -> "_Micro":
        twin = _Micro.__new__(_Micro)
        for name in _Micro.__slots__:
            setattr(twin, name, getattr(self, name))
        twin.heap = list(self.heap)
        twin.stats = replace(self.stats)
        return twin

    def _stats_tuple(self) -> tuple:
        s = self.stats
        return (s.bytes_sent, s.bytes_delivered, s.stops_sent, s.gos_sent,
                s.max_slack_occupancy, s.sender_stalled_ns)

    # -- event handlers (transliterated generator bodies) ---------------

    def _dispatch(self, kind: int) -> None:
        if kind == _ARRIVE:
            self._on_arrive()
        elif kind == _SENDER:
            self._sender_wake()
        elif kind == _RECEIVER:
            self._receiver_wake()
        elif kind == _SET_STOP:
            self.stopped = True
        else:
            self.stopped = False

    def _sender_wake(self) -> None:
        st = self.stats
        if self.sent_pending:
            self.sent_pending = False
            st.bytes_sent += 1
            # The byte lands in the slack buffer one propagation later.
            self._schedule(self.prop_ns, _ARRIVE)
        if st.bytes_sent >= self.n_target:
            self.sender_alive = False
            return
        if self.stopped:
            if self.stall_started is None:
                self.stall_started = self.now
        else:
            if self.stall_started is not None:
                st.sender_stalled_ns += self.now - self.stall_started
                self.stall_started = None
            self.sent_pending = True
        self._schedule(self.byte_ns, _SENDER)

    def _on_arrive(self) -> None:
        self.occ += 1
        st = self.stats
        if self.occ > st.max_slack_occupancy:
            st.max_slack_occupancy = self.occ
        if self.occ > self.slack:
            self.frozen = (self.now, (
                "slack overrun: Stop&Go failed to protect the buffer"
                f" (occupancy {self.occ} > {self.slack})"
            ))
            return
        if self.occ >= self.stop_thr and not self.stopped:
            # STOP symbol travels upstream one propagation delay.
            st.stops_sent += 1
            self._schedule(self.prop_ns, _SET_STOP)

    def _receiver_wake(self) -> None:
        st = self.stats
        if self.drain_pending:
            self.drain_pending = False
            if not (self.blocked or self.occ == 0):
                self.occ -= 1
                st.bytes_delivered += 1
                if self.stopped and self.occ <= self.go_thr:
                    st.gos_sent += 1
                    self._schedule(self.prop_ns, _SET_GO)
        if st.bytes_delivered >= self.n_target:
            self.receiver_alive = False
            self.complete_time = self.now
            return
        if not (self.blocked or self.occ == 0):
            self.drain_pending = True
        self._schedule(self.byte_ns, _RECEIVER)

    # -- the drive loop -------------------------------------------------

    def advance(self, target: Optional[float]) -> Optional[str]:
        """Replay dynamics up to ``target`` (strictly before it), or to
        quiescence when ``target`` is ``None``.

        Returns ``"complete"``, ``"overrun"``, ``"stalled"`` (can never
        finish without outside intervention), or ``None`` (ran into
        ``target`` with work remaining).
        """
        heap = self.heap
        while self.receiver_alive and self.frozen is None:
            if not heap:  # pragma: no cover - receiver always reschedules
                return "stalled"
            t, _seq, kind = heap[0]
            if target is not None and t >= target:
                return None
            if kind == (_SENDER if self.sender_alive else _RECEIVER):
                action = self._maybe_jump(t, target)
                if action == "stalled":
                    return "stalled"
                if action == "jumped":
                    continue
            heapq.heappop(heap)
            self.now = t
            self._dispatch(kind)
        if self.frozen is not None:
            return "overrun"
        return "complete"

    def _maybe_jump(self, anchor: float, target: Optional[float]) -> Optional[str]:
        """Detect a repeating one-byte-time cycle at an anchor wake and
        skip ahead in closed form.

        A cycle repeats when the heap (as relative offsets from the
        anchor, in dispatch order) and all scalar state match the
        previous anchor exactly and the stats moved by either one
        sent+delivered byte (steady flow) or nothing (stalled/idle).
        """
        sig = self._signature(anchor)
        stats_now = self._stats_tuple()
        prev, self.prev_cycle = self.prev_cycle, (anchor, sig, stats_now)
        if prev is None:
            return None
        prev_anchor, prev_sig, prev_stats = prev
        if prev_anchor + self.byte_ns != anchor or prev_sig != sig:
            return None
        delta = tuple(a - b for a, b in zip(stats_now, prev_stats))
        if delta == _STATS_ONE_BYTE:
            flowing = True
        elif delta == _STATS_UNCHANGED:
            flowing = False
        else:
            return None
        if not flowing and target is None:
            # Nothing in flight, nothing changing: without an external
            # unblock this state persists forever.
            return "stalled"
        # How many whole cycles may be skipped.
        fb = Fraction(self.byte_ns)
        bounds = []
        if target is not None:
            bounds.append(int((Fraction(target) - Fraction(anchor)) // fb))
        if flowing:
            st = self.stats
            bounds.append(self.n_target - 1 - st.bytes_sent)
            bounds.append(self.n_target - 1 - st.bytes_delivered)
        m = min(bounds)
        if m < _MIN_JUMP:
            return None
        times = [entry[0] for entry in self.heap]
        shifted = _shifted_times(times, self.byte_ns, m)
        if shifted is None:
            return None
        self.heap[:] = [
            (new_t, seq, kind)
            for new_t, (_t, seq, kind) in zip(shifted, self.heap)
        ]
        # A uniform exact shift preserves (time, seq) order, so the
        # list is still a valid heap.
        if flowing:
            self.stats.bytes_sent += m
            self.stats.bytes_delivered += m
        self.prev_cycle = None
        return "jumped"

    def _signature(self, anchor: float) -> tuple:
        rel = tuple((t - anchor, kind) for t, _seq, kind in sorted(self.heap))
        return (rel, self.occ, self.stopped, self.blocked,
                self.sent_pending, self.drain_pending,
                self.sender_alive, self.stall_started)


class StopGoChannel:
    """One directed cable with byte-level Stop&Go flow control.

    The receiver drains the slack buffer at one byte per byte time
    while unblocked; calling :meth:`block_receiver` /
    :meth:`unblock_receiver` models downstream wormhole blocking.

    The byte dynamics are replayed lazily on a private micro-calendar
    (see the module docstring): observable state — :attr:`stats`,
    :attr:`slack_occupancy` — is synchronized to the simulation clock
    on access, and the only real calendar entry is the projected
    completion callback.  Synchronization processes micro-events
    *strictly before* the current instant, matching the engine order
    for control callbacks scheduled ahead of time (their ``seq``
    precedes any same-time channel event).
    """

    def __init__(
        self,
        sim: Simulator,
        prop_ns: float,
        byte_ns: float,
        slack_bytes: Optional[int] = None,
        stop_threshold: Optional[int] = None,
        go_threshold: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.prop_ns = prop_ns
        self.byte_ns = byte_ns
        self.slack_bytes = slack_bytes if slack_bytes is not None else \
            required_slack_bytes(prop_ns, byte_ns)
        self.stop_threshold = (stop_threshold if stop_threshold is not None
                               else max(1, self.slack_bytes // 2))
        self.go_threshold = (go_threshold if go_threshold is not None
                             else max(0, self.stop_threshold // 2))
        if not (0 <= self.go_threshold < self.stop_threshold
                <= self.slack_bytes):
            raise ValueError("need 0 <= go < stop <= slack")
        self._stats = StopGoStats()
        self._blocked = False
        self._stopped = False
        self._micro: Optional[_Micro] = None
        self._done: Optional[Event] = None
        self._generation = 0

    # -- receiver-side control ------------------------------------------

    def block_receiver(self) -> None:
        """Model downstream wormhole blocking: stop draining."""
        self._sync()
        self._blocked = True
        if self._micro is not None:
            self._micro.blocked = True
        self._reproject()

    def unblock_receiver(self) -> None:
        """Downstream unblocked: resume draining the slack buffer."""
        self._sync()
        self._blocked = False
        if self._micro is not None:
            self._micro.blocked = False
        self._reproject()

    @property
    def stats(self) -> StopGoStats:
        """Transfer counters, synchronized to the current sim time."""
        self._sync()
        return self._stats

    @property
    def slack_occupancy(self) -> int:
        self._sync()
        if self._micro is not None:
            return self._micro.occ
        return 0

    # -- the transfer ------------------------------------------------------

    def transfer(self, n_bytes: int) -> Event:
        """Send ``n_bytes``; the event fires when the last byte has
        been *delivered* (drained past the slack buffer)."""
        if self._done is not None:
            raise RuntimeError("one transfer at a time on this channel")
        self._sync()
        occ = self._micro.occ if self._micro is not None else 0
        stopped = self._micro.stopped if self._micro is not None else False
        self._done = Event(self.sim, name="stopgo-done")
        self._micro = _Micro(
            start=self.sim.now,
            byte_ns=self.byte_ns,
            prop_ns=self.prop_ns,
            slack=self.slack_bytes,
            stop_thr=self.stop_threshold,
            go_thr=self.go_threshold,
            n_target=n_bytes,
            occ=occ,
            stopped=stopped,
            blocked=self._blocked,
            stats=self._stats,
        )
        self._reproject()
        return self._done

    # -- internal synchronization ---------------------------------------

    def _sync(self) -> None:
        if self._micro is not None:
            self._micro.advance(self.sim.now)

    def _reproject(self) -> None:
        """Recompute when (whether) the active transfer finishes and
        schedule exactly one real-calendar callback for it."""
        self._generation += 1
        if self._done is None or self._micro is None:
            return
        probe = self._micro.clone()
        outcome = probe.advance(None)
        gen = self._generation
        if outcome == "complete":
            delay = probe.complete_time - self.sim.now
            self.sim.schedule(delay, lambda: self._on_complete(gen))
        elif outcome == "overrun":
            when, message = probe.frozen
            self.sim.schedule(when - self.sim.now,
                              lambda: self._on_overrun(gen, message))
        # "stalled": no callback — an idle channel schedules nothing.

    def _on_complete(self, gen: int) -> None:
        if gen != self._generation or self._done is None:
            return
        self._micro.advance(None)
        done, self._done = self._done, None
        if not done.triggered:
            done.succeed(self._stats)

    def _on_overrun(self, gen: int, message: str) -> None:
        if gen != self._generation:
            return
        self._micro.advance(None)
        raise RuntimeError(message)


class LanedStopGo:
    """N independent Stop&Go credit channels over one physical cable.

    The virtual-channel counterpart of :class:`StopGoChannel`: each
    lane keeps its *own* slack buffer, STOP/GO thresholds, and credit
    state, so blocking the receiver of one lane stalls only that
    lane's sender — the other lanes keep streaming.  This is the
    byte-level reference model for the fabric's multi-lane channels
    (``Fabric(..., lanes=N)``), used by tests to quantify lane
    independence the same way :class:`StopGoChannel` quantifies the
    single-lane packet-granularity approximation.

    Real virtual-channel switches time-multiplex the physical wire
    between lanes flit by flit; like the packet-granularity worm
    model, this reference keeps each lane at full link rate, so lane
    numbers bound the benefit of virtual channels from above (see
    ``docs/TIMING_MODEL.md``).
    """

    def __init__(
        self,
        sim: Simulator,
        prop_ns: float,
        byte_ns: float,
        n_lanes: int = 2,
        slack_bytes: Optional[int] = None,
        stop_threshold: Optional[int] = None,
        go_threshold: Optional[int] = None,
    ) -> None:
        if n_lanes < 1:
            raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
        self.sim = sim
        self.lanes = [
            StopGoChannel(
                sim, prop_ns, byte_ns,
                slack_bytes=slack_bytes,
                stop_threshold=stop_threshold,
                go_threshold=go_threshold,
            )
            for _ in range(n_lanes)
        ]

    @property
    def n_lanes(self) -> int:
        """Number of independent credit lanes on this cable."""
        return len(self.lanes)

    def lane(self, lane: int) -> StopGoChannel:
        """The credit channel of one lane."""
        return self.lanes[lane]

    def transfer(self, n_bytes: int, lane: int = 0) -> Event:
        """Send ``n_bytes`` on one lane; fires at last-byte delivery."""
        return self.lanes[lane].transfer(n_bytes)

    def block_receiver(self, lane: int) -> None:
        """Downstream wormhole blocking on one lane only."""
        self.lanes[lane].block_receiver()

    def unblock_receiver(self, lane: int) -> None:
        """Release the downstream block on one lane."""
        self.lanes[lane].unblock_receiver()

    def stats(self) -> list[StopGoStats]:
        """Per-lane transfer counters, synchronized to sim time."""
        return [lane.stats for lane in self.lanes]

    def slack_occupancy(self, lane: int) -> int:
        """Bytes currently parked in one lane's slack buffer."""
        return self.lanes[lane].slack_occupancy
