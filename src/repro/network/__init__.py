"""Wormhole network simulation.

Models the Myrinet fabric at packet granularity with cut-through
pipelining: links are pairs of directed channels, switches strip one
routing byte and impose a per-port-kind fall-through latency, and a
blocked packet holds every lane between its tail and head (the
observable effect of Stop&Go flow control with small slack buffers).
By default each channel carries a single lane — one packet per link
direction, as on real Myrinet switches — but the fabric can be built
with N virtual-channel lanes per link (``Fabric(..., lanes=N)``),
each an independently arbitrated FIFO with its own credit state, with
lane selection delegated to a pluggable policy
(:mod:`repro.network.lanes`).  This is the competing design the
paper's in-transit buffers set out to avoid; the ``vc-study``
experiment runs the head-to-head.
"""

from repro.network.fabric import Channel, Fabric
from repro.network.lanes import (
    EscapeLanePolicy,
    FixedLanePolicy,
    LanePolicy,
    RoundRobinLanePolicy,
    escape_lane_walk,
    lanes_needed,
    make_lane_policy,
)
from repro.network.worm import Worm, WormObserver
from repro.network.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    install_fault_plan,
)
from repro.network.flow_control import (
    LanedStopGo,
    StopGoChannel,
    required_slack_bytes,
)
from repro.network.deadlock import (
    DeadlockReport,
    DeadlockWatchdog,
    detect_deadlock,
)
from repro.network.instrumentation import FabricUsage, attach_usage_meter

__all__ = [
    "Channel",
    "DeadlockReport",
    "DeadlockWatchdog",
    "EscapeLanePolicy",
    "Fabric",
    "FabricUsage",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FixedLanePolicy",
    "LanePolicy",
    "LanedStopGo",
    "RoundRobinLanePolicy",
    "StopGoChannel",
    "Worm",
    "WormObserver",
    "attach_usage_meter",
    "detect_deadlock",
    "escape_lane_walk",
    "install_fault_plan",
    "lanes_needed",
    "make_lane_policy",
    "required_slack_bytes",
]
