"""Wormhole network simulation.

Models the Myrinet fabric at packet granularity with cut-through
pipelining: links are pairs of directed channels (one packet each, no
virtual channels — as on real Myrinet), switches strip one routing
byte and impose a per-port-kind fall-through latency, and a blocked
packet holds every channel between its tail and head (the observable
effect of Stop&Go flow control with small slack buffers).
"""

from repro.network.fabric import Channel, Fabric
from repro.network.worm import Worm, WormObserver
from repro.network.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    install_fault_plan,
)
from repro.network.flow_control import StopGoChannel, required_slack_bytes
from repro.network.deadlock import (
    DeadlockReport,
    DeadlockWatchdog,
    detect_deadlock,
)
from repro.network.instrumentation import FabricUsage, attach_usage_meter

__all__ = [
    "Channel",
    "DeadlockReport",
    "DeadlockWatchdog",
    "Fabric",
    "FabricUsage",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "StopGoChannel",
    "Worm",
    "WormObserver",
    "attach_usage_meter",
    "detect_deadlock",
    "install_fault_plan",
    "required_slack_bytes",
]
