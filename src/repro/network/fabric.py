"""Fabric: directed channels, lanes, and switch port bookkeeping.

Every physical cable becomes two :class:`Channel` objects (one per
direction).  A channel is a *physical link direction* hosting
``n_lanes`` independently arbitrated lanes — each lane a FIFO
:class:`~repro.sim.resources.Resource` of capacity 1 (one wormhole
packet per lane) — plus the physical parameters needed to time a
traversal.  With the default ``lanes=1`` this degenerates to the
stock Myrinet link (exactly one packet per link direction, which is
what the paper's switches implement); configuring more lanes models
the virtual-channel alternative the paper argues against, with lane
selection delegated to a pluggable policy
(:mod:`repro.network.lanes`: fixed, round-robin, or dateline escape
lanes for deadlock freedom).

Channels are keyed ``(link_id, direction)`` with direction 0 meaning
"entering at the (node_a, port_a) end", which stays well-defined for
loopback cables (both ends on one switch).  Lanes are keyed
``(link_id, direction, lane)`` — the claim index, the lane-aware CDG
analysis, and the per-lane meters all use this triple.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.core.timings import Timings
from repro.network.lanes import LanePolicy, make_lane_policy
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.topology.graph import Link, PortKind, Topology, TopologyError

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.routing.routes import SourceRoute

__all__ = ["Channel", "ExpressStats", "Fabric", "FlightPlan"]


class Channel:
    """One direction of a physical cable, hosting ``n_lanes`` lanes.

    ``lanes[0]`` is the default lane; the :attr:`resource` property
    aliases it so single-lane code (and the instrumentation layer,
    which swaps a metering proxy in via plain assignment) keeps
    working unchanged.
    """

    __slots__ = ("link", "direction", "from_node", "from_port",
                 "to_node", "to_port", "lanes", "prop_ns")

    def __init__(self, link: Link, direction: int, from_node: int,
                 from_port: int, to_node: int, to_port: int,
                 lanes: list[Resource], prop_ns: float) -> None:
        self.link = link
        #: 0 = entering at (node_a, port_a), 1 = at (node_b, port_b).
        self.direction = direction
        self.from_node = from_node
        self.from_port = from_port
        self.to_node = to_node
        self.to_port = to_port
        self.lanes = lanes
        self.prop_ns = prop_ns

    @property
    def resource(self) -> Resource:
        """Lane 0 (the whole channel when ``n_lanes == 1``)."""
        return self.lanes[0]

    @resource.setter
    def resource(self, value: Resource) -> None:
        self.lanes[0] = value

    @property
    def n_lanes(self) -> int:
        return len(self.lanes)

    @property
    def key(self) -> tuple[int, int]:
        return (self.link.link_id, self.direction)

    def lane_key(self, lane: int) -> tuple[int, int, int]:
        """The ``(link_id, direction, lane)`` key of one lane."""
        return (self.link.link_id, self.direction, lane)

    @property
    def kind(self) -> PortKind:
        return self.link.kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Channel link{self.link.link_id}"
            f" ({self.from_node}:{self.from_port})->"
            f"({self.to_node}:{self.to_port})>"
        )


class ExpressStats:
    """Counters for the worm express lane (see ``docs/ENGINE_FASTPATH.md``).

    ``hits`` counts worms that flew the closed-form express path (fully
    or for a clean prefix), ``partial`` counts the subset that launched
    on a truncated claim horizon (prefix express, suffix stepped),
    ``fallbacks`` counts launches that took the stepped generator, and
    ``stepped_hops`` counts switch hops actually traversed hop by hop
    (fallback launches plus the remainder of demoted express flights).
    """

    __slots__ = ("hits", "partial", "fallbacks", "stepped_hops")

    def __init__(self) -> None:
        self.hits = 0
        self.partial = 0
        self.fallbacks = 0
        self.stepped_hops = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (for runner summaries)."""
        return {"hits": self.hits, "partial": self.partial,
                "fallbacks": self.fallbacks,
                "stepped_hops": self.stepped_hops}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ExpressStats hits={self.hits}"
                f" partial={self.partial}"
                f" fallbacks={self.fallbacks}"
                f" stepped_hops={self.stepped_hops}>")


class FlightPlan:
    """Pre-resolved traversal data for one source-route segment.

    Memoized per :class:`~repro.routing.routes.SourceRoute` on the
    fabric: the directed channel for every hop (``channels[0]`` is the
    host injection cable), the per-hop fall-through latencies, and the
    channel keys.  Shared by the stepped and express worm paths, so
    channel lookup and fall-through resolution happen once per
    distinct segment instead of once per hop per packet.

    Lane assignment is *not* part of the plan — it is chosen per
    launch by the fabric's lane policy.  ``zero_lanes`` and ``keys0``
    pre-resolve the all-lane-0 case so the single-lane fast path pays
    no per-launch tuple building.
    """

    __slots__ = ("segment", "channels", "keys", "keys0", "zero_lanes",
                 "falls", "n_hops", "has_duplicate")

    def __init__(self, segment: "SourceRoute",
                 channels: tuple[Channel, ...]) -> None:
        self.segment = segment
        self.channels = channels
        self.keys = tuple(ch.key for ch in channels)
        self.keys0 = tuple(ch.lane_key(0) for ch in channels)
        self.zero_lanes = (0,) * len(channels)
        self.n_hops = len(channels) - 1
        self.has_duplicate = len(set(self.keys)) != len(self.keys)
        self.falls: tuple[float, ...] = ()  # filled by Fabric.flight_plan

    def lane_keys(self, lanes: tuple[int, ...]) -> tuple:
        """Per-channel lane keys for one launch's lane assignment."""
        if lanes is self.zero_lanes:
            return self.keys0
        return tuple(
            (k[0], k[1], lane) for k, lane in zip(self.keys, lanes)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlightPlan {self.segment!r} hops={self.n_hops}>"


class Fabric:
    """All channels of a topology plus traversal-timing helpers."""

    def __init__(self, sim: Simulator, topo: Topology, timings: Timings,
                 lanes: int = 1,
                 lane_policy: Union[str, LanePolicy] = "fixed") -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.sim = sim
        self.topo = topo
        self.timings = timings
        #: Lanes per channel (uniform across the fabric) and the
        #: policy assigning a lane per channel at worm launch.
        self.n_lanes = lanes
        self.lane_policy = make_lane_policy(lane_policy)
        #: Gate for the worm express lane (equivalence tests and the
        #: flight microbenchmark force the stepped path through this).
        self.express_enabled = True
        #: Gate for the claim-horizon extension: a launch whose route
        #: conflicts only beyond some channel index still flies the
        #: clean prefix closed-form, demoting just the contended
        #: suffix.  Off => the PR-4 behavior (bail on any claim
        #: intersection); the hit-rate benchmark compares both.
        self.express_horizon = True
        self.express_stats = ExpressStats()
        #: Memoized fall-through per (in kind, out kind) — avoids the
        #: Timings method call + dict rebuild on every hop.
        self._fall_ns: dict[tuple[PortKind, PortKind], float] = dict(
            timings.fall_through_ns)
        self._plans: dict["SourceRoute", FlightPlan] = {}
        #: Claim index: lane key (link, direction, lane) -> worms whose
        #: in-flight segment claims that lane (registered at launch,
        #: released at completion, for stepped and express worms
        #: alike).  Express eligibility and demotion both consult it;
        #: worms on different lanes of one channel never conflict.
        self._claimed_by: dict[tuple[int, int, int], list] = {}
        #: Shared registry for higher layers (e.g. "firmware_by_host",
        #: filled by the network builder so worms can find destination
        #: firmware objects).
        self.meta: dict = {}
        #: Channel keys whose physical cable is currently down (fault
        #: injection) — a dead cable takes every lane with it, so this
        #: stays channel-keyed.  Empty on healthy networks — the worm
        #: hot paths guard every check on the set being non-empty, so
        #: the fault-free timing is untouched.
        self.down_keys: set[tuple[int, int]] = set()
        #: Hook invoked when a worm dies at a down channel (set by the
        #: fault injector to account for the lost packet).
        self.on_worm_lost = None
        #: Causal span tracer (:class:`repro.obs.tracing.SpanTracer`)
        #: or ``None``.  The GM host, firmware, and worms all discover
        #: tracing through this attribute; every instrumentation point
        #: guards on it being non-None, so the disabled path costs one
        #: attribute read.
        self.tracer = None
        self._channels: dict[tuple[int, int], Channel] = {}
        for link in topo.links:
            ends = link.endpoints()
            for direction in (0, 1):
                from_node, from_port = ends[direction]
                to_node, to_port = ends[1 - direction]
                base = (
                    f"ch:link{link.link_id}:"
                    f"{from_node}.{from_port}->{to_node}.{to_port}"
                )
                # Lane 0 keeps the single-lane resource name (event
                # names derive from it; goldens depend on the bytes).
                lane_resources = [
                    Resource(sim, capacity=1,
                             name=base if lane == 0 else f"{base}:l{lane}")
                    for lane in range(lanes)
                ]
                self._channels[(link.link_id, direction)] = Channel(
                    link=link,
                    direction=direction,
                    from_node=from_node,
                    from_port=from_port,
                    to_node=to_node,
                    to_port=to_port,
                    lanes=lane_resources,
                    prop_ns=timings.propagation(link.length_m),
                )

    # ------------------------------------------------------------------

    def channel(self, link_id: int, direction: int) -> Channel:
        """The channel for (cable, direction); raises if unknown."""
        try:
            return self._channels[(link_id, direction)]
        except KeyError:
            raise TopologyError(
                f"no channel ({link_id}, {direction})"
            ) from None

    def out_channel(self, node: int, port: int) -> Channel:
        """Channel leaving ``node`` through its ``port``."""
        link = self.topo.link_at(node, port)
        if link is None:
            raise TopologyError(f"node {node} port {port} is not cabled")
        return self.channel(link.link_id, link.direction_from(node, port))

    def channel_between(self, from_node: int, to_node: int) -> Channel:
        """Channel of the lowest-id non-loop cable from one node to another."""
        links = [l for l in self.topo.links_between(from_node, to_node)
                 if not l.is_loop]
        if not links:
            raise TopologyError(f"no cable between {from_node} and {to_node}")
        link = links[0]
        return self.out_channel(from_node, link.port_at(from_node))

    def host_out(self, host: int) -> Channel:
        """Injection channel of a host's NIC (host port is always 0)."""
        return self.out_channel(host, 0)

    def host_in(self, host: int) -> Channel:
        """Delivery channel into a host's NIC."""
        link = self.topo.host_link(host)
        far_node, far_port = link.far_end(host, 0)
        return self.out_channel(far_node, far_port)

    def channels(self) -> list[Channel]:
        """Every channel of the fabric, in stable key order."""
        return [self._channels[k] for k in sorted(self._channels)]

    # ------------------------------------------------------------------

    def fall_through(self, in_channel: Channel, out_channel: Channel) -> float:
        """Switch fall-through latency between two port kinds."""
        return self._fall_ns[in_channel.kind, out_channel.kind]

    def utilization_snapshot(self) -> dict[tuple[int, int], int]:
        """Held lanes per channel (for contention diagnostics).

        Channel-keyed and lane-summed: with one lane the value is 0/1
        as before; with N lanes it ranges 0..N.  Use
        :meth:`lane_utilization_snapshot` for the per-lane view.
        """
        return {
            key: sum(res.in_use for res in ch.lanes)
            for key, ch in self._channels.items()
        }

    def lane_utilization_snapshot(self) -> dict[tuple[int, int, int], int]:
        """Per-lane occupancy, keyed ``(link_id, direction, lane)``."""
        return {
            ch.lane_key(lane): res.in_use
            for ch in self._channels.values()
            for lane, res in enumerate(ch.lanes)
        }

    # -- dynamic faults ---------------------------------------------------

    def set_link_down(self, link_id: int) -> list:
        """Mark both directions of a cable down; return the claimants.

        The returned worms are every in-flight worm whose segment
        claims *any lane* of either direction of the cable — holders,
        queued waiters, and approaching heads alike.  Wormhole packets
        hold their whole path until the tail drains, so a dead link
        under any part of a claimed segment cuts that packet, whatever
        lane it rides.  The caller (the fault injector) decides what
        to do with them (kill + account).
        """
        victims: list = []
        claimed = self._claimed_by
        for direction in (0, 1):
            key = (link_id, direction)
            if key not in self._channels:
                raise TopologyError(f"no link {link_id} in this fabric")
            self.down_keys.add(key)
            for lane in range(self.n_lanes):
                for worm in claimed.get((link_id, direction, lane), ()):
                    if worm not in victims:
                        victims.append(worm)
        return victims

    def set_link_up(self, link_id: int) -> None:
        """Repair a cable downed by :meth:`set_link_down`."""
        self.down_keys.discard((link_id, 0))
        self.down_keys.discard((link_id, 1))

    def link_is_down(self, link_id: int) -> bool:
        """True while ``link_id`` is marked down by a fault."""
        return (link_id, 0) in self.down_keys

    # -- worm flight plans and the lane-claim index -----------------------

    def flight_plan(self, segment: "SourceRoute") -> FlightPlan:
        """The memoized :class:`FlightPlan` for ``segment``."""
        plan = self._plans.get(segment)
        if plan is None:
            channels = [self.host_out(segment.src)]
            for switch, port in zip(segment.switch_path, segment.ports):
                channels.append(self.out_channel(switch, port))
            plan = FlightPlan(segment, tuple(channels))
            fall = self._fall_ns
            plan.falls = tuple(
                fall[channels[i].kind, channels[i + 1].kind]
                for i in range(len(channels) - 1)
            )
            self._plans[segment] = plan
        return plan

    def select_lanes(self, plan: FlightPlan) -> tuple[int, ...]:
        """One lane per plan channel for a launch (policy-delegated).

        The single-lane fabric returns the plan's cached zero tuple —
        the identity answer at zero per-launch cost.
        """
        if self.n_lanes == 1:
            return plan.zero_lanes
        return self.lane_policy.lanes_for(plan, self)

    def claim_conflicts(self, keys: tuple, now: float) -> bool:
        """Process claim conflicts for a worm about to launch on the
        lanes keyed by ``keys``.

        Returns True when any in-flight worm has claimed a lane of the
        launcher's assignment.  Any *express* worm among the claimants
        is interrupted first — materialized or demoted (see
        ``Worm._express_interrupted``) — because from this instant a
        contender can observe, and queue on, its lanes.
        """
        return self.claim_horizon(keys, now) != len(keys)

    def claim_horizon(self, keys: tuple, now: float) -> int:
        """Index of the first claimed lane key, interrupting claimants.

        Returns ``len(keys)`` when no lane of the launcher's assignment
        is claimed (the whole route may fly express).  A smaller value
        is the earliest-conflict horizon: channels strictly before it
        are unclaimed and candidates for a prefix express flight.

        Every intersecting *express* claimant — on any key, not just
        the first conflicted one — is interrupted, exactly as
        :meth:`claim_conflicts` does: the launcher's stepped (or
        demoted) suffix will later request those lane resources hop by
        hop, so each virtual hold must become observable now.
        """
        claimed = self._claimed_by
        horizon = len(keys)
        for index, key in enumerate(keys):
            worms = claimed.get(key)
            if worms:
                if index < horizon:
                    horizon = index
                for worm in tuple(worms):
                    if worm._express_live:
                        worm._express_interrupted(now)
        return horizon

    def register_claims(self, worm, keys: tuple) -> None:
        """Record ``worm``'s claim on every lane of its assignment."""
        claimed = self._claimed_by
        for key in keys:
            claimed.setdefault(key, []).append(worm)

    def release_claims(self, worm, keys: tuple) -> None:
        """Drop ``worm``'s claims (at completion of its segment)."""
        claimed = self._claimed_by
        for key in keys:
            worms = claimed.get(key)
            if worms is not None:
                try:
                    worms.remove(worm)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not worms:
                    del claimed[key]
