"""Fabric: directed channels and switch port bookkeeping.

Every physical cable becomes two :class:`Channel` objects (one per
direction).  A channel is a FIFO :class:`~repro.sim.resources.Resource`
of capacity 1 — exactly one wormhole packet may occupy a Myrinet link
direction at a time (no virtual channels) — plus the physical
parameters needed to time a traversal.

Channels are keyed ``(link_id, direction)`` with direction 0 meaning
"entering at the (node_a, port_a) end", which stays well-defined for
loopback cables (both ends on one switch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.timings import Timings
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.topology.graph import Link, PortKind, Topology, TopologyError

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.routing.routes import SourceRoute

__all__ = ["Channel", "ExpressStats", "Fabric", "FlightPlan"]


@dataclass
class Channel:
    """One direction of a physical cable."""

    link: Link
    direction: int  # 0 = entering at (node_a, port_a), 1 = at (node_b, port_b)
    from_node: int
    from_port: int
    to_node: int
    to_port: int
    resource: Resource
    prop_ns: float

    @property
    def key(self) -> tuple[int, int]:
        return (self.link.link_id, self.direction)

    @property
    def kind(self) -> PortKind:
        return self.link.kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Channel link{self.link.link_id}"
            f" ({self.from_node}:{self.from_port})->"
            f"({self.to_node}:{self.to_port})>"
        )


class ExpressStats:
    """Counters for the worm express lane (see ``docs/ENGINE_FASTPATH.md``).

    ``hits`` counts worms that flew the closed-form express path,
    ``fallbacks`` counts launches that took the stepped generator, and
    ``stepped_hops`` counts switch hops actually traversed hop by hop
    (fallback launches plus the remainder of demoted express flights).
    """

    __slots__ = ("hits", "fallbacks", "stepped_hops")

    def __init__(self) -> None:
        self.hits = 0
        self.fallbacks = 0
        self.stepped_hops = 0

    def as_dict(self) -> dict:
        """The three counters as a plain dict (for runner summaries)."""
        return {"hits": self.hits, "fallbacks": self.fallbacks,
                "stepped_hops": self.stepped_hops}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ExpressStats hits={self.hits}"
                f" fallbacks={self.fallbacks}"
                f" stepped_hops={self.stepped_hops}>")


class FlightPlan:
    """Pre-resolved traversal data for one source-route segment.

    Memoized per :class:`~repro.routing.routes.SourceRoute` on the
    fabric: the directed channel for every hop (``channels[0]`` is the
    host injection cable), the per-hop fall-through latencies, and the
    channel keys.  Shared by the stepped and express worm paths, so
    channel lookup and fall-through resolution happen once per
    distinct segment instead of once per hop per packet.
    """

    __slots__ = ("segment", "channels", "keys", "falls", "n_hops",
                 "has_duplicate")

    def __init__(self, segment: "SourceRoute",
                 channels: tuple[Channel, ...]) -> None:
        self.segment = segment
        self.channels = channels
        self.keys = tuple(ch.key for ch in channels)
        self.n_hops = len(channels) - 1
        self.has_duplicate = len(set(self.keys)) != len(self.keys)
        self.falls: tuple[float, ...] = ()  # filled by Fabric.flight_plan

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlightPlan {self.segment!r} hops={self.n_hops}>"


class Fabric:
    """All channels of a topology plus traversal-timing helpers."""

    def __init__(self, sim: Simulator, topo: Topology, timings: Timings) -> None:
        self.sim = sim
        self.topo = topo
        self.timings = timings
        #: Gate for the worm express lane (equivalence tests and the
        #: flight microbenchmark force the stepped path through this).
        self.express_enabled = True
        self.express_stats = ExpressStats()
        #: Memoized fall-through per (in kind, out kind) — avoids the
        #: Timings method call + dict rebuild on every hop.
        self._fall_ns: dict[tuple[PortKind, PortKind], float] = dict(
            timings.fall_through_ns)
        self._plans: dict["SourceRoute", FlightPlan] = {}
        #: Claim index: channel key -> worms whose in-flight segment
        #: includes that channel (registered at launch, released at
        #: completion, for stepped and express worms alike).  Express
        #: eligibility and demotion both consult it.
        self._claimed_by: dict[tuple[int, int], list] = {}
        #: Shared registry for higher layers (e.g. "firmware_by_host",
        #: filled by the network builder so worms can find destination
        #: firmware objects).
        self.meta: dict = {}
        #: Channel keys whose physical cable is currently down (fault
        #: injection).  Empty on healthy networks — the worm hot paths
        #: guard every check on the set being non-empty, so the
        #: fault-free timing is untouched.
        self.down_keys: set[tuple[int, int]] = set()
        #: Hook invoked when a worm dies at a down channel (set by the
        #: fault injector to account for the lost packet).
        self.on_worm_lost = None
        #: Causal span tracer (:class:`repro.obs.tracing.SpanTracer`)
        #: or ``None``.  The GM host, firmware, and worms all discover
        #: tracing through this attribute; every instrumentation point
        #: guards on it being non-None, so the disabled path costs one
        #: attribute read.
        self.tracer = None
        self._channels: dict[tuple[int, int], Channel] = {}
        for link in topo.links:
            ends = link.endpoints()
            for direction in (0, 1):
                from_node, from_port = ends[direction]
                to_node, to_port = ends[1 - direction]
                res = Resource(
                    sim, capacity=1,
                    name=(
                        f"ch:link{link.link_id}:"
                        f"{from_node}.{from_port}->{to_node}.{to_port}"
                    ),
                )
                self._channels[(link.link_id, direction)] = Channel(
                    link=link,
                    direction=direction,
                    from_node=from_node,
                    from_port=from_port,
                    to_node=to_node,
                    to_port=to_port,
                    resource=res,
                    prop_ns=timings.propagation(link.length_m),
                )

    # ------------------------------------------------------------------

    def channel(self, link_id: int, direction: int) -> Channel:
        """The channel for (cable, direction); raises if unknown."""
        try:
            return self._channels[(link_id, direction)]
        except KeyError:
            raise TopologyError(
                f"no channel ({link_id}, {direction})"
            ) from None

    def out_channel(self, node: int, port: int) -> Channel:
        """Channel leaving ``node`` through its ``port``."""
        link = self.topo.link_at(node, port)
        if link is None:
            raise TopologyError(f"node {node} port {port} is not cabled")
        return self.channel(link.link_id, link.direction_from(node, port))

    def channel_between(self, from_node: int, to_node: int) -> Channel:
        """Channel of the lowest-id non-loop cable from one node to another."""
        links = [l for l in self.topo.links_between(from_node, to_node)
                 if not l.is_loop]
        if not links:
            raise TopologyError(f"no cable between {from_node} and {to_node}")
        link = links[0]
        return self.out_channel(from_node, link.port_at(from_node))

    def host_out(self, host: int) -> Channel:
        """Injection channel of a host's NIC (host port is always 0)."""
        return self.out_channel(host, 0)

    def host_in(self, host: int) -> Channel:
        """Delivery channel into a host's NIC."""
        link = self.topo.host_link(host)
        far_node, far_port = link.far_end(host, 0)
        return self.out_channel(far_node, far_port)

    def channels(self) -> list[Channel]:
        """Every channel of the fabric, in stable key order."""
        return [self._channels[k] for k in sorted(self._channels)]

    # ------------------------------------------------------------------

    def fall_through(self, in_channel: Channel, out_channel: Channel) -> float:
        """Switch fall-through latency between two port kinds."""
        return self._fall_ns[in_channel.kind, out_channel.kind]

    def utilization_snapshot(self) -> dict[tuple[int, int], int]:
        """Channels currently held (for contention diagnostics)."""
        return {
            key: ch.resource.in_use for key, ch in self._channels.items()
        }

    # -- dynamic faults ---------------------------------------------------

    def set_link_down(self, link_id: int) -> list:
        """Mark both directions of a cable down; return the claimants.

        The returned worms are every in-flight worm whose segment
        claims either direction of the cable — holders, queued waiters,
        and approaching heads alike.  Wormhole packets hold their whole
        path until the tail drains, so a dead link under any part of a
        claimed segment cuts that packet.  The caller (the fault
        injector) decides what to do with them (kill + account).
        """
        victims: list = []
        for direction in (0, 1):
            key = (link_id, direction)
            if key not in self._channels:
                raise TopologyError(f"no link {link_id} in this fabric")
            self.down_keys.add(key)
            for worm in self._claimed_by.get(key, ()):
                if worm not in victims:
                    victims.append(worm)
        return victims

    def set_link_up(self, link_id: int) -> None:
        """Repair a cable downed by :meth:`set_link_down`."""
        self.down_keys.discard((link_id, 0))
        self.down_keys.discard((link_id, 1))

    def link_is_down(self, link_id: int) -> bool:
        """True while ``link_id`` is marked down by a fault."""
        return (link_id, 0) in self.down_keys

    # -- worm flight plans and the channel-claim index -------------------

    def flight_plan(self, segment: "SourceRoute") -> FlightPlan:
        """The memoized :class:`FlightPlan` for ``segment``."""
        plan = self._plans.get(segment)
        if plan is None:
            channels = [self.host_out(segment.src)]
            for switch, port in zip(segment.switch_path, segment.ports):
                channels.append(self.out_channel(switch, port))
            plan = FlightPlan(segment, tuple(channels))
            fall = self._fall_ns
            plan.falls = tuple(
                fall[channels[i].kind, channels[i + 1].kind]
                for i in range(len(channels) - 1)
            )
            self._plans[segment] = plan
        return plan

    def claim_conflicts(self, plan: FlightPlan, now: float) -> bool:
        """Process claim conflicts for a worm about to launch on ``plan``.

        Returns True when any in-flight worm has claimed a channel of
        ``plan`` (the launcher must then take the stepped path).  Any
        *express* worm among the claimants is interrupted first —
        materialized or demoted (see ``Worm._express_interrupted``) —
        because from this instant a contender can observe, and queue
        on, its channels.
        """
        claimed = self._claimed_by
        conflict = False
        for key in plan.keys:
            worms = claimed.get(key)
            if worms:
                conflict = True
                for worm in tuple(worms):
                    if worm._express_live:
                        worm._express_interrupted(now)
        return conflict

    def register_claims(self, worm, plan: FlightPlan) -> None:
        """Record ``worm``'s claim on every channel of its segment."""
        claimed = self._claimed_by
        for key in plan.keys:
            claimed.setdefault(key, []).append(worm)

    def release_claims(self, worm, plan: FlightPlan) -> None:
        """Drop ``worm``'s claims (at completion of its segment)."""
        claimed = self._claimed_by
        for key in plan.keys:
            worms = claimed.get(key)
            if worms is not None:
                try:
                    worms.remove(worm)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not worms:
                    del claimed[key]
