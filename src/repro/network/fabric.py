"""Fabric: directed channels and switch port bookkeeping.

Every physical cable becomes two :class:`Channel` objects (one per
direction).  A channel is a FIFO :class:`~repro.sim.resources.Resource`
of capacity 1 — exactly one wormhole packet may occupy a Myrinet link
direction at a time (no virtual channels) — plus the physical
parameters needed to time a traversal.

Channels are keyed ``(link_id, direction)`` with direction 0 meaning
"entering at the (node_a, port_a) end", which stays well-defined for
loopback cables (both ends on one switch).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timings import Timings
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.topology.graph import Link, PortKind, Topology, TopologyError

__all__ = ["Channel", "Fabric"]


@dataclass
class Channel:
    """One direction of a physical cable."""

    link: Link
    direction: int  # 0 = entering at (node_a, port_a), 1 = at (node_b, port_b)
    from_node: int
    from_port: int
    to_node: int
    to_port: int
    resource: Resource
    prop_ns: float

    @property
    def key(self) -> tuple[int, int]:
        return (self.link.link_id, self.direction)

    @property
    def kind(self) -> PortKind:
        return self.link.kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Channel link{self.link.link_id}"
            f" ({self.from_node}:{self.from_port})->"
            f"({self.to_node}:{self.to_port})>"
        )


class Fabric:
    """All channels of a topology plus traversal-timing helpers."""

    def __init__(self, sim: Simulator, topo: Topology, timings: Timings) -> None:
        self.sim = sim
        self.topo = topo
        self.timings = timings
        #: Shared registry for higher layers (e.g. "firmware_by_host",
        #: filled by the network builder so worms can find destination
        #: firmware objects).
        self.meta: dict = {}
        self._channels: dict[tuple[int, int], Channel] = {}
        for link in topo.links:
            ends = link.endpoints()
            for direction in (0, 1):
                from_node, from_port = ends[direction]
                to_node, to_port = ends[1 - direction]
                res = Resource(
                    sim, capacity=1,
                    name=(
                        f"ch:link{link.link_id}:"
                        f"{from_node}.{from_port}->{to_node}.{to_port}"
                    ),
                )
                self._channels[(link.link_id, direction)] = Channel(
                    link=link,
                    direction=direction,
                    from_node=from_node,
                    from_port=from_port,
                    to_node=to_node,
                    to_port=to_port,
                    resource=res,
                    prop_ns=timings.propagation(link.length_m),
                )

    # ------------------------------------------------------------------

    def channel(self, link_id: int, direction: int) -> Channel:
        """The channel for (cable, direction); raises if unknown."""
        try:
            return self._channels[(link_id, direction)]
        except KeyError:
            raise TopologyError(
                f"no channel ({link_id}, {direction})"
            ) from None

    def out_channel(self, node: int, port: int) -> Channel:
        """Channel leaving ``node`` through its ``port``."""
        link = self.topo.link_at(node, port)
        if link is None:
            raise TopologyError(f"node {node} port {port} is not cabled")
        return self.channel(link.link_id, link.direction_from(node, port))

    def channel_between(self, from_node: int, to_node: int) -> Channel:
        """Channel of the lowest-id non-loop cable from one node to another."""
        links = [l for l in self.topo.links_between(from_node, to_node)
                 if not l.is_loop]
        if not links:
            raise TopologyError(f"no cable between {from_node} and {to_node}")
        link = links[0]
        return self.out_channel(from_node, link.port_at(from_node))

    def host_out(self, host: int) -> Channel:
        """Injection channel of a host's NIC (host port is always 0)."""
        return self.out_channel(host, 0)

    def host_in(self, host: int) -> Channel:
        """Delivery channel into a host's NIC."""
        link = self.topo.host_link(host)
        far_node, far_port = link.far_end(host, 0)
        return self.out_channel(far_node, far_port)

    def channels(self) -> list[Channel]:
        """Every channel of the fabric, in stable key order."""
        return [self._channels[k] for k in sorted(self._channels)]

    # ------------------------------------------------------------------

    def fall_through(self, in_channel: Channel, out_channel: Channel) -> float:
        """Switch fall-through latency between two port kinds."""
        return self.timings.fall_through(in_channel.kind, out_channel.kind)

    def utilization_snapshot(self) -> dict[tuple[int, int], int]:
        """Channels currently held (for contention diagnostics)."""
        return {
            key: ch.resource.in_use for key, ch in self._channels.items()
        }
