"""Fault injection: lossy links, corrupted packets, and dynamic faults.

GM advertises "reliable and ordered packet delivery in presence of
network faults" (paper Section 3).  To exercise that claim, this
module lets tests and experiments degrade a built network two ways:

* **probabilistic faults** — each delivered data packet is rolled
  against the plan's corruption/loss probabilities; a corrupt packet
  fails the destination NIC's CRC check and is dropped, a lost packet
  vanishes mid-flight (GM's reliability layer then retransmits),
* **dynamic fault events** — a cable dies, a switch resets, or an
  in-transit host goes down at a scheduled simulation time (with an
  optional repair time).  In-flight worms whose path crosses the dead
  element are cut — their channels released so the fabric never
  wedges — and after a re-discovery delay the mapper recomputes
  routes on the degraded topology, re-splitting ITB paths whose
  in-transit host died through an alternate host.

Faults are deterministic per (seed, packet): the fate of a packet is
keyed by a hash of ``(plan.seed, packet id)``, so adding an unrelated
flow never shifts another packet's outcome and runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork
    from repro.mcp.firmware import Firmware, TransitPacket
    from repro.network.worm import Worm

__all__ = ["FaultEvent", "FaultInjector", "FaultPlan", "install_fault_plan"]

#: Valid :class:`FaultEvent` kinds.
FAULT_KINDS = ("link-down", "switch-reset", "host-down")

_U32 = float(2 ** 32)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on a physical element.

    Attributes
    ----------
    kind:
        ``"link-down"`` (one cable), ``"switch-reset"`` (every cable
        of a switch, modeling the switch losing its crossbar state),
        or ``"host-down"`` (the host's NIC cable — the scenario that
        matters for in-transit hosts).
    target:
        Node or link id the fault hits (link id for ``link-down``,
        switch id for ``switch-reset``, host id for ``host-down``).
    at_ns:
        Simulation time the fault strikes.
    repair_ns:
        Outage duration; ``None`` means the element never comes back.
    """

    kind: str
    target: int
    at_ns: float
    repair_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of"
                f" {FAULT_KINDS}")
        if self.at_ns < 0:
            raise ValueError("fault time must be >= 0")
        if self.repair_ns is not None and self.repair_ns <= 0:
            raise ValueError("repair time must be positive (or None)")


@dataclass
class FaultPlan:
    """Per-network fault configuration.

    Attributes
    ----------
    corrupt_probability:
        Chance a delivered packet arrives CRC-broken.
    loss_probability:
        Chance a packet is lost outright in flight.
    seed:
        Seeds the per-packet fate hash (deterministic).
    events:
        Scheduled dynamic :class:`FaultEvent`\\ s.
    remap_delay_ns:
        Modeled time between a fault (or repair) and the mapper's
        recomputed route tables reaching the NICs.
    """

    corrupt_probability: float = 0.0
    loss_probability: float = 0.0
    seed: int = 99
    events: tuple = ()
    remap_delay_ns: float = 50_000.0
    # counters
    corrupted: int = 0
    lost: int = 0
    killed_in_flight: int = 0
    faults_injected: int = 0
    repairs: int = 0
    remap_events: int = 0

    def __post_init__(self) -> None:
        for p in (self.corrupt_probability, self.loss_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("fault probabilities must be in [0, 1]")
        self.events = tuple(self.events)

    def fate_u01(self, pid: int) -> float:
        """Deterministic uniform [0, 1) draw keyed by (seed, pid)."""
        word = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(pid,)).generate_state(1)[0]
        return float(word) / _U32

    def roll(self, pid: int) -> str:
        """Fate of packet ``pid``: 'ok', 'corrupt', or 'lost'.

        Keyed by ``(seed, pid)``: the same packet id always draws the
        same fate under the same plan seed, independent of every other
        packet.  Retransmissions carry fresh packet ids, so each wire
        attempt is rolled independently.
        """
        x = self.fate_u01(pid)
        if x < self.loss_probability:
            self.lost += 1
            return "lost"
        if x < self.loss_probability + self.corrupt_probability:
            self.corrupted += 1
            return "corrupt"
        return "ok"


class FaultInjector:
    """Executes a plan's dynamic fault events against a built network.

    On each fault the injector marks the affected cables down on the
    fabric, kills every in-flight worm whose claimed segment crosses
    them (releasing channels so no simulation wedges), and schedules a
    route remap after ``plan.remap_delay_ns`` — the stand-in for the
    mapper's re-discovery pass, which cannot run inside the event loop
    (see :func:`repro.gm.discovery.discover_network`).  Repairs restore
    the cables and trigger another remap back to the original routes.
    """

    def __init__(self, net: "BuiltNetwork", plan: FaultPlan) -> None:
        self.net = net
        self.plan = plan
        self.sim = net.sim
        self.fabric = net.fabric
        self.down_links: set[int] = set()
        self.dead_hosts: set[int] = set()
        self._down_refs: dict[int, int] = {}
        self.fabric.on_worm_lost = self._on_worm_lost
        self.fabric.meta["fault_injector"] = self
        for event in plan.events:
            self.sim.schedule_at(event.at_ns,
                                 lambda e=event: self._apply(e))

    # -- event plumbing -------------------------------------------------

    def _links_for(self, event: FaultEvent) -> list[int]:
        topo = self.net.topo
        if event.kind == "link-down":
            return [event.target]
        if event.kind == "switch-reset":
            return sorted(
                link.link_id for link in topo.links
                if event.target in (link.node_a, link.node_b))
        return [topo.host_link(event.target).link_id]

    def _apply(self, event: FaultEvent) -> None:
        self.plan.faults_injected += 1
        victims: list = []
        for link_id in self._links_for(event):
            refs = self._down_refs.get(link_id, 0)
            self._down_refs[link_id] = refs + 1
            if refs == 0:
                self.down_links.add(link_id)
                for worm in self.fabric.set_link_down(link_id):
                    if worm not in victims:
                        victims.append(worm)
        if event.kind == "host-down":
            self.dead_hosts.add(event.target)
        for worm in victims:
            self._kill_worm(worm, f"fault:{event.kind}")
        self.sim.schedule(self.plan.remap_delay_ns, self._remap)
        if event.repair_ns is not None:
            self.sim.schedule_at(event.at_ns + event.repair_ns,
                                 lambda: self._repair(event))

    def _repair(self, event: FaultEvent) -> None:
        self.plan.repairs += 1
        for link_id in self._links_for(event):
            refs = self._down_refs.get(link_id, 1) - 1
            self._down_refs[link_id] = refs
            if refs == 0:
                self.down_links.discard(link_id)
                self.fabric.set_link_up(link_id)
        if event.kind == "host-down":
            self.dead_hosts.discard(event.target)
        self.sim.schedule(self.plan.remap_delay_ns, self._remap)

    # -- in-flight packet teardown --------------------------------------

    def _kill_worm(self, worm: "Worm", reason: str) -> None:
        worm.kill()
        self._mark_lost(worm, reason)

    def _on_worm_lost(self, worm: "Worm") -> None:
        """A worm launched after the fault died at a down channel."""
        self._mark_lost(worm, "link-down")

    def _mark_lost(self, worm: "Worm", reason: str) -> None:
        tp: Optional["TransitPacket"] = worm.meta.get("tp")
        if tp is None:
            return
        # Unwedge the sender first, and on every kill: its send engine
        # holds until the drain event fires, even when this packet was
        # already counted lost on an earlier segment.
        drained = worm.meta.get("on_drained")
        if drained is not None and not drained.triggered:
            drained.succeed()
        if getattr(tp, "_fault_lost", False):
            return
        tp._fault_lost = True  # type: ignore[attr-defined]
        self.plan.killed_in_flight += 1
        if not tp.dropped:
            tp.dropped = True
            tp.drop_reason = reason
        src_nic = self.net.nics.get(tp.src)
        if src_nic is not None:
            src_nic.stats.packets_lost_in_flight += 1
            src_nic.emit("fault_killed", pid=tp.pid, reason=reason)
        # Free a receive-buffer slot the destination may already hold
        # for this packet (claimed at on_header, never to complete) —
        # unless cut-through forwarding already took ownership: once an
        # in-transit host advanced ``seg_index`` past this worm's
        # segment, its re-injection drain frees the slot, and a second
        # release here would corrupt the buffer accounting.
        fw = getattr(worm, "observer", None)
        forward_owns = (
            tp.seg_index < len(tp.route.segments)
            and tp.route.segments[tp.seg_index] is not worm.segment
        )
        if fw is not None and getattr(fw, "nic", None) is not None \
                and not forward_owns:
            try:
                fw.nic.recv_buffers.release(tp)
                fw._admit_recv_waiter()
            except Exception:
                pass  # packet was not (or no longer) buffered there
        on_delivered, tp.on_delivered = tp.on_delivered, None
        if on_delivered is not None:
            on_delivered(tp)

    # -- route repair ---------------------------------------------------

    def _remap(self) -> None:
        """Recompute route tables on the degraded topology.

        Models the mapper's re-discovery + route distribution pass: the
        degraded topology (down cables removed) is re-routed with the
        network's configured policy and the resulting routes stamped
        over the NIC tables of every reachable host.  Routes toward
        unreachable hosts are left stale — packets sent there die on
        the wire and the sender's retransmission budget converts that
        into a graceful :class:`~repro.gm.host.GmSendError`.
        """
        from repro.gm.mapper import remap_tables

        self.plan.remap_events += 1
        remap_tables(self.net, down_links=self.down_links,
                     dead_hosts=self.dead_hosts)


def install_fault_plan(net: "BuiltNetwork",
                       plan: FaultPlan) -> Optional[FaultInjector]:
    """Degrade ``net`` with ``plan``.

    Wraps every NIC firmware's delivery path with the probabilistic
    corruption/loss rolls, and — when the plan schedules dynamic
    events — builds and returns a :class:`FaultInjector` for them.

    Only data-bearing packets (GM data, IP fragments, TCP segments)
    with at least one byte of payload are subject to probabilistic
    faults; mapping scouts and zero-payload control packets are left
    alone so experiments converge (real GM retransmits those the same
    way, it's just noise for our purposes).
    """
    for _host, fw in net.fabric.meta["firmware_by_host"].items():
        _wrap_firmware(fw, plan)
    net.fabric.meta["fault_plan"] = plan
    if plan.events:
        return FaultInjector(net, plan)
    return None


def _wrap_firmware(fw: "Firmware", plan: FaultPlan) -> None:
    original_on_complete = fw.on_complete

    def on_complete(worm, t_now: float) -> None:
        tp = worm.meta["tp"]
        eligible = (
            not tp.dropped
            and tp.payload_len > 0
            and tp.gm.get("kind", "data") in ("data", "ip", "tcp")
            and not worm.image.is_itb()  # fault applies at final NIC
        )
        if eligible:
            fate = plan.roll(tp.pid)
            if fate != "ok":
                tp.dropped = True
                tp.drop_reason = (
                    "crc-error" if fate == "corrupt" else "lost-in-flight"
                )
                fw.nic.emit("fault_" + fate, pid=tp.pid)
                # Free the receive buffer the claim took at on_header.
                try:
                    fw.nic.recv_buffers.release(tp)
                    fw._admit_recv_waiter()
                except Exception:
                    pass  # packet was flushed before buffering
                drained = worm.meta.get("on_drained")
                if drained is not None and not drained.triggered:
                    drained.succeed()
                if tp.on_delivered is not None:
                    tp.on_delivered(tp)
                return
        original_on_complete(worm, t_now)

    fw.on_complete = on_complete  # type: ignore[method-assign]
