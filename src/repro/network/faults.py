"""Fault injection: lossy and corrupting links.

GM advertises "reliable and ordered packet delivery in presence of
network faults" (paper Section 3).  To exercise that claim, this
module lets tests and experiments degrade individual channels:

* **corruption** — the packet arrives with flipped payload bits; the
  destination NIC's CRC check fails and the packet is dropped (GM's
  reliability layer then retransmits),
* **loss** — the packet vanishes mid-flight (cable pulled, switch
  reset); the worm's channels are released and nothing arrives.

Faults are deterministic per (seed, packet) so runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork
    from repro.mcp.firmware import Firmware

__all__ = ["FaultPlan", "install_fault_plan"]


@dataclass
class FaultPlan:
    """Per-network fault configuration.

    Attributes
    ----------
    corrupt_probability:
        Chance a delivered packet arrives CRC-broken.
    loss_probability:
        Chance a packet is lost outright in flight.
    seed:
        Seeds the fault RNG (deterministic).
    """

    corrupt_probability: float = 0.0
    loss_probability: float = 0.0
    seed: int = 99
    # counters
    corrupted: int = 0
    lost: int = 0
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        for p in (self.corrupt_probability, self.loss_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("fault probabilities must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def roll(self) -> str:
        """Fate of one packet: 'ok', 'corrupt', or 'lost'."""
        x = float(self._rng.random())
        if x < self.loss_probability:
            self.lost += 1
            return "lost"
        if x < self.loss_probability + self.corrupt_probability:
            self.corrupted += 1
            return "corrupt"
        return "ok"


class _FaultyFirmwareMixin:
    """Wraps a firmware's receive hooks with the fault plan.

    Installed by monkey-wrapping ``on_complete`` on each NIC firmware:
    corrupt packets fail the CRC check at the Recv machine and are
    dropped (counted as ``crc_drops`` on the plan); lost packets are
    simulated by dropping at completion (the worm already released the
    channels — equivalent to the tail being cut).
    """


def install_fault_plan(net: "BuiltNetwork", plan: FaultPlan) -> None:
    """Degrade every host-delivery path of ``net`` with ``plan``.

    Only data-bearing packets (GM data, IP fragments, TCP segments)
    with at least one byte of payload are subject to faults; mapping scouts
    and zero-payload control packets are left alone so experiments
    converge (real GM retransmits those the same way, it's just noise
    for our purposes).
    """
    for host, fw in net.fabric.meta["firmware_by_host"].items():
        _wrap_firmware(fw, plan)


def _wrap_firmware(fw: "Firmware", plan: FaultPlan) -> None:
    original_on_complete = fw.on_complete

    def on_complete(worm, t_now: float) -> None:
        tp = worm.meta["tp"]
        eligible = (
            not tp.dropped
            and tp.payload_len > 0
            and tp.gm.get("kind", "data") in ("data", "ip", "tcp")
            and not worm.image.is_itb()  # fault applies at final NIC
        )
        if eligible:
            fate = plan.roll()
            if fate != "ok":
                tp.dropped = True
                tp.drop_reason = (
                    "crc-error" if fate == "corrupt" else "lost-in-flight"
                )
                fw.nic.stats.packets_dropped_unknown += 0  # not unknown-type
                fw.nic.emit("fault_" + fate, pid=tp.pid)
                # Free the receive buffer the claim took at on_header.
                try:
                    fw.nic.recv_buffers.release(tp)
                    fw._admit_recv_waiter()
                except Exception:
                    pass  # packet was flushed before buffering
                drained = worm.meta.get("on_drained")
                if drained is not None and not drained.triggered:
                    drained.succeed()
                if tp.on_delivered is not None:
                    tp.on_delivered(tp)
                return
        original_on_complete(worm, t_now)

    fw.on_complete = on_complete  # type: ignore[method-assign]
