"""Lane-selection policies for multi-lane (virtual-channel) fabrics.

A :class:`~repro.network.fabric.Channel` hosts ``n_lanes`` independently
arbitrated FIFO lanes (see the fabric module).  At worm launch the
fabric asks its lane policy for one lane per channel of the flight
plan; the assignment is fixed for the whole flight (a wormhole packet
cannot change lanes mid-route — lane state lives in per-port buffers).

Three policies are provided:

``fixed``
    Every worm uses the same lane (lane 0 by default).  With
    ``lanes=1`` this is the single-lane fabric; with more lanes it
    leaves the extras idle — the control arm of lane studies.

``roundrobin``
    Per-channel rotating cursor: successive worms crossing the same
    directed channel get successive lanes.  Balances load across lanes
    (the fairness property tests pin this down) but gives no deadlock
    guarantee beyond the underlying routing's.

``escape``
    Dateline-style assignment for deadlock freedom: the lane index is
    the number of *descents* — switch-to-switch hops whose channel
    goes from a higher to a lower (or equal, for loopback cables) node
    id — taken so far, clamped at the top lane.  Within one lane every
    dependency edge then targets an ascending channel, so node ids
    strictly increase along any would-be cycle; crossing a dateline
    moves to a higher lane and lanes are never re-entered.  The scheme
    is provably deadlock-free whenever no route descends more often
    than there are lanes (``lanes_needed`` computes the requirement;
    :func:`repro.routing.cdg.is_deadlock_free` verifies the combined
    routing x policy on the laned CDG).  Clamped assignments are
    counted in :attr:`EscapeLanePolicy.overflows` — a nonzero value
    means the static guarantee no longer applies.

The walk helpers at the bottom are pure functions of node ids so the
CDG analysis (:mod:`repro.routing.cdg`) can share the exact assignment
logic without importing any simulation state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.network.fabric import Fabric, FlightPlan

__all__ = [
    "EscapeLanePolicy",
    "FixedLanePolicy",
    "LanePolicy",
    "RoundRobinLanePolicy",
    "escape_lane_walk",
    "lanes_needed",
    "make_lane_policy",
]


class LanePolicy:
    """Chooses one lane per channel of a flight plan at worm launch."""

    name = "abstract"

    def lanes_for(self, plan: "FlightPlan", fabric: "Fabric"
                  ) -> tuple[int, ...]:
        """Lane index per plan channel (``channels[0]`` is injection)."""
        raise NotImplementedError


class FixedLanePolicy(LanePolicy):
    """Every worm rides the same lane on every channel."""

    name = "fixed"

    def __init__(self, lane: int = 0) -> None:
        self.lane = lane

    def lanes_for(self, plan: "FlightPlan", fabric: "Fabric"
                  ) -> tuple[int, ...]:
        """The configured lane (clamped to the fabric) for every hop."""
        lane = min(self.lane, fabric.n_lanes - 1)
        return (lane,) * len(plan.channels)


class RoundRobinLanePolicy(LanePolicy):
    """Per-channel rotating cursor: launch k on a channel gets lane
    ``k mod n_lanes``.

    The cursor advances per *launch*, in launch order, so assignments
    are deterministic for a deterministic simulation.  Host cables
    (injection/delivery) always use lane 0 — a NIC has one DMA engine
    per direction, so extra lanes on its cable would model hardware
    that does not exist.
    """

    name = "roundrobin"

    def __init__(self) -> None:
        self._next: dict[tuple[int, int], int] = {}

    def lanes_for(self, plan: "FlightPlan", fabric: "Fabric"
                  ) -> tuple[int, ...]:
        """Next cursor lane per switch channel; lane 0 on host cables."""
        n = fabric.n_lanes
        topo = fabric.topo
        cursor = self._next
        lanes = []
        for ch in plan.channels:
            if not (topo.is_switch(ch.from_node)
                    and topo.is_switch(ch.to_node)):
                lanes.append(0)
                continue
            k = cursor.get(ch.key, 0)
            cursor[ch.key] = k + 1
            lanes.append(k % n)
        return tuple(lanes)


class EscapeLanePolicy(LanePolicy):
    """Dateline assignment: lane = descents taken so far (see module
    docstring for the deadlock-freedom argument)."""

    name = "escape"

    def __init__(self) -> None:
        #: Assignments clamped at the top lane — the route needed more
        #: lanes than the fabric has, voiding the static guarantee.
        self.overflows = 0
        self._memo: dict[object, tuple[int, ...]] = {}

    def lanes_for(self, plan: "FlightPlan", fabric: "Fabric"
                  ) -> tuple[int, ...]:
        """Dateline walk over the plan (memoized per plan object)."""
        lanes = self._memo.get(plan)
        if lanes is None:
            topo = fabric.topo
            steps = [
                (ch.from_node, ch.to_node,
                 topo.is_switch(ch.from_node) and topo.is_switch(ch.to_node))
                for ch in plan.channels
            ]
            lanes = escape_lane_walk(steps, fabric.n_lanes)
            if lanes_needed(steps) > fabric.n_lanes:
                self.overflows += 1
            self._memo[plan] = lanes
        return lanes


# -- pure walk helpers (shared with repro.routing.cdg) ------------------


def escape_lane_walk(
    steps: Sequence[tuple[int, int, bool]], n_lanes: int
) -> tuple[int, ...]:
    """Escape-lane indices for one segment walk.

    ``steps`` is one ``(from_node, to_node, is_switch_to_switch)``
    triple per channel, injection first.  The lane starts at 0 and
    increments *at* every switch-to-switch descent (``from >= to``;
    ``>=`` so loopback cables count as datelines too), clamped at
    ``n_lanes - 1``.
    """
    lane = 0
    out = []
    for from_node, to_node, switch_pair in steps:
        if switch_pair and from_node >= to_node:
            lane += 1
        out.append(min(lane, n_lanes - 1))
    return tuple(out)


def lanes_needed(steps: Iterable[tuple[int, int, bool]]) -> int:
    """Lanes the escape policy needs to cover this walk unclamped."""
    descents = sum(
        1 for from_node, to_node, switch_pair in steps
        if switch_pair and from_node >= to_node
    )
    return descents + 1


_POLICIES = {
    "fixed": FixedLanePolicy,
    "roundrobin": RoundRobinLanePolicy,
    "escape": EscapeLanePolicy,
}


def make_lane_policy(policy: Union[str, LanePolicy]) -> LanePolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, LanePolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown lane policy {policy!r};"
            f" choose from {sorted(_POLICIES)}"
        ) from None
