"""Channel-utilization instrumentation.

The paper's introduction names three up*/down* pathologies: non-minimal
routing, **unbalanced traffic** ("these routings tend to saturate the
zone near the root switch"), and wormhole contention.  Route-counting
(EXP-F1) shows the imbalance statically; this module measures it
*dynamically*: per-channel busy time and packet counts observed while
real traffic runs, plus summary statistics (max/mean link load,
Jain's fairness index, root-adjacent concentration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.core.builder import BuiltNetwork

__all__ = ["ChannelUsage", "FabricUsage", "attach_usage_meter"]


@dataclass
class ChannelUsage:
    """Observed load on one directed channel (one lane of it when the
    fabric runs multiple lanes — the key then carries the lane index)."""

    key: tuple
    from_node: int
    to_node: int
    packets: int = 0
    busy_ns: float = 0.0
    _acquired_at: dict = field(default_factory=dict, repr=False)

    def utilization(self, duration_ns: float) -> float:
        """Busy fraction over an observation window."""
        return self.busy_ns / duration_ns if duration_ns > 0 else 0.0


class FabricUsage:
    """Aggregated usage over every fabric (switch-to-switch) channel.

    Installed by :func:`attach_usage_meter`, which wraps each channel
    resource's request/release bookkeeping.  Host NIC cables are
    excluded — the balance question is about the switch fabric.
    """

    def __init__(self, net: "BuiltNetwork") -> None:
        self.net = net
        self.t_start = net.sim.now
        self.channels: dict[tuple, ChannelUsage] = {}

    # -- summary statistics -------------------------------------------------

    @property
    def observed_ns(self) -> float:
        return self.net.sim.now - self.t_start

    def loads(self) -> np.ndarray:
        """Per-channel busy time (ns), ascending order."""
        return np.array(sorted(u.busy_ns for u in self.channels.values()))

    def packet_counts(self) -> np.ndarray:
        """Per-channel packet counts, ascending order."""
        return np.array(sorted(u.packets for u in self.channels.values()))

    def max_utilization(self) -> float:
        """Busiest channel's busy fraction."""
        loads = self.loads()
        if loads.size == 0:
            return 0.0
        return float(loads.max()) / max(self.observed_ns, 1e-9)

    def jain_fairness(self) -> float:
        """Jain's index over channel busy times: 1 = perfectly even,
        1/n = all load on one channel."""
        loads = self.loads().astype(float)
        if loads.size == 0 or loads.sum() == 0:
            return 1.0
        return float(loads.sum() ** 2 / (loads.size * (loads ** 2).sum()))

    def root_concentration(self, root: Optional[int] = None) -> float:
        """Fraction of total fabric busy time carried by channels
        touching the spanning-tree root switch."""
        if root is None:
            root = self.net.orientation.root
        total = sum(u.busy_ns for u in self.channels.values())
        if total == 0:
            return 0.0
        at_root = sum(
            u.busy_ns for u in self.channels.values()
            if root in (u.from_node, u.to_node)
        )
        return at_root / total


def attach_usage_meter(net: "BuiltNetwork") -> FabricUsage:
    """Instrument every fabric channel of a built network.

    Must be attached before traffic runs.  Only switch-to-switch
    channels are metered.  On a single-lane fabric meters are keyed
    by the 2-tuple channel key exactly as before; with virtual-channel
    lanes configured every lane gets its own meter under its
    ``(link_id, direction, lane)`` key, so lane imbalance is directly
    observable.
    """
    usage = FabricUsage(net)
    topo = net.topo
    for channel in net.fabric.channels():
        link = channel.link
        if not (topo.is_switch(link.node_a) and topo.is_switch(link.node_b)):
            continue
        multi = channel.n_lanes > 1
        for lane in range(channel.n_lanes):
            cu = ChannelUsage(
                key=channel.lane_key(lane) if multi else channel.key,
                from_node=channel.from_node,
                to_node=channel.to_node,
            )
            usage.channels[cu.key] = cu
            channel.lanes[lane] = _MeteredResource(
                channel.lanes[lane], cu, net.sim)
    return usage


class _MeteredResource:
    """Delegating proxy around a channel's Resource that records
    per-owner hold times (Resource uses ``__slots__``, so its methods
    cannot be patched in place — the channel's ``resource`` attribute
    is swapped for this wrapper instead)."""

    def __init__(self, inner, cu: ChannelUsage, sim) -> None:
        self._inner = inner
        self._cu = cu
        self._sim = sim

    # -- metered operations ----------------------------------------------

    def request(self, owner):
        """Request the channel; grant time is recorded for metering."""
        ev = self._inner.request(owner)

        def on_grant(_ev):
            self._cu.packets += 1
            self._cu._acquired_at[id(owner)] = self._sim.now

        ev.add_callback(on_grant)
        return ev

    def try_acquire(self, owner):
        """Immediate acquire attempt, recorded when it succeeds."""
        ok = self._inner.try_acquire(owner)
        if ok:
            self._cu.packets += 1
            self._cu._acquired_at[id(owner)] = self._sim.now
        return ok

    def release(self, owner):
        """Release and charge the hold time to the channel's meter."""
        start = self._cu._acquired_at.pop(id(owner), None)
        if start is not None:
            self._cu.busy_ns += self._sim.now - start
        self._inner.release(owner)

    # -- express-lane hooks (see repro.network.worm) ----------------------

    def note_acquired_at(self, owner, t: float) -> None:
        """Backdate ``owner``'s acquire time (a materialised express
        hold really started at its closed-form acquire instant, not at
        the interrupt that made it visible)."""
        self._cu._acquired_at[id(owner)] = t

    def record_hold(self, t_acquire: float, t_release: float) -> None:
        """Settle a fully-virtual express hold: the channel was never
        touched through request/release, so account the whole window
        in one step."""
        self._cu.packets += 1
        self._cu.busy_ns += t_release - t_acquire

    # -- passthrough -------------------------------------------------------

    def __getattr__(self, name):
        return getattr(self._inner, name)
