"""Benchmark: EXP-A3 — ITB detection/programming cost sweep.

Sweeps the firmware cycle budget from the [2,3] simulation assumption
(275 ns detect + 200 ns DMA program, ~0.5 us total) through the
implementation this paper measured (~1.3 us) to a hypothetical
hardware-assisted detector, and reports the end-to-end per-ITB
overhead each regime yields.
"""

from __future__ import annotations

from repro.harness.ablations import run_ablation_timing
from repro.harness.report import format_table


def test_bench_ablation_timing(benchmark, scale):
    rows = benchmark.pedantic(
        run_ablation_timing,
        kwargs=dict(size=64, iterations=scale["iterations"]),
        rounds=1, iterations=1,
    )

    print()
    print(format_table(
        ["regime", "early-recv (cycles)", "program DMA (cycles)",
         "firmware cost (ns)", "per-ITB overhead (ns)"],
        [(r.label, r.early_recv_cycles, r.program_dma_cycles,
          r.firmware_cost_ns, r.overhead_ns) for r in rows],
        title="EXP-A3 — per-ITB overhead vs firmware cost assumption",
        float_fmt="{:.0f}",
    ))

    # The [2,3] assumption reproduces their ~0.5 us figure; the
    # implementation regime reproduces this paper's ~1.3 us.
    assumed, paper, hw = rows
    assert 400 <= assumed.overhead_ns <= 650
    assert 1_100 <= paper.overhead_ns <= 1_600
    assert hw.overhead_ns < assumed.overhead_ns
