"""Benchmark: EXP-A1 — marginal per-ITB overhead under load.

The paper's Section 5 argues the measured 1.3 us per-ITB delay "only
will be important when, after detecting an in-transit packet, the
required output port is free" — when the port is busy, the packet
would have waited anyway, so the marginal cost under load shrinks.
This bench measures the per-ITB overhead with and without background
traffic keeping the re-injection output channel busy.
"""

from __future__ import annotations

from repro.harness.ablations import run_ablation_load
from repro.harness.report import format_table


def test_bench_ablation_load(benchmark, scale):
    result = benchmark.pedantic(
        run_ablation_load,
        kwargs=dict(size=256, iterations=max(10, scale["iterations"] // 2),
                    background_gap_ns=9_000.0),
        rounds=1, iterations=1,
    )

    print()
    print(format_table(
        ["condition", "per-ITB overhead (ns)"],
        [
            ("unloaded network (paper Figure 8)",
             result.overhead_unloaded_ns),
            ("output port kept busy", result.overhead_loaded_ns),
            ("marginal fraction",
             result.marginal_fraction),
        ],
        title="EXP-A1 — per-ITB overhead with a busy re-injection port",
        float_fmt="{:.2f}",
    ))

    assert result.overhead_unloaded_ns > 1_000.0
    # The paper's expectation: results "for medium and high network
    # loads will not significantly change" — the marginal ITB cost
    # under load must not exceed the unloaded cost by more than noise.
    assert result.overhead_loaded_ns < result.overhead_unloaded_ns * 1.25
