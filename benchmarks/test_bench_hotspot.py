"""Benchmark: EXP-M1b — hotspot traffic, where traffic balance matters
most.

The up*/down* weakness the paper's introduction names is *unbalanced
traffic*: routes concentrate near the spanning-tree root.  A hotspot
destination amplifies that concentration; ITB routing's minimal paths
spread the remaining (non-hotspot) traffic away from the saturated
region.  This bench compares accepted throughput under uniform vs
hotspot patterns for both routings.
"""

from __future__ import annotations

from repro.harness.report import format_table
from repro.harness.throughput import run_throughput
from repro.harness.workloads import hotspot_traffic


def test_bench_hotspot(benchmark, scale):
    n_switches = max(scale["throughput_switches"])
    rates = scale["throughput_rates"][-2:]

    def run_both():
        results = {}
        for label, factory in (
            ("uniform", None),
            ("hotspot", lambda hosts: hotspot_traffic(
                hosts, hotspot=hosts[0], fraction=0.25)),
        ):
            results[label] = run_throughput(
                n_switches=n_switches, packet_size=512, rates=rates,
                duration_ns=scale["throughput_duration"],
                warmup_ns=scale["throughput_duration"] / 5,
                hosts_per_switch=2, topo_seed=5,
                pattern_factory=factory,
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, res in results.items():
        rows.append((
            label,
            res.peak_accepted("updown"),
            res.peak_accepted("itb"),
            res.throughput_ratio,
        ))
    print()
    print(format_table(
        ["pattern", "peak UD (B/ns/host)", "peak ITB (B/ns/host)",
         "ratio ITB/UD"],
        rows,
        title=f"EXP-M1b — traffic-pattern sensitivity, {n_switches} switches",
        float_fmt="{:.4f}",
    ))

    # Shape: ITB keeps its advantage (or stays at parity) under the
    # hotspot too; the hotspot itself lowers everyone's absolute peak.
    for label, res in results.items():
        assert res.throughput_ratio >= 0.9, (
            f"{label}: ITB lost ({res.throughput_ratio:.2f})")
    assert results["hotspot"].peak_accepted("updown") <= \
        results["uniform"].peak_accepted("updown")
