"""Benchmark: EXP-A4 — explicit LANai SRAM-arbitration modeling.

The paper's Section 3 describes the LANai memory system: two accesses
per cycle, granted host-bus > recv DMA > send DMA > processor.  Our
default timing model absorbs average contention into the calibrated
firmware cycle counts; this ablation turns the explicit arbiter on
and reports how much the per-ITB cost grows when the forward code has
to share SRAM with the in-transit packet still streaming in.
"""

from __future__ import annotations

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths
from repro.harness.report import format_table


def _overhead(contention: bool, size: int, iterations: int) -> float:
    def net():
        return build_network("fig6", config=NetworkConfig(
            firmware="itb", routing="updown",
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
            model_memory_contention=contention,
        ))

    n1, n2 = net(), net()
    paths = fig6_paths(n1.topo, n1.roles)
    ud = n1.ping_pong("host1", "host2", size=size, iterations=iterations,
                      route_ab=paths.ud5, route_ba=paths.rev2)
    itb = n2.ping_pong("host1", "host2", size=size, iterations=iterations,
                       route_ab=paths.itb5, route_ba=paths.rev2)
    return 2.0 * (itb.mean_ns - ud.mean_ns)


def test_bench_ablation_arbiter(benchmark, scale):
    def run():
        return {
            False: _overhead(False, 256, scale["iterations"]),
            True: _overhead(True, 256, scale["iterations"]),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["SRAM arbitration", "per-ITB overhead (ns)"],
        [
            ("folded into calibrated cycles (default)", results[False]),
            ("modeled explicitly (Fig. 2 priorities)", results[True]),
        ],
        title="EXP-A4 — LANai memory-contention modeling",
        float_fmt="{:.0f}",
    ))

    # Shape: contention inflates the firmware component (the Early-Recv
    # handler runs while the recv DMA streams), bounded by the 4x
    # starvation floor of the arbitration model.
    assert results[True] > results[False]
    assert results[True] < results[False] * 4.0
