"""Benchmark: EXP-A6 — in-transit host selection policy.

With several hosts per switch, the mapper must pick which one serves
each in-transit duty.  ``first_host`` funnels every ejection through
one NIC per switch; ``round_robin`` spreads the work — the simplest
of the load-aware placements the paper's follow-up work motivates.
Reports transit-duty spread and accepted throughput under load.
"""

from __future__ import annotations

import itertools

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.report import format_table
from repro.harness.workloads import drive_traffic
from repro.routing.itb import ItbRouter, first_host_policy, round_robin_policy
from repro.routing.spanning_tree import build_orientation
from repro.routing.tables import build_route_tables
from repro.topology.generators import random_irregular


def _build(policy_factory, n_switches, seed):
    topo = random_irregular(n_switches, seed=seed, hosts_per_switch=3)
    cfg = NetworkConfig(
        firmware="itb", routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        recv_buffer_kind="pool", pool_bytes=1024 * 1024, reliable=False,
    )
    net = build_network(topo, config=cfg)
    router = ItbRouter(topo, build_orientation(topo),
                       host_policy=policy_factory())
    for host, table in build_route_tables(sorted(net.gm_hosts),
                                          router).items():
        net.nics[host].route_table = table
    return net, router


def test_bench_itb_policy(benchmark, scale):
    n_switches = min(scale["throughput_switches"][-1], 16)
    rate = scale["throughput_rates"][len(scale["throughput_rates"]) // 2]

    def run_both():
        out = {}
        for name, factory in (("first-host", lambda: first_host_policy),
                              ("round-robin", round_robin_policy)):
            net, router = _build(factory, n_switches, seed=9)
            hosts = sorted(net.gm_hosts)
            transit_hosts = set()
            n_itb_routes = 0
            for s, d in itertools.permutations(hosts, 2):
                route = net.nics[s].route_table.lookup(d)
                transit_hosts.update(route.itb_hosts)
                n_itb_routes += 1 if route.n_itbs else 0
            stats = drive_traffic(
                net, rate_bytes_per_ns_per_host=rate, packet_size=512,
                duration_ns=scale["throughput_duration"],
                warmup_ns=scale["throughput_duration"] / 5)
            out[name] = {
                "distinct_transit_hosts": len(transit_hosts),
                "itb_routes": n_itb_routes,
                "accepted": stats.accepted_bytes_per_ns_per_host,
                "mean_latency_us": stats.mean_latency_ns / 1000.0,
            }
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print(format_table(
        ["policy", "distinct transit hosts", "routes w/ ITBs",
         "accepted (B/ns/host)", "mean latency (us)"],
        [(name, r["distinct_transit_hosts"], r["itb_routes"],
          r["accepted"], r["mean_latency_us"])
         for name, r in results.items()],
        title=("EXP-A6 — in-transit host selection,"
               f" {n_switches} switches x 3 hosts"),
        float_fmt="{:.4f}",
    ))

    first, rr = results["first-host"], results["round-robin"]
    # Round-robin never narrows the transit-duty spread and does not
    # hurt throughput.
    assert rr["distinct_transit_hosts"] >= first["distinct_transit_hosts"]
    assert rr["accepted"] >= first["accepted"] * 0.97
