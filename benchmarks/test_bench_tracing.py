"""Benchmark: causal span tracing overhead.

Not a paper figure — the observability cost guard.  Span tracing must
be strictly zero-cost when disabled (every instrumentation point is a
single attribute read plus an ``is None`` check) and cheap when
sampling.  A fixed open-loop fig6 workload runs three ways — tracer
off, tracer fully on, tracer on but sampling nothing — and the suite
gates:

* tracing never perturbs the simulation: bit-identical latency
  samples with the tracer on and off,
* an enabled-but-unsampled tracer records zero spans,
* the headline ``speedup_ratio`` (fully-traced wall time / untraced
  wall time) is checked against ``bench_baseline.json`` by ``repro
  bench-report``: the ratio *falls* when the untraced path picks up
  cost, which is exactly the regression this guard exists to catch.
"""

from __future__ import annotations

import time

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.workloads import drive_traffic
from repro.obs.tracing import SpanTracer


def _run(trace_every) -> tuple:
    """One fixed fig6 open-loop run; returns (latency tuple, n_spans).

    ``trace_every=None`` leaves the tracer off entirely; ``0`` attaches
    a tracer that samples nothing (the hot instrumentation points still
    execute their guard checks)."""
    cfg = NetworkConfig(
        firmware="itb", routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        reliable=False, recv_buffer_kind="pool", pool_bytes=1024 * 1024,
        seed=5,
    )
    net = build_network("fig6", config=cfg)
    if trace_every is not None:
        net.fabric.tracer = SpanTracer(sample_every=trace_every)
    stats = drive_traffic(
        net, rate_bytes_per_ns_per_host=0.06, packet_size=512,
        duration_ns=150_000.0, seed=7,
    )
    tracer = net.fabric.tracer
    return tuple(stats.latencies_ns), 0 if tracer is None else len(tracer.spans)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_tracing_overhead(benchmark, bench_headline):
    """The zero-cost-when-disabled gate.

    The simulated results must be bit-identical with the tracer on and
    off (tracing observes, never perturbs), full tracing must stay
    within a small factor of untraced, and the traced/untraced ratio
    is the baselined headline: it regresses downward if the *disabled*
    path gains cost."""
    lat_off, spans_off = _run(None)
    lat_on, spans_on = _run(1)
    assert spans_off == 0
    assert spans_on > 0
    assert lat_on == lat_off, "tracing perturbed the simulation"

    benchmark(lambda: _run(1))

    traced = _best_of(lambda: _run(1))
    untraced = _best_of(lambda: _run(None))
    ratio = traced / untraced
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["traced_s"] = round(traced, 6)
    bench_headline["untraced_s"] = round(untraced, 6)
    bench_headline["spans"] = spans_on
    assert ratio < 3.0, (
        f"full tracing costs {ratio:.2f}x over untraced"
        f" (traced {traced * 1e3:.1f} ms, untraced {untraced * 1e3:.1f} ms)"
    )


def test_bench_unsampled_is_free(bench_headline):
    """An attached tracer that samples nothing records zero spans,
    changes nothing, and costs (almost) nothing."""
    lat_off, _ = _run(None)
    lat_idle, spans_idle = _run(0)
    assert spans_idle == 0
    assert lat_idle == lat_off

    idle = _best_of(lambda: _run(0))
    untraced = _best_of(lambda: _run(None))
    ratio = idle / untraced
    bench_headline["idle_ratio"] = round(ratio, 3)
    assert ratio < 1.5, (
        f"unsampled tracer costs {ratio:.2f}x — the disabled path is"
        " supposed to be an is-None check"
    )
