"""Benchmark: EXP-A5 — root-placement sensitivity of up*/down* vs ITB.

Prints average fabric hops under the mapper's optimal root and under
an anti-optimal (max-eccentricity) root.  The robust finding: the
root *choice* is second-order, but up*/down* carries a first-order
stretch over minimal under *every* root — and ITB routing removes it
entirely, making route quality root-independent.
"""

from __future__ import annotations

from repro.harness.report import format_table
from repro.harness.root_study import run_root_study


def test_bench_root_study(benchmark):
    rows = benchmark.pedantic(
        run_root_study,
        kwargs=dict(n_switches=16, topo_seed=33, hosts_per_switch=1,
                    switch_links=3),
        rounds=1, iterations=1,
    )

    print()
    print(format_table(
        ["root placement", "avg UD hops", "avg ITB hops", "avg minimal",
         "UD stretch", "pairs w/ ITBs"],
        [(r.root_label, r.avg_updown_hops, r.avg_itb_hops,
          r.avg_minimal_hops, r.updown_stretch,
          f"{r.pairs_with_itbs}/{r.n_pairs}") for r in rows],
        title="EXP-A5 — spanning-tree root sensitivity (16 switches,"
              " sparse fabric)",
        float_fmt="{:.3f}",
    ))

    optimal = next(r for r in rows if r.root_label == "optimal")
    anti = next(r for r in rows if r.root_label == "anti-optimal")
    # ITB routing is root-independent (hosts on every switch): exactly
    # minimal hops under both placements.
    assert optimal.avg_itb_hops == anti.avg_itb_hops
    assert optimal.avg_itb_hops == optimal.avg_minimal_hops
    # up*/down* carries a measurable stretch under both placements;
    # ITB removes it.
    for row in rows:
        assert row.updown_stretch > 1.02
        assert row.itb_saving > 0
