"""Benchmark: regenerate paper Figure 7 (EXP-F7).

Prints the half-round-trip latency of the original vs modified MCP
per message size, the per-packet overhead, and the paper-vs-measured
summary, then asserts the shape.
"""

from __future__ import annotations

from repro.harness.fig7 import run_fig7
from repro.harness.report import format_table, paper_vs_measured


def test_bench_fig7(benchmark, scale):
    result = benchmark.pedantic(
        run_fig7,
        kwargs=dict(sizes=scale["sizes"], iterations=scale["iterations"]),
        rounds=1, iterations=1,
    )

    rows = [
        (r.size, r.original_ns / 1000.0, r.modified_ns / 1000.0,
         r.overhead_ns, r.relative_pct)
        for r in result.rows
    ]
    print()
    print(format_table(
        ["size (B)", "orig MCP (us)", "ITB MCP (us)",
         "overhead (ns)", "relative (%)"],
        rows,
        title="Figure 7 — message latency overhead of the new GM/MCP code",
    ))
    print()
    print(paper_vs_measured(
        [
            ("avg per-packet overhead",
             "~125 ns",
             f"{result.mean_overhead_ns:.0f} ns",
             100 <= result.mean_overhead_ns <= 160),
            ("max per-packet overhead",
             "<= 300 ns",
             f"{result.max_overhead_ns:.0f} ns",
             result.max_overhead_ns <= 300),
            ("relative overhead, short msgs",
             "~1 %",
             f"{result.relative_short_pct:.2f} %",
             0.5 <= result.relative_short_pct <= 2.5),
            ("relative overhead, long msgs",
             "~0.4 %",
             f"{result.relative_long_pct:.2f} %",
             result.relative_long_pct <= 0.7),
        ],
        title="EXP-F7 paper-vs-measured",
    ))

    assert 100 <= result.mean_overhead_ns <= 160
    assert result.max_overhead_ns <= 300
    rels = [r.relative_pct for r in result.rows]
    assert rels == sorted(rels, reverse=True)
