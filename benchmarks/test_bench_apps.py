"""Benchmark: EXP-M2 — distributed-application completion time.

The paper's future-work promise ("analyzing the impact of using ITBs
in the execution time of distributed applications"), executed:
closed-loop communication kernels run to completion under up*/down*
vs ITB routing.
"""

from __future__ import annotations

from repro.harness.apps import run_app_comparison
from repro.harness.report import format_table


def test_bench_apps(benchmark, scale):
    n_switches = max(scale["throughput_switches"])
    results = benchmark.pedantic(
        run_app_comparison,
        kwargs=dict(
            n_switches=n_switches,
            kernels=("all-to-all", "ring", "random-pairs"),
            iterations=3,
            message_size=1024,
            hosts_per_switch=2,
        ),
        rounds=1, iterations=1,
    )

    by = {(r.kernel, r.routing): r for r in results}
    kernels = sorted({r.kernel for r in results})
    rows = []
    for kernel in kernels:
        ud = by[(kernel, "updown")]
        itb = by[(kernel, "itb")]
        rows.append((
            kernel, ud.completion_us, itb.completion_us,
            ud.completion_ns / itb.completion_ns,
        ))
    print()
    print(format_table(
        ["kernel", "up*/down* (us)", "ITB (us)", "speedup (UD/ITB)"],
        rows,
        title=("EXP-M2 — application completion time,"
               f" {n_switches}-switch irregular cluster"),
    ))

    # Shape (paper Section 1): "this latency penalty is only noticeable
    # for short packets and at low network loads" — so the lightly
    # loaded ring kernel may pay a modest ITB cost, while the heavy
    # all-to-all kernel must benefit from minimal routing + balance.
    a2a = (by[("all-to-all", "updown")].completion_ns
           / by[("all-to-all", "itb")].completion_ns)
    ring = (by[("ring", "updown")].completion_ns
            / by[("ring", "itb")].completion_ns)
    assert a2a >= 1.0, f"all-to-all should favour ITB (got {a2a:.2f})"
    assert ring > 0.7, f"ring penalty beyond the expected range ({ring:.2f})"
    assert a2a > ring, "heavy traffic should benefit more than light"
