"""Benchmark: the network-level up*/down* vs ITB comparison (EXP-M1).

Regenerates the motivation claim of the paper's Section 2 (established
by the authors' simulation studies [2,3]): ITB routing sustains higher
accepted throughput than up*/down* on irregular networks, with the gap
growing with network size — roughly 2x at 64 switches.

Prints, per network size, the accepted-throughput-vs-offered-load
series under both routings and the peak ratio.
"""

from __future__ import annotations

from repro.harness.report import format_table, paper_vs_measured
from repro.harness.throughput import run_throughput


def test_bench_throughput(benchmark, scale):
    def sweep_all():
        results = {}
        for n_sw in scale["throughput_switches"]:
            results[n_sw] = run_throughput(
                n_switches=n_sw,
                packet_size=512,
                rates=scale["throughput_rates"],
                duration_ns=scale["throughput_duration"],
                warmup_ns=scale["throughput_duration"] / 5,
                hosts_per_switch=2,
                topo_seed=5,
            )
        return results

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    for n_sw, result in results.items():
        rows = []
        for routing in ("updown", "itb"):
            for p in result.series(routing):
                rows.append((
                    routing,
                    p.offered_bytes_per_ns_per_host,
                    p.accepted,
                    p.mean_latency_ns / 1000.0,
                    p.stats.delivered_packets,
                ))
        print()
        print(format_table(
            ["routing", "offered (B/ns/host)", "accepted (B/ns/host)",
             "mean latency (us)", "delivered"],
            rows,
            title=(f"EXP-M1 — {n_sw} switches: accepted throughput vs"
                   " offered load"),
            float_fmt="{:.4f}",
        ))

    ratios = {n: r.throughput_ratio for n, r in results.items()}
    sizes = sorted(ratios)
    print()
    print(paper_vs_measured(
        [
            (f"peak throughput ITB/UD at {n} switches",
             "grows with size, ~2x at 64 sw [2,3]",
             f"{ratios[n]:.2f}x",
             ratios[n] >= 0.95)
            for n in sizes
        ] + [
            ("ratio grows with network size",
             "yes",
             " -> ".join(f"{ratios[n]:.2f}" for n in sizes),
             ratios[sizes[-1]] >= ratios[sizes[0]] - 0.05),
        ],
        title="EXP-M1 paper-vs-measured",
    ))

    # Shape: ITB never loses, and the advantage does not shrink with size.
    for n, r in ratios.items():
        assert r >= 0.95, f"ITB lost at {n} switches: {r:.2f}"
    assert ratios[sizes[-1]] >= ratios[sizes[0]] - 0.05
    # At the largest benched size the gap must be clearly visible.
    assert ratios[sizes[-1]] >= 1.15
