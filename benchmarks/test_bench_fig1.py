"""Benchmark: regenerate the paper Figure 1 analysis (EXP-F1).

Prints the route-length comparison (minimal vs up*/down* vs ITB) and
the deadlock verdicts on the Figure-1-style irregular network.
"""

from __future__ import annotations

from repro.harness.fig1 import run_fig1
from repro.harness.report import format_table, paper_vs_measured


def test_bench_fig1(benchmark):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    print()
    print(format_table(
        ["quantity", "value"],
        [
            ("showcase pair minimal length (switches)",
             result.showcase_minimal_len),
            ("showcase pair up*/down* length", result.showcase_updown_len),
            ("showcase pair ITB length (incl. re-cross)",
             result.showcase_itb_len),
            ("showcase ITB inter-switch hops",
             result.showcase_itb_inter_switch_hops),
            ("showcase up*/down* inter-switch hops",
             result.showcase_updown_inter_switch_hops),
            ("all-pairs avg minimal", result.avg_minimal),
            ("all-pairs avg up*/down*", result.avg_updown),
            ("all-pairs avg ITB", result.avg_itb),
            ("pairs where ITB uses fewer fabric links",
             f"{result.pairs_itb_shorter}/{result.n_pairs}"),
            ("routes crossing root, up*/down*",
             f"{result.root_cross_updown:.2f}"),
            ("routes crossing root, ITB", f"{result.root_cross_itb:.2f}"),
        ],
        title="Figure 1 — minimal routes enabled by in-transit buffers",
    ))
    print()
    print(paper_vs_measured(
        [
            ("minimal 4->6->1 forbidden by up*/down*",
             "yes (down->up at 6)",
             "yes" if result.showcase_updown_len >
             result.showcase_minimal_len else "no",
             result.showcase_updown_len > result.showcase_minimal_len),
            ("one ITB legalizes the minimal route",
             "1 ITB at switch 6",
             f"{len(result.showcase_itb_hosts)} ITB",
             len(result.showcase_itb_hosts) == 1),
            ("up*/down* deadlock-free", "yes",
             str(result.updown_deadlock_free), result.updown_deadlock_free),
            ("ITB routing deadlock-free", "yes",
             str(result.itb_deadlock_free), result.itb_deadlock_free),
            ("raw minimal routing deadlock-free", "no",
             str(result.minimal_deadlock_free),
             not result.minimal_deadlock_free),
            ("ITB relieves root congestion", "yes",
             f"{result.root_cross_updown:.2f} -> {result.root_cross_itb:.2f}",
             result.root_cross_itb < result.root_cross_updown),
        ],
        title="EXP-F1 paper-vs-measured",
    ))

    assert result.showcase_minimal_len == 3
    assert result.showcase_updown_len == 4
    assert result.updown_deadlock_free and result.itb_deadlock_free
    assert not result.minimal_deadlock_free
