"""Benchmark: EXP-M1c — measured traffic balance.

The paper's introduction: spanning-tree routings "tend to saturate the
zone near the root switch, making low use of channels out of this
zone".  This bench runs identical uniform traffic under both routings
with every fabric channel metered, and reports the observed load
distribution: Jain's fairness index, the busiest channel's
utilization, and the share of fabric busy-time adjacent to the root.
"""

from __future__ import annotations

from repro.harness.report import format_table
from repro.harness.throughput import build_load_network
from repro.harness.workloads import drive_traffic
from repro.network.instrumentation import attach_usage_meter
from repro.topology.generators import random_irregular


def test_bench_balance(benchmark, scale):
    n_switches = max(scale["throughput_switches"])
    rate = scale["throughput_rates"][len(scale["throughput_rates"]) // 2]

    def run_both():
        out = {}
        for routing in ("updown", "itb"):
            topo = random_irregular(n_switches, seed=7, hosts_per_switch=2)
            net = build_load_network(topo, routing)
            usage = attach_usage_meter(net)
            drive_traffic(net, rate_bytes_per_ns_per_host=rate,
                          packet_size=512,
                          duration_ns=scale["throughput_duration"],
                          warmup_ns=scale["throughput_duration"] / 5)
            out[routing] = usage
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for routing, usage in results.items():
        rows.append((
            routing,
            usage.jain_fairness(),
            usage.max_utilization(),
            usage.root_concentration(),
        ))
    print()
    print(format_table(
        ["routing", "Jain fairness", "max channel util",
         "root-adjacent share"],
        rows,
        title=("EXP-M1c — measured fabric-load balance,"
               f" {n_switches} switches, uniform traffic"),
        float_fmt="{:.3f}",
    ))

    ud, itb = results["updown"], results["itb"]
    # Shape: ITB routing spreads load at least as evenly and pulls
    # busy-time away from the root neighbourhood.
    assert itb.jain_fairness() >= ud.jain_fairness() * 0.98
    assert itb.root_concentration() <= ud.root_concentration() + 0.02
