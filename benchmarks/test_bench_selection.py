"""Benchmark: selector plumbing overhead on batched route build.

The adaptive-ITB tentpole routes every in-transit host choice through
the pluggable :class:`~repro.routing.selectors.Selector` seam instead
of calling ``first_host_policy`` directly.  That seam sits on the
batched all-pairs build path — the scale study's hot loop — so its
cost must stay in the noise: with no congestion view attached, a
selector is a bounds-check and a counter bump per ITB cut.

The gate: batched ITB all-pairs with a ``StaticSelector`` as the host
policy must run at >= 0.95x the plain ``first_host_policy`` build on
the 32-switch irregular fabric, with byte-identical routes (the
zero-signal oracle holding at build time, not just at reselect time).
"""

from __future__ import annotations

import time

from repro.routing.itb import ItbRouter
from repro.routing.selectors import make_selector
from repro.routing.spanning_tree import build_orientation
from repro.topology.generators import random_irregular

#: The adaptive-ITB study fabric's larger rung.
_N_SWITCHES = 32
_SEED = 11
_HOSTS_PER_SWITCH = 2


def _bench_topology():
    return random_irregular(_N_SWITCHES, seed=_SEED,
                            hosts_per_switch=_HOSTS_PER_SWITCH)


def _interleaved_best(fn_a, fn_b, rounds: int = 10) -> tuple[float, float]:
    """Best-of-N for two workloads with their rounds interleaved.

    Sequential best-of blocks are vulnerable to differential drift on
    shared/throttled runners (one arm's whole block lands on a slow
    phase and the ratio swings +/-30%); alternating rounds makes any
    slowdown hit both arms equally.
    """
    fn_a()
    fn_b()
    best_a = best_b = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_bench_selector_overhead(benchmark, bench_headline):
    """Selector-as-host-policy must cost <= 5% on batched all-pairs."""
    topo = _bench_topology()
    orientation = build_orientation(topo)

    def with_selector():
        return ItbRouter(
            topo, orientation, host_policy=make_selector("static"),
        ).all_pairs()

    def plain():
        return ItbRouter(topo, orientation).all_pairs()

    routes = benchmark(with_selector)

    # Zero-signal oracle at build time: same routes, same order.
    oracle = plain()
    assert list(routes) == list(oracle)
    assert routes == oracle

    # A reading below the gate on shared runners is usually scheduler
    # noise, not plumbing cost — re-measure before failing, keep the
    # best ratio observed (systematic overhead reproduces every time).
    for _ in range(3):
        selector_s, plain_s = _interleaved_best(with_selector, plain)
        ratio = plain_s / selector_s
        if ratio >= 0.95:
            break
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["selector_s"] = round(selector_s, 6)
    bench_headline["plain_s"] = round(plain_s, 6)
    bench_headline["n_pairs"] = len(oracle)
    assert ratio >= 0.95, (
        f"selector plumbing slowed batched all-pairs to {ratio:.2f}x"
        f" of the plain host policy (selector {selector_s * 1e3:.0f} ms,"
        f" plain {plain_s * 1e3:.0f} ms)"
    )
