"""Benchmark: raw simulator performance.

Not a paper figure — a performance regression guard for the
discrete-event kernel itself, which everything else pays for.
Measures event-dispatch throughput, process context switches, and a
representative end-to-end network run.
"""

from __future__ import annotations

import time

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.sim.engine import Event, Simulator, Timeout
from repro.sim.resources import Resource


def test_bench_event_dispatch(benchmark):
    """Plain calendar churn: schedule/dispatch cycles."""

    def run():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 50_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count["n"]

    n = benchmark(run)
    assert n == 50_000


def test_bench_process_switching(benchmark):
    """Generator-process resume cost (the firmware's currency)."""

    def run():
        sim = Simulator()
        done = {"n": 0}

        def worker():
            for _ in range(500):
                yield Timeout(1.0)
            done["n"] += 1

        for _ in range(100):
            sim.process(worker())
        sim.run()
        return done["n"]

    n = benchmark(run)
    assert n == 100


def test_bench_resource_contention(benchmark):
    """FIFO resource grant/release churn under contention."""

    def run():
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finished = {"n": 0}

        def worker(i):
            for _ in range(50):
                yield res.request(owner=i)
                yield Timeout(1.0)
                res.release(owner=i)
            finished["n"] += 1

        for i in range(40):
            sim.process(worker(i))
        sim.run()
        return finished["n"]

    n = benchmark(run)
    assert n == 40


def _churn_fast(n_procs: int, n_ticks: int) -> int:
    """Timeout churn on the fast path: direct-from-calendar resume."""
    sim = Simulator()
    done = {"n": 0}

    def worker():
        for _ in range(n_ticks):
            yield Timeout(1.0)
        done["n"] += 1

    for _ in range(n_procs):
        sim.process(worker())
    sim.run()
    return done["n"]


def _churn_legacy(n_procs: int, n_ticks: int) -> int:
    """The same workload through the retired resume shape: one Event
    allocated per delay, and two calendar-heap round trips — the timer
    itself plus the succeed->resume dispatch hop, which the old engine
    also pushed through the heap.  Non-default priority keeps both
    entries off the immediate lane."""
    sim = Simulator()
    done = {"n": 0}

    def worker():
        for _ in range(n_ticks):
            ev = Event(sim, name="timeout")
            sim.schedule(
                1.0,
                lambda ev=ev: sim.schedule(0.0, ev.succeed, priority=1),
                priority=1,
            )
            yield ev
        done["n"] += 1

    for _ in range(n_procs):
        sim.process(worker())
    sim.run()
    return done["n"]


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_calendar_churn_speedup(benchmark, bench_headline):
    """The tentpole guard: timeout-heavy calendar churn must run at
    least 2x faster on the direct-resume + immediate-lane path than
    through the legacy Event-per-timeout shape."""
    n_procs, n_ticks = 100, 400

    n = benchmark(lambda: _churn_fast(n_procs, n_ticks))
    assert n == n_procs

    fast = _best_of(lambda: _churn_fast(n_procs, n_ticks))
    legacy = _best_of(lambda: _churn_legacy(n_procs, n_ticks))
    ratio = legacy / fast
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["fast_s"] = round(fast, 6)
    bench_headline["legacy_s"] = round(legacy, 6)
    assert ratio >= 2.0, (
        f"fast path only {ratio:.2f}x over legacy resume shape"
        f" (fast {fast * 1e3:.1f} ms, legacy {legacy * 1e3:.1f} ms)"
    )


def test_bench_end_to_end_pingpong(benchmark):
    """Representative workload: a full fig6 ping-pong series."""

    def run():
        cfg = NetworkConfig(
            firmware="itb", routing="updown",
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        res = net.ping_pong("host1", "host2", size=1024, iterations=50)
        return res.mean_ns

    mean = benchmark(run)
    assert mean > 0
