"""Benchmark: raw simulator performance.

Not a paper figure — a performance regression guard for the
discrete-event kernel itself, which everything else pays for.
Measures event-dispatch throughput, process context switches, and a
representative end-to-end network run.
"""

from __future__ import annotations

import time

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.mcp.packet_format import encode_packet
from repro.network.fabric import Fabric
from repro.network.worm import Worm
from repro.routing.routes import SourceRoute
from repro.sim.engine import Event, Simulator, Timeout
from repro.sim.resources import Resource
from repro.topology.graph import Topology


def test_bench_event_dispatch(benchmark):
    """Plain calendar churn: schedule/dispatch cycles."""

    def run():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 50_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count["n"]

    n = benchmark(run)
    assert n == 50_000


def test_bench_process_switching(benchmark):
    """Generator-process resume cost (the firmware's currency)."""

    def run():
        sim = Simulator()
        done = {"n": 0}

        def worker():
            for _ in range(500):
                yield Timeout(1.0)
            done["n"] += 1

        for _ in range(100):
            sim.process(worker())
        sim.run()
        return done["n"]

    n = benchmark(run)
    assert n == 100


def test_bench_resource_contention(benchmark):
    """FIFO resource grant/release churn under contention."""

    def run():
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finished = {"n": 0}

        def worker(i):
            for _ in range(50):
                yield res.request(owner=i)
                yield Timeout(1.0)
                res.release(owner=i)
            finished["n"] += 1

        for i in range(40):
            sim.process(worker(i))
        sim.run()
        return finished["n"]

    n = benchmark(run)
    assert n == 40


def _churn_fast(n_procs: int, n_ticks: int) -> int:
    """Timeout churn on the fast path: direct-from-calendar resume."""
    sim = Simulator()
    done = {"n": 0}

    def worker():
        for _ in range(n_ticks):
            yield Timeout(1.0)
        done["n"] += 1

    for _ in range(n_procs):
        sim.process(worker())
    sim.run()
    return done["n"]


def _churn_legacy(n_procs: int, n_ticks: int) -> int:
    """The same workload through the retired resume shape: one Event
    allocated per delay, and two calendar-heap round trips — the timer
    itself plus the succeed->resume dispatch hop, which the old engine
    also pushed through the heap.  Non-default priority keeps both
    entries off the immediate lane."""
    sim = Simulator()
    done = {"n": 0}

    def worker():
        for _ in range(n_ticks):
            ev = Event(sim, name="timeout")
            sim.schedule(
                1.0,
                lambda ev=ev: sim.schedule(0.0, ev.succeed, priority=1),
                priority=1,
            )
            yield ev
        done["n"] += 1

    for _ in range(n_procs):
        sim.process(worker())
    sim.run()
    return done["n"]


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_calendar_churn_speedup(benchmark, bench_headline):
    """The tentpole guard: timeout-heavy calendar churn must run at
    least 2x faster on the direct-resume + immediate-lane path than
    through the legacy Event-per-timeout shape."""
    n_procs, n_ticks = 100, 400

    n = benchmark(lambda: _churn_fast(n_procs, n_ticks))
    assert n == n_procs

    fast = _best_of(lambda: _churn_fast(n_procs, n_ticks))
    legacy = _best_of(lambda: _churn_legacy(n_procs, n_ticks))
    ratio = legacy / fast
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["fast_s"] = round(fast, 6)
    bench_headline["legacy_s"] = round(legacy, 6)
    assert ratio >= 2.0, (
        f"fast path only {ratio:.2f}x over legacy resume shape"
        f" (fast {fast * 1e3:.1f} ms, legacy {legacy * 1e3:.1f} ms)"
    )


def _flight_net(n_switches: int = 4):
    """A SAN line of switches with one host at each end — the
    uncontended multi-hop shape of the fig7 half-round-trip paths."""
    topo = Topology()
    switches = [topo.add_switch(n_ports=4) for _ in range(n_switches)]
    for i in range(n_switches - 1):
        topo.connect(switches[i], 2, switches[i + 1], 3)
    src = topo.attach_host(switches[0], 0, name="src")
    dst = topo.attach_host(switches[-1], 1, name="dst")
    seg = SourceRoute(
        src=src, dst=dst,
        ports=(2,) * (n_switches - 1) + (1,),
        switch_path=tuple(switches),
    )
    sim = Simulator()
    fabric = Fabric(sim, topo, Timings())
    return sim, fabric, seg


def _run_flight(n_worms: int, express: bool) -> list:
    """Sequential uncontended 512 B worms down the line; returns the
    per-worm completion timestamps (for cross-mode exactness checks)."""
    sim, fabric, seg = _flight_net()
    fabric.express_enabled = express
    image = encode_packet(seg, bytes(512))
    completes: list[float] = []

    class _Obs:
        def on_header(self, worm, t):
            return None

        def on_complete(self, worm, t):
            completes.append(t)

    obs = _Obs()

    def driver():
        for _ in range(n_worms):
            Worm(sim, fabric, seg, image, observer=obs).launch()
            yield Timeout(6000.0)  # > one full flight: truly uncontended

    sim.process(driver())
    sim.run()
    return completes


def test_bench_worm_flight(benchmark, bench_headline):
    """The express-lane guard: closed-form worm flight must be at
    least 1.5x faster than the stepped generator on an uncontended
    fig7-shaped workload — with bit-identical completion times."""
    n_worms = 400

    completes = benchmark(lambda: _run_flight(n_worms, True))
    assert len(completes) == n_worms

    assert _run_flight(n_worms, True) == _run_flight(n_worms, False)

    express = _best_of(lambda: _run_flight(n_worms, True))
    stepped = _best_of(lambda: _run_flight(n_worms, False))
    ratio = stepped / express
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["express_s"] = round(express, 6)
    bench_headline["stepped_s"] = round(stepped, 6)
    assert ratio >= 1.5, (
        f"express lane only {ratio:.2f}x over stepped flight"
        f" (express {express * 1e3:.1f} ms, stepped {stepped * 1e3:.1f} ms)"
    )


def _claim_loop(lanes: int, n_claims: int = 30_000) -> float:
    """Wall time for ``n_claims`` rounds of the worm launch claim
    sequence (``select_lanes`` -> ``lane_keys`` -> ``claim_conflicts``
    -> ``register_claims`` -> ``release_claims``) on a multi-hop plan.

    This is the exact per-launch bookkeeping the virtual-channel
    refactor added to every flight; full-traffic runs bury it under
    event dispatch, so it is timed in isolation here.
    """
    from repro.routing.spanning_tree import build_orientation
    from repro.routing.updown import UpDownRouter
    from repro.topology.generators import fig6_testbed

    topo, roles = fig6_testbed()
    fabric = Fabric(Simulator(), topo, Timings(), lanes=lanes)
    router = UpDownRouter(topo, build_orientation(topo))
    seg = router.itb_route(roles["host1"], roles["host2"]).segments[0]
    plan = fabric.flight_plan(seg)
    worm = object()
    t0 = time.perf_counter()
    for _ in range(n_claims):
        chosen = fabric.select_lanes(plan)
        keys = plan.lane_keys(chosen)
        fabric.claim_conflicts(keys, 0.0)
        fabric.register_claims(worm, keys)
        fabric.release_claims(worm, keys)
    return time.perf_counter() - t0


def test_bench_lane_overhead(benchmark, bench_headline):
    """The virtual-channel refactor guard: the lanes=1 fast path
    (``FlightPlan.keys0``/``zero_lanes``, no per-hop lane selection)
    must stay within 5% of the generic laned claim path.  A second
    lane forces generic per-hop selection and fresh key tuples while
    the claims themselves stay identical, so the ratio is pure lane
    bookkeeping — the cost the pre-refactor engine never paid."""
    fast = benchmark(lambda: _claim_loop(1))
    assert fast > 0

    fast = _best_of(lambda: _claim_loop(1))
    generic = _best_of(lambda: _claim_loop(2))
    ratio = generic / fast
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["fast_s"] = round(fast, 6)
    bench_headline["generic_s"] = round(generic, 6)
    assert ratio >= 0.95, (
        f"lanes=1 fast path is {1 / ratio:.2f}x slower than the"
        f" generic lane path (fast {fast * 1e3:.1f} ms, generic"
        f" {generic * 1e3:.1f} ms) — the single-lane regression"
        f" budget is 5%"
    )


def test_bench_end_to_end_pingpong(benchmark):
    """Representative workload: a full fig6 ping-pong series."""

    def run():
        cfg = NetworkConfig(
            firmware="itb", routing="updown",
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        res = net.ping_pong("host1", "host2", size=1024, iterations=50)
        return res.mean_ns

    mean = benchmark(run)
    assert mean > 0


# -- partitioned engine and claim horizon -----------------------------------

_STORM_POINT = dict(
    n_switches=16, n_parts=4, hosts_per_switch=3, packet_size=1024,
    rate=0.25, duration_ns=300_000.0, cross_fraction=0.15,
    trunk_length_m=400.0, seed=7,
)


def _storm(jobs: int):
    from repro.harness.storm import run_storm

    return run_storm(**_STORM_POINT, engine_jobs=jobs)


def test_bench_partition_speedup(benchmark, bench_headline):
    """The partitioned-core guard: a 16-switch storm split into 4
    partitions must run at least 1.8x faster wall-clock with 4 worker
    processes than inline — with byte-identical summaries (the
    determinism contract holds at every worker count).

    The wall-clock gate needs real parallel hardware; on fewer than 4
    usable cores the determinism half still runs and the ratio is
    recorded, but the floor assertion is skipped (a time-sliced
    single-core box measures scheduler overhead, not the engine).
    """
    import os

    import pytest

    cores = len(os.sched_getaffinity(0))

    serial = benchmark(lambda: _storm(1))
    forked = _storm(4)
    assert forked.execution["mode"] == "forked"
    assert serial.summary() == forked.summary()

    inline_s = _best_of(lambda: _storm(1), repeats=2)
    forked_s = _best_of(lambda: _storm(4), repeats=2)
    ratio = inline_s / forked_s
    bench_headline["inline_s"] = round(inline_s, 6)
    bench_headline["forked_s"] = round(forked_s, 6)
    bench_headline["cores"] = cores
    bench_headline["windows"] = serial.engine["windows"]
    if cores < 4:
        # A time-sliced ratio is not the number the baseline floors;
        # record it under a different key and flag the skipped gate so
        # ``repro bench-report --baseline`` waives this test.
        bench_headline["measured_ratio"] = round(ratio, 3)
        bench_headline["gate_skipped"] = f"needs >= 4 cores, have {cores}"
        pytest.skip(f"wall-clock gate needs >= 4 cores, have {cores}"
                    f" (measured {ratio:.2f}x; determinism verified)")
    bench_headline["speedup_ratio"] = round(ratio, 3)
    assert ratio >= 1.8, (
        f"partitioned engine only {ratio:.2f}x over inline at 4 workers"
        f" (inline {inline_s * 1e3:.0f} ms, forked {forked_s * 1e3:.0f} ms)"
    )


def _horizon_run(horizon: bool):
    """Loaded irregular-fabric traffic run; returns (express stats,
    delivered packets)."""
    from repro.harness.throughput import build_load_network
    from repro.harness.workloads import drive_traffic
    from repro.topology.generators import random_irregular

    topo = random_irregular(12, seed=5, hosts_per_switch=2)
    net = build_load_network(topo, "updown", seed=11)
    net.fabric.express_horizon = horizon
    stats = drive_traffic(net, 0.08, 1024, 150_000.0, seed=7)
    return net.fabric.express_stats, stats.delivered_packets


def test_bench_express_horizon(benchmark, bench_headline):
    """The claim-horizon guard: under loaded contended traffic the
    express hit rate with partial (claim-horizon) flights must be at
    least double the bail-on-any-conflict baseline, with identical
    delivered-packet counts (the lanes stay observationally
    equivalent).  ``speedup_ratio`` here is the hit-rate ratio."""
    base_stats, base_delivered = benchmark(lambda: _horizon_run(False))
    horizon_stats, horizon_delivered = _horizon_run(True)
    assert horizon_delivered == base_delivered

    def rate(s) -> float:
        return s.hits / max(1, s.hits + s.fallbacks)

    base_rate = rate(base_stats)
    horizon_rate = rate(horizon_stats)
    ratio = horizon_rate / max(base_rate, 1e-9)
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["base_hit_rate"] = round(base_rate, 4)
    bench_headline["horizon_hit_rate"] = round(horizon_rate, 4)
    bench_headline["partial_flights"] = horizon_stats.partial
    assert horizon_stats.partial > 0
    assert ratio >= 2.0, (
        f"claim horizon lifts the loaded hit rate only {ratio:.2f}x"
        f" (base {base_rate:.1%}, horizon {horizon_rate:.1%})"
    )
