"""Benchmark: raw simulator performance.

Not a paper figure — a performance regression guard for the
discrete-event kernel itself, which everything else pays for.
Measures event-dispatch throughput, process context switches, and a
representative end-to-end network run.
"""

from __future__ import annotations

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Resource


def test_bench_event_dispatch(benchmark):
    """Plain calendar churn: schedule/dispatch cycles."""

    def run():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 50_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count["n"]

    n = benchmark(run)
    assert n == 50_000


def test_bench_process_switching(benchmark):
    """Generator-process resume cost (the firmware's currency)."""

    def run():
        sim = Simulator()
        done = {"n": 0}

        def worker():
            for _ in range(500):
                yield Timeout(1.0)
            done["n"] += 1

        for _ in range(100):
            sim.process(worker())
        sim.run()
        return done["n"]

    n = benchmark(run)
    assert n == 100


def test_bench_resource_contention(benchmark):
    """FIFO resource grant/release churn under contention."""

    def run():
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finished = {"n": 0}

        def worker(i):
            for _ in range(50):
                yield res.request(owner=i)
                yield Timeout(1.0)
                res.release(owner=i)
            finished["n"] += 1

        for i in range(40):
            sim.process(worker(i))
        sim.run()
        return finished["n"]

    n = benchmark(run)
    assert n == 40


def test_bench_end_to_end_pingpong(benchmark):
    """Representative workload: a full fig6 ping-pong series."""

    def run():
        cfg = NetworkConfig(
            firmware="itb", routing="updown",
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        res = net.ping_pong("host1", "host2", size=1024, iterations=50)
        return res.mean_ns

    mean = benchmark(run)
    assert mean > 0
