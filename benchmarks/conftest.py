"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures (or an ablation)
and prints the series the paper reports, alongside the paper's own
numbers, then asserts the reproduction *shape* (who wins, rough
factor, trend) still holds.

Two sizes:

* default — quick settings, minutes for the whole suite;
* ``REPRO_FULL=1`` — paper-scale settings (100 iterations, the full
  gm_allsize ladder, 64-switch throughput runs).
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scale():
    """Benchmark scale knobs derived from REPRO_FULL."""
    if full_scale():
        return {
            "sizes": (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
            "iterations": 100,
            "throughput_switches": (8, 16, 32, 64),
            "throughput_rates": (0.01, 0.02, 0.04, 0.06, 0.08, 0.12, 0.16),
            "throughput_duration": 300_000.0,
        }
    return {
        "sizes": (16, 128, 1024, 4096),
        "iterations": 20,
        "throughput_switches": (8, 16),
        "throughput_rates": (0.02, 0.06, 0.12),
        "throughput_duration": 150_000.0,
    }
