"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures (or an ablation)
and prints the series the paper reports, alongside the paper's own
numbers, then asserts the reproduction *shape* (who wins, rough
factor, trend) still holds.

Two sizes:

* default — quick settings, minutes for the whole suite;
* ``REPRO_FULL=1`` — paper-scale settings (100 iterations, the full
  gm_allsize ladder, 64-switch throughput runs).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

#: Repo root — BENCH_<group>.json trajectory files land here.
_REPO_ROOT = Path(__file__).resolve().parent.parent


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def _group_of(nodeid: str) -> str:
    """``benchmarks/test_bench_engine.py::test_x`` -> ``engine``."""
    module = nodeid.split("::", 1)[0]
    stem = Path(module).stem
    return stem.removeprefix("test_bench_") or stem


@pytest.fixture(scope="session")
def bench_trajectory():
    """Session-wide store of benchmark headline numbers.

    Maps group -> test name -> record.  Written to ``BENCH_<group>.json``
    at the repo root when the session ends (one machine-readable file
    per benchmark module), which ``repro bench-report`` tabulates and
    CI archives / checks against the committed baseline.
    """
    store: dict[str, dict[str, dict]] = {}
    yield store
    for group, records in sorted(store.items()):
        path = _REPO_ROOT / f"BENCH_{group}.json"
        doc = {
            "format": "bench-trajectory/1",
            "group": group,
            "full_scale": full_scale(),
            "records": records,
        }
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def bench_headline(request, bench_trajectory):
    """Per-test dict for extra headline numbers (speedup ratios,
    latencies...); merged into the test's trajectory record."""
    extra: dict = {}
    yield extra


@pytest.fixture(autouse=True)
def _record_bench(request, bench_trajectory):
    """Record wall-clock (and pytest-benchmark stats when present) for
    every benchmark into the session trajectory."""
    started = time.perf_counter()
    yield
    record: dict = {"wall_s": round(time.perf_counter() - started, 6)}
    bench = request.node.funcargs.get("benchmark")
    stats = getattr(getattr(bench, "stats", None), "stats", None)
    if stats is not None:
        record["mean_s"] = stats.mean
        record["min_s"] = stats.min
        record["rounds"] = stats.rounds
    extra = request.node.funcargs.get("bench_headline")
    if extra:
        record.update(extra)
    group = _group_of(request.node.nodeid)
    bench_trajectory.setdefault(group, {})[request.node.name] = record


@pytest.fixture(scope="session")
def scale():
    """Benchmark scale knobs derived from REPRO_FULL."""
    if full_scale():
        return {
            "sizes": (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
            "iterations": 100,
            "throughput_switches": (8, 16, 32, 64),
            "throughput_rates": (0.01, 0.02, 0.04, 0.06, 0.08, 0.12, 0.16),
            "throughput_duration": 300_000.0,
        }
    return {
        "sizes": (16, 128, 1024, 4096),
        "iterations": 20,
        "throughput_switches": (8, 16),
        "throughput_rates": (0.02, 0.06, 0.12),
        "throughput_duration": 150_000.0,
    }
