"""Benchmark: regenerate paper Figure 8 (EXP-F8).

Prints the half-RTT of the 5-crossing up*/down* path vs the 5-crossing
in-transit path per message size, the per-ITB overhead (difference x 2,
per the paper's protocol), and the paper-vs-measured summary.
"""

from __future__ import annotations

from repro.harness.fig8 import run_fig8
from repro.harness.report import format_table, paper_vs_measured


def test_bench_fig8(benchmark, scale):
    result = benchmark.pedantic(
        run_fig8,
        kwargs=dict(sizes=scale["sizes"], iterations=scale["iterations"]),
        rounds=1, iterations=1,
    )

    rows = [
        (r.size, r.ud_ns / 1000.0, r.ud_itb_ns / 1000.0,
         r.overhead_ns / 1000.0, r.relative_pct)
        for r in result.rows
    ]
    print()
    print(format_table(
        ["size (B)", "UD (us)", "UD-ITB (us)",
         "per-ITB overhead (us)", "relative (%)"],
        rows,
        title=("Figure 8 — message latency overhead of the in-transit"
               " buffer mechanism"),
        float_fmt="{:.2f}",
    ))
    print()
    print(paper_vs_measured(
        [
            ("per-ITB overhead",
             "~1.3 us",
             f"{result.mean_overhead_ns / 1000:.2f} us",
             1_100 <= result.mean_overhead_ns <= 1_600),
            ("vs [2,3] assumption",
             "> 0.5 us",
             f"{result.mean_overhead_ns / 1000:.2f} us",
             result.mean_overhead_ns > 500),
            ("relative overhead, short msgs",
             "~10 %",
             f"{result.relative_short_pct:.1f} %",
             5 <= result.relative_short_pct <= 16),
            ("relative overhead, long msgs",
             "~3 %",
             f"{result.relative_long_pct:.1f} %",
             result.relative_long_pct <= 4.5),
        ],
        title="EXP-F8 paper-vs-measured",
    ))

    assert 1_100 <= result.mean_overhead_ns <= 1_600
    rels = [r.relative_pct for r in result.rows]
    assert rels == sorted(rels, reverse=True)
    for r in result.rows:
        assert r.ud_itb_ns > r.ud_ns
