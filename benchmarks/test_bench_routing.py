"""Benchmark: batched all-pairs route construction.

The scale-study tentpole: one phase-aware BFS tree per source switch
replaces a BFS per host pair, and the ITB router legalizes from
per-source Dijkstra trees instead of per-pair searches.  The per-pair
code paths are preserved as oracles (``all_pairs_pairwise``), so the
guard can assert both the speedup *and* bit-identical routes on every
run — the batched trees are proven, not trusted.
"""

from __future__ import annotations

import time

from repro.routing.itb import ItbRouter
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.generators import random_irregular_scaled

#: The 128-switch irregular fabric of the scale study's middle rung.
_N_SWITCHES = 128
_SEED = 7


def _bench_topology():
    return random_irregular_scaled(_N_SWITCHES, seed=_SEED)


def test_bench_allpairs_build(benchmark, bench_headline):
    """Batched up*/down* all-pairs must be >= 5x the per-pair oracle
    at 128 switches, with byte-identical routes in identical order."""
    topo = _bench_topology()
    orientation = build_orientation(topo)

    def batched():
        return UpDownRouter(topo, orientation).all_pairs()

    routes = benchmark(batched)

    t0 = time.perf_counter()
    fast_routes = batched()
    fast = time.perf_counter() - t0

    t0 = time.perf_counter()
    oracle = UpDownRouter(topo, orientation).all_pairs_pairwise()
    slow = time.perf_counter() - t0

    assert list(fast_routes) == list(oracle)  # same insertion order
    assert fast_routes == oracle  # same routes, byte for byte
    assert routes == oracle

    ratio = slow / fast
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["batched_s"] = round(fast, 6)
    bench_headline["pairwise_s"] = round(slow, 6)
    bench_headline["n_pairs"] = len(oracle)
    assert ratio >= 5.0, (
        f"batched all-pairs only {ratio:.2f}x over the per-pair oracle"
        f" (batched {fast * 1e3:.0f} ms, pairwise {slow * 1e3:.0f} ms)"
    )


def test_bench_itb_allpairs_build(benchmark, bench_headline):
    """Batched ITB legalization vs its per-pair oracle, same fabric.

    Identity guard, not a speedup gate: the ITB wins came from
    topology-level memoization (shortest-DAG children, the port
    table), which speeds the per-pair oracle just as much, so batched
    vs pairwise on a warm topology is near parity.  The guard asserts
    the batched trees produce byte-identical routes and are not
    meaningfully slower than the per-pair path.
    """
    topo = _bench_topology()
    orientation = build_orientation(topo)

    def batched():
        return ItbRouter(topo, orientation).all_pairs()

    routes = benchmark(batched)

    t0 = time.perf_counter()
    fast_routes = batched()
    fast = time.perf_counter() - t0

    t0 = time.perf_counter()
    oracle = ItbRouter(topo, orientation).all_pairs_pairwise()
    slow = time.perf_counter() - t0

    assert list(fast_routes) == list(oracle)
    assert fast_routes == oracle
    assert routes == oracle

    ratio = slow / fast
    bench_headline["speedup_ratio"] = round(ratio, 3)
    bench_headline["batched_s"] = round(fast, 6)
    bench_headline["pairwise_s"] = round(slow, 6)
    assert ratio >= 0.8, (
        f"batched ITB all-pairs regressed to {ratio:.2f}x of the"
        f" per-pair oracle (batched {fast * 1e3:.0f} ms,"
        f" pairwise {slow * 1e3:.0f} ms)"
    )
