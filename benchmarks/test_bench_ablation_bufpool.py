"""Benchmark: EXP-A2 — fixed two-buffer queues vs the circular pool.

The paper keeps the stock two-buffer queues ("As we are going to
evaluate ITBs on an unloaded network, we do not need more buffers")
and *proposes* a circular buffer pool for loaded operation.  This
bench blasts bursts of in-transit traffic through one transit host
under both schemes and reports delivery, flushes, and wire stalls.
"""

from __future__ import annotations

from repro.harness.ablations import run_ablation_buffer_pool
from repro.harness.report import format_table


def test_bench_ablation_bufpool(benchmark):
    results = benchmark.pedantic(
        run_ablation_buffer_pool,
        kwargs=dict(n_senders=4, packets_per_sender=25,
                    packet_size=1024, pool_bytes=8 * 1024),
        rounds=1, iterations=1,
    )

    print()
    print(format_table(
        ["scheme", "delivered", "offered", "flushed",
         "wire stall (us)", "mean latency (us)"],
        [
            (r.kind, r.delivered, r.offered, r.flushed,
             r.recv_blocked_ns / 1000.0, r.mean_latency_ns / 1000.0)
            for r in results.values()
        ],
        title=("EXP-A2 — in-transit buffering under burst load"
               " (fixed 2-buffer vs circular pool)"),
    ))

    fixed, pool = results["fixed"], results["pool"]
    # Fixed buffers: lossless but stall the wire (wormhole backpressure).
    assert fixed.delivered == fixed.offered and fixed.flushed == 0
    assert fixed.recv_blocked_ns > 0
    # Pool: absorbs the burst, flushes the excess (GM retransmits it —
    # see tests/test_gm_host.py::TestReliability), never stalls.
    assert pool.flushed > 0
    assert pool.recv_blocked_ns == 0.0
